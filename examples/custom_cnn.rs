//! A user-defined network through the flow, starting from the CNN
//! architecture definition text format (the flow's user-facing input,
//! paper §IV-B1) — including what happens when the component database is
//! missing a layer configuration.
//!
//! ```text
//! cargo run --release --example custom_cnn
//! ```

use preimpl_cnn::prelude::*;

const ARCHDEF: &str = r#"
# A small edge-vision network: 16x16 grayscale in, 4 classes out.
network edgenet
input 1x16x16
conv  c1 kernel=3 stride=1 pad=1 out=4
pool  p1 window=2 stride=2
relu  r1
conv  c2 kernel=3 stride=1 pad=0 out=8
pool  p2 window=2 stride=2
relu  r2
fc    f1 out=16
fc    f2 out=4
"#;

fn main() {
    let device = Device::xcku5p_like();

    // Parse the architecture definition.
    let network = parse_archdef(ARCHDEF).expect("archdef parses");
    println!(
        "parsed '{}': {} layers, output shape {}",
        network.name,
        network.nodes().len(),
        network.output_shape().expect("shapes propagate")
    );
    let comps = network
        .components(Granularity::Layer)
        .expect("components extract");
    println!("components (fusion rule applied):");
    for c in &comps {
        println!(
            "  {:10} {} -> {}  [{}]",
            c.name,
            c.input_shape,
            c.output_shape,
            c.signature(&network)
        );
    }

    // Composing against an empty database reports exactly which component
    // is missing — the flow's component-matching step.
    let empty = ComponentDb::new();
    let cfg = FlowConfig::new().with_seeds([1, 2]);
    match run_pre_implemented_flow(&network, &empty, &device, &cfg) {
        Err(e) => println!("\nwith an empty database the flow reports: {e}"),
        Ok(_) => unreachable!("composition cannot succeed without checkpoints"),
    }

    // Build the database and generate for real.
    let (db, _) = build_component_db(&network, &device, &cfg).expect("db builds");
    let (design, report) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    println!(
        "\nassembled '{}': {:.0} MHz, {} instances, {} inter-component nets, fully routed: {}",
        design.name,
        report.compile.timing.fmax_mhz,
        design.instances().len(),
        design.top_nets().len(),
        design.fully_routed()
    );

    // Round-trip the definition to show the archdef printer.
    let text = preimpl_cnn::cnn::archdef::to_archdef(&network);
    println!("\nround-tripped architecture definition:\n{text}");
}
