//! VGG-16 end to end: the paper's large benchmark.
//!
//! VGG streams its 138 M weights from off-chip memory, so this example also
//! plans the off-chip layout with the best-fit-with-coalescing allocator
//! (paper §V-B2). The monolithic baseline takes ~30 s; pass `--full` to run
//! it, otherwise only the pre-implemented flow runs.
//!
//! ```text
//! cargo run --release --example vgg_accelerator -- --full
//! ```

use preimpl_cnn::memalloc::plan_network_layout;
use preimpl_cnn::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::vgg16();

    // Off-chip memory layout for the streamed weights and feature maps.
    let layout = plan_network_layout(&network, 2, 1 << 30).expect("1 GiB DDR fits VGG");
    println!(
        "off-chip layout: {} buffers, {:.1} MiB used, fragmentation {:.1}%",
        layout.entries.len(),
        layout.bytes_used as f64 / (1 << 20) as f64,
        layout.fragmentation * 100.0
    );

    // Pre-implement the conv blocks / pools / FCs (block granularity — the
    // paper's VGG component split).
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::vgg_like())
        .with_granularity(Granularity::Block)
        .with_seeds([1, 2]);
    let t = std::time::Instant::now();
    let (db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
    println!(
        "\n{} components pre-implemented in {:.1} s:",
        db.len(),
        t.elapsed().as_secs_f64()
    );
    for r in &reports {
        println!(
            "  {:50} {:6.0} MHz  {:6} LUTs {:4} DSPs",
            truncate(&r.name, 50),
            r.fmax_mhz,
            r.resources.luts,
            r.resources.dsps
        );
    }

    let (design, pre) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    let util = design.utilization(&device);
    println!(
        "\nassembled VGG-16: Fmax {:.0} MHz, frame latency {:.2} ms, \
         {:.1}% LUTs / {:.1}% DSPs, generated in {:.0} ms",
        pre.compile.timing.fmax_mhz,
        pre.latency.frame_ms,
        util.luts,
        util.dsps,
        pre.total_time().as_secs_f64() * 1000.0
    );

    if full {
        println!("\nrunning the monolithic baseline (~30 s)...");
        let (_, base) = run_baseline_flow(&network, &device, &cfg).expect("baseline");
        println!("{}", FlowComparison::new(&network.name, &base, &pre));
    } else {
        println!("\n(pass --full to also run the ~30 s monolithic baseline)");
    }
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}
