//! Working with the component database directly: persistence, matching,
//! relocation validity and manual composition — the RapidWright-level API
//! the flow is built on.
//!
//! ```text
//! cargo run --release --example component_library
//! ```

use preimpl_cnn::prelude::*;
use preimpl_cnn::stitch::{relocate_to, valid_anchor_columns};

fn main() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::lenet5();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("db builds");

    // The database is keyed by component signature: kind + parameters +
    // input shape, everything that determines the hardware.
    println!("database signatures:");
    for sig in db.signatures() {
        println!("  {sig}");
    }

    // Pick the first convolution and explore where it can be relocated.
    let conv_sig = db
        .signatures()
        .find(|s| s.starts_with("conv"))
        .expect("lenet has convs")
        .to_string();
    let cp = db.get(&conv_sig).expect("just listed");
    let pb = cp.meta.pblock;
    let cols = valid_anchor_columns(&pb, &device);
    println!(
        "\n'{}' implemented in pblock {} ({}x{} tiles, {:.0} MHz)",
        conv_sig,
        pb,
        pb.width(),
        pb.height(),
        cp.meta.fmax_mhz
    );
    println!(
        "  column-compatible anchor offsets: {} positions, e.g. {:?}",
        cols.len(),
        &cols[..cols.len().min(6)]
    );

    // Relocate two replicas and stitch them into a two-stage design by hand
    // (what `compose` automates).
    let a = relocate_to(cp, &device, TileCoord::new(pb.col_lo, 0)).expect("relocates");
    let drow = i32::from(pb.height()).max(8);
    let b = relocate_to(cp, &device, TileCoord::new(pb.col_lo, drow as u16)).expect("relocates");
    let mut design = Design::new(
        "twin_conv",
        device.name(),
        preimpl_cnn::netlist::DesignKind::Assembled,
    );
    let ia = design.add_instance("conv_a", a);
    let ib = design.add_instance("conv_b", b);
    let (dout, _) = design
        .instance(ia)
        .module
        .port_by_name("dout")
        .expect("port");
    let (din, _) = design
        .instance(ib)
        .module
        .port_by_name("din")
        .expect("port");
    design
        .connect_top("a_to_b", (ia, dout), vec![(ib, din)], 16)
        .expect("stitches");

    let report = preimpl_cnn::pnr::route_assembled(
        &mut design,
        &device,
        &preimpl_cnn::pnr::RouteOptions::default(),
    )
    .expect("routes");
    println!(
        "\nhand-stitched twin-conv design: {:.0} MHz, {} unrouted nets left, \
         routed in {:?}",
        report.timing.fmax_mhz,
        design.unrouted_nets(),
        report.phases.route_design
    );

    // Checkpoints are plain JSON: show the on-disk form.
    let dir = std::env::temp_dir().join("preimpl_cnn_library_demo");
    db.save_dir(&dir).expect("saves");
    let files = std::fs::read_dir(&dir)
        .expect("readable")
        .filter_map(|e| e.ok())
        .count();
    println!("\nsaved {files} DCP files under {}", dir.display());
}
