//! LeNet-5 end to end: the paper's first benchmark.
//!
//! Builds the component database (conv1 / pool1+relu1 / conv2 / pool2+relu2
//! / fc1 / fc2), persists it to disk as a directory of DCP files, reloads
//! it — the "performed exactly once, reused in several applications"
//! workflow — then generates the accelerator, compares with the monolithic
//! baseline, and sanity-checks the model against reference inference.
//!
//! ```text
//! cargo run --release --example lenet_accelerator
//! ```

use preimpl_cnn::cnn::infer::{forward, Weights};
use preimpl_cnn::cnn::Tensor;
use preimpl_cnn::prelude::*;

fn main() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::lenet5();

    // Function optimization with a seed sweep (the paper's performance
    // exploration). The same config later drives the architecture phase and
    // the monolithic baseline (which derives its synthesis mode itself).
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1, 2, 3]);
    let (db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
    println!("pre-implemented components (Table III exploration):");
    for r in &reports {
        println!(
            "  {:14} {:6.0} MHz  latency {:3} cycles  (explored {} seeds in {:?})",
            r.name, r.fmax_mhz, r.latency_cycles, r.seeds_tried, r.build_time
        );
    }

    // Persist and reload the database — checkpoints are inspectable JSON
    // DCPs on disk.
    let dir = std::env::temp_dir().join("preimpl_cnn_lenet_db");
    db.save_dir(&dir).expect("db saves");
    let db = ComponentDb::load_dir(&dir).expect("db reloads");
    println!(
        "\ndatabase persisted to {} ({} checkpoints)",
        dir.display(),
        db.len()
    );

    // Generate the accelerator.
    let (design, pre) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("pre-implemented flow");
    println!(
        "\nassembled: Fmax {:.0} MHz, pipeline {:.0} ns, frame {:.3} ms, \
         stitching was {:.0}% of the {:.1} ms generation",
        pre.compile.timing.fmax_mhz,
        pre.latency.pipeline_ns,
        pre.latency.frame_ms,
        pre.stitch_share() * 100.0,
        pre.total_time().as_secs_f64() * 1000.0,
    );

    // Traditional baseline for the Fig. 6 / Table III comparison.
    let (_, base) = run_baseline_flow(&network, &device, &cfg).expect("baseline flow");
    println!("\n{}", FlowComparison::new(&network.name, &base, &pre));

    // Model sanity: the accelerator's function is LeNet inference; check the
    // reference model classifies deterministically with the ROM'd weights.
    let weights = Weights::random(&network, 42).expect("weights");
    let image = Tensor::from_f32(1, 32, 32, &checkerboard(32));
    let logits = forward(&network, &weights, &image).expect("inference");
    println!(
        "\nreference inference: {} classes, argmax = {}",
        logits.len(),
        logits.argmax()
    );
    assert!(design.fully_routed());
}

fn checkerboard(n: u32) -> Vec<f32> {
    (0..n * n)
        .map(|i| {
            if (i / n + i % n).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        })
        .collect()
}
