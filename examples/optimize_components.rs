//! The paper's future work, implemented: iteratively re-optimize the
//! slowest component of the database (the one that bounds the assembled
//! frequency), then re-generate the accelerator and verify it with the
//! design-rule checker.
//!
//! ```text
//! cargo run --release --example optimize_components
//! ```

use preimpl_cnn::flow::improve_slowest;
use preimpl_cnn::prelude::*;
use preimpl_cnn::stitch::check_design;

fn main() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::lenet5();

    // A deliberately shallow first pass: one placement seed per component.
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1]);
    let (mut db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
    let floor = |db: &ComponentDb| {
        db.checkpoints()
            .map(|cp| cp.meta.fmax_mhz)
            .fold(f64::INFINITY, f64::min)
    };
    println!("after the single-seed pass:");
    for r in &reports {
        println!("  {:14} {:6.0} MHz", r.name, r.fmax_mhz);
    }
    let before = floor(&db);
    println!("slowest component: {before:.0} MHz");

    // "We are planning to investigate optimization approaches to improve
    // the performance of components during the function optimization
    // stage" — three targeted rounds on whatever is slowest.
    let improvements = improve_slowest(&mut db, &network, &device, &cfg, 3).expect("rounds run");
    println!(
        "\ntargeted re-exploration made {} improvement(s):",
        improvements.len()
    );
    for imp in &improvements {
        println!(
            "  {:14} -> {:6.0} MHz ({} seeds)",
            imp.name, imp.fmax_mhz, imp.seeds_tried
        );
    }
    let after = floor(&db);
    println!("slowest component: {before:.0} -> {after:.0} MHz");
    assert!(after >= before);

    // Regenerate and verify.
    let (design, report) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    let violations = check_design(&design, &device).expect("drc runs");
    println!(
        "\nassembled: {:.0} MHz, DRC violations: {}",
        report.compile.timing.fmax_mhz,
        violations.len()
    );
    assert!(violations.is_empty());

    // Netlist analysis of the biggest component, for the curious.
    let biggest = design
        .instances()
        .iter()
        .max_by_key(|i| i.module.cells().len())
        .expect("instances exist");
    println!(
        "\nlargest instance '{}' netlist stats:\n{}",
        biggest.name,
        preimpl_cnn::netlist::module_stats(&biggest.module)
    );
}
