//! Quickstart: the whole flow on a toy CNN in under a second.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use preimpl_cnn::prelude::*;

fn main() {
    // 1. Pick a device and a network.
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    println!(
        "device {} ({} cols x {} rows), network '{}' with {} layers",
        device.name(),
        device.cols(),
        device.rows(),
        network.name,
        network.nodes().len()
    );

    // 2. Function optimization (done once): pre-implement every component
    //    out-of-context and store the locked checkpoints in a database.
    //    One FlowConfig drives both phases and the baseline.
    let cfg = FlowConfig::new().with_seeds([1, 2]);
    let (db, reports) = build_component_db(&network, &device, &cfg).expect("components build");
    println!("\ncomponent database ({} checkpoints):", db.len());
    for r in &reports {
        println!(
            "  {:12} {:6.0} MHz  {:5} LUTs {:3} DSPs  pblock {}x{}",
            r.name,
            r.fmax_mhz,
            r.resources.luts,
            r.resources.dsps,
            r.pblock.width(),
            r.pblock.height()
        );
    }

    // 3. Architecture optimization (automatic): compose the accelerator
    //    from the checkpoints and route the inter-component nets.
    let (design, report) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    assert!(design.fully_routed());
    println!(
        "\nassembled '{}': Fmax {:.0} MHz, pipeline latency {:.0} ns, \
         generated in {:.1} ms ({} stitched nets)",
        design.name,
        report.compile.timing.fmax_mhz,
        report.latency.pipeline_ns,
        report.total_time().as_secs_f64() * 1000.0,
        report.compose.stitched_nets
    );

    // 4. Compare with the traditional monolithic flow.
    let (_, baseline) = run_baseline_flow(&network, &device, &cfg).expect("baseline");
    println!("{}", FlowComparison::new(&network.name, &baseline, &report));
}
