//! Cross-model consistency: the synthesized hardware, the latency model and
//! the reference function must agree with each other — the checks that keep
//! the simulator honest.

use preimpl_cnn::cnn::graph::Granularity;
use preimpl_cnn::cnn::infer::{forward, forward_trace, Weights};
use preimpl_cnn::cnn::{cycles, models, Tensor};
use preimpl_cnn::synth::component::component_dsp_estimate;
use preimpl_cnn::synth::{synth_component, SynthOptions};

#[test]
fn synthesized_dsps_match_the_analytic_estimate() {
    // The latency model divides MACs by the analytic DSP estimate; the
    // netlist generators must instantiate exactly that many.
    for (network, gran, opts) in [
        (
            models::lenet5(),
            Granularity::Layer,
            SynthOptions::lenet_like(),
        ),
        (
            models::vgg16(),
            Granularity::Block,
            SynthOptions::vgg_like(),
        ),
    ] {
        for comp in network.components(gran).expect("components") {
            let module = synth_component(&network, &comp, &opts).expect("synthesizes");
            let estimate = component_dsp_estimate(&network, &comp).expect("estimates");
            assert_eq!(
                module.resources().dsps,
                estimate,
                "{}: netlist and estimate disagree",
                comp.name
            );
        }
    }
}

#[test]
fn rom_capacity_covers_the_weights_it_stores() {
    // LeNet hard-codes weights in ROM; every parameterized component's BRAM
    // count must cover its weight storage at 16 bits/weight.
    let network = models::lenet5();
    let shapes = network.input_shapes().expect("shapes");
    for comp in network.components(Granularity::Layer).expect("components") {
        let module =
            synth_component(&network, &comp, &SynthOptions::lenet_like()).expect("synthesizes");
        let weights: u64 = comp
            .nodes
            .iter()
            .map(|id| network.node(*id).layer.weights(shapes[id.index()]))
            .sum();
        let needed = (weights * 16).div_ceil(36 * 1024);
        assert!(
            module.resources().brams >= needed,
            "{}: {} BRAMs cannot hold {} weights",
            comp.name,
            module.resources().brams,
            weights
        );
    }
}

#[test]
fn frame_cycles_are_bounded_below_by_ideal_macs_per_dsp() {
    let network = models::vgg16();
    for comp in network.components(Granularity::Block).expect("components") {
        let macs = cycles::component_macs(&network, &comp).expect("macs");
        if macs == 0 {
            continue;
        }
        let dsps = component_dsp_estimate(&network, &comp).expect("estimates");
        let cycles = cycles::frame_cycles(macs, comp.output_shape.elements(), dsps);
        assert!(
            cycles >= macs / dsps,
            "{}: {} cycles below the ideal {}",
            comp.name,
            cycles,
            macs / dsps
        );
    }
}

#[test]
fn inference_trace_shapes_match_graph_shapes() {
    let network = models::vgg_tiny();
    let weights = Weights::random(&network, 11).expect("weights");
    let input = Tensor::zeros(3, 32, 32);
    let trace = forward_trace(&network, &weights, &input).expect("runs");
    let shapes = network.input_shapes().expect("shapes");
    for (id, tensor) in &trace {
        let expected = network
            .node(*id)
            .layer
            .output_shape(shapes[id.index()])
            .expect("output shape");
        assert_eq!(tensor.shape(), expected, "node {}", network.node(*id).name);
    }
}

#[test]
fn relu_layers_never_produce_negative_activations() {
    let network = models::lenet5();
    let weights = Weights::random(&network, 3).expect("weights");
    let input = Tensor::from_f32(
        1,
        32,
        32,
        &(0..32 * 32)
            .map(|i| ((i % 17) as f32 - 8.0) / 8.0)
            .collect::<Vec<_>>(),
    );
    let trace = forward_trace(&network, &weights, &input).expect("runs");
    for (id, tensor) in &trace {
        if network.node(*id).layer.is_elementwise() {
            assert!(
                tensor.raw().iter().all(|&v| v >= 0),
                "ReLU output contains negatives"
            );
        }
    }
}

#[test]
fn pipeline_depth_orders_components_like_the_paper() {
    // Table III ordering: conv2 deeper than conv1, pools shallow, FCs in
    // between.
    let network = models::lenet5();
    let comps = network.components(Granularity::Layer).expect("components");
    let depth = |i: usize| cycles::component_pipeline_depth(&network, &comps[i]).expect("depth");
    let (conv1, pool1, conv2, fc1) = (depth(0), depth(1), depth(2), depth(4));
    assert!(conv2 > conv1, "conv2 {conv2} <= conv1 {conv1}");
    assert!(pool1 < conv1);
    assert!(fc1 < conv1);
}

#[test]
fn quantized_inference_is_close_to_float_for_small_networks() {
    // Fixed-point vs floating point on the toy network with small weights:
    // results must stay within the quantization error envelope.
    let network = models::toy();
    let weights = Weights::random(&network, 5).expect("weights");
    let input = Tensor::from_f32(1, 8, 8, &vec![0.25f32; 64]);
    let out = forward(&network, &weights, &input).expect("runs");
    // Saturation would pin outputs at the i16 rails; random small weights
    // and inputs must not saturate.
    assert!(out
        .raw()
        .iter()
        .all(|&v| v > i16::MIN + 100 && v < i16::MAX - 100));
}
