//! Property-based tests over the flowstat aggregation pipeline: folding a
//! live event stream into a [`RunReport`] and folding the same stream
//! after a JSONL round trip (what `flowstat` reads from `--trace` files)
//! must agree exactly — for arbitrary streams, including unbalanced span
//! pairs and truncated traces — and the fold must never panic.

use preimpl_cnn::obs::{Event, EventKind, Value};
use preimpl_cnn::prelude::{parse_jsonl, RunReport};
use proptest::prelude::*;

/// Scopes chosen so the generator regularly hits the convergence-trace
/// fold paths (annealer rounds, pathfinder passes, stitch retries) in
/// addition to plain scopes.
const SCOPES: &[&str] = &[
    "pnr::place",
    "pnr::route",
    "stitch::placer",
    "flow::arch_opt",
    "bench",
];

const NAMES: &[&str] = &[
    "anneal",
    "anneal_round",
    "pathfinder",
    "pathfinder_iter",
    "threshold_retry",
    "route_design",
    "flow_done",
    "cache_hit",
];

/// Field keys include a `wallclock`-prefixed one: those are skipped by the
/// histogram fold, and must be skipped identically on both sides of the
/// round trip.
const FIELD_KEYS: &[&str] = &[
    "cost",
    "iter",
    "round",
    "overused",
    "ripups",
    "expansions",
    "accepted",
    "rejected",
    "component",
    "step",
    "score",
    "threshold",
    "wallclock_ms",
];

const STRINGS: &[&str] = &["", "c1", "conv_k5", "é層🚀", "a b:c/d"];

/// The vendored proptest stand-in has no `prop_oneof`; a selector index
/// mapped over a tuple of candidate draws covers the same ground.
fn value_strategy() -> impl Strategy<Value = Value> {
    (
        0u8..5,
        0u64..1_000_000,
        -1_000_000i64..1_000_000,
        // Finite floats only: non-finite values serialize to JSON null and
        // cannot survive any text round trip.
        -1.0e9f64..1.0e9,
        0usize..STRINGS.len(),
    )
        .prop_map(|(pick, u, i, f, s)| match pick {
            0 => Value::U64(u),
            1 => Value::I64(i),
            2 => Value::F64(f),
            3 => Value::Str(STRINGS[s].to_string()),
            _ => Value::Bool(u % 2 == 0),
        })
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    (0u8..5).prop_map(|k| match k {
        0 => EventKind::SpanStart,
        1 => EventKind::SpanEnd,
        2 => EventKind::Counter,
        3 => EventKind::Gauge,
        _ => EventKind::Point,
    })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        0u64..8,
        0usize..SCOPES.len(),
        0usize..NAMES.len(),
        kind_strategy(),
        proptest::collection::vec((0usize..FIELD_KEYS.len(), value_strategy()), 0..5),
    )
        .prop_map(|(seed, scope, name, kind, fields)| Event {
            seq: 0,    // assigned per-stream below
            ts_us: 17, // nondeterministic slot; must not influence the report
            seed,
            scope: SCOPES[scope].to_string(),
            name: NAMES[name].to_string(),
            kind,
            fields: {
                // Real emitters never repeat a key within one event, and a
                // JSON object cannot represent duplicates — drop them.
                let mut seen = std::collections::BTreeSet::new();
                fields
                    .into_iter()
                    .filter(|(k, _)| seen.insert(*k))
                    .map(|(k, v)| (FIELD_KEYS[k].to_string(), v))
                    .collect()
            },
        })
}

fn stream_strategy() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(event_strategy(), 0..64).prop_map(|mut events| {
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The report folded straight from an in-memory stream equals the one
    /// folded after serializing every event to a JSON line and parsing the
    /// file back — the `flowstat summarize` path. Their diff is empty.
    #[test]
    fn report_survives_jsonl_round_trip(events in stream_strategy()) {
        let direct = RunReport::from_events(&events);
        let jsonl: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        let parsed = parse_jsonl(&jsonl).expect("generated stream serializes to parseable JSONL");
        prop_assert_eq!(parsed.len(), events.len());
        let round_tripped = RunReport::from_events(&parsed);
        prop_assert_eq!(&direct, &round_tripped);
        prop_assert!(direct.diff(&round_tripped).is_empty());
    }

    /// Folding is total: arbitrary streams — unmatched SpanEnds, spans
    /// never closed, truncated prefixes — produce a report without
    /// panicking, and both renderings are deterministic functions of it.
    #[test]
    fn fold_and_render_never_panic(events in stream_strategy(), cut in 0usize..64) {
        let cut = cut.min(events.len());
        let report = RunReport::from_events(&events[..cut]);
        prop_assert_eq!(report.events as usize, cut);
        prop_assert_eq!(report.render_text(), RunReport::from_events(&events[..cut]).render_text());
        prop_assert_eq!(report.render_json(), RunReport::from_events(&events[..cut]).render_json());
    }

    /// Self-diff of any report is empty; a diff against the stream with
    /// one extra counter event is not, and every entry carries a key.
    #[test]
    fn self_diff_is_empty_and_perturbation_is_visible(events in stream_strategy()) {
        let report = RunReport::from_events(&events);
        prop_assert!(report.diff(&report).is_empty());

        let mut perturbed = events.clone();
        perturbed.push(Event {
            seq: events.len() as u64,
            ts_us: 0,
            seed: 0,
            scope: "proptest".to_string(),
            name: "extra".to_string(),
            kind: EventKind::Counter,
            fields: vec![("n".to_string(), Value::U64(1))],
        });
        let other = RunReport::from_events(&perturbed);
        let diff = report.diff(&other);
        prop_assert!(!diff.is_empty());
        prop_assert!(diff.entries.iter().all(|e| !e.key.is_empty()));
    }
}
