//! Contract tests for the vendored rayon stand-in's parallel backend:
//! parallel iteration must be indistinguishable from sequential iteration
//! in content and order at every thread count, and worker panics must
//! propagate to the caller instead of hanging the pool.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use rayon::prelude::*;

/// The parallelism level is process-global; tests that change it must not
/// interleave. Restores a multi-threaded level afterwards so the rest of
/// the binary keeps exercising the parallel path.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn with_level<R>(level: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rayon::set_num_threads(level);
    let out = f();
    rayon::set_num_threads(4);
    out
}

proptest! {
    /// `into_par_iter().map().collect()` equals the sequential map — same
    /// elements, same order — for every thread count, including counts far
    /// above the item count and the forced-sequential count of 1.
    #[test]
    fn par_map_equals_sequential_map(
        items in proptest::collection::vec(-1_000i64..1_000, 0..200),
        threads in 1usize..9,
    ) {
        let expected: Vec<i64> = items.iter().map(|&x| x * 3 - 7).collect();
        let got: Vec<i64> = with_level(threads, || {
            items.clone().into_par_iter().map(|x| x * 3 - 7).collect()
        });
        prop_assert_eq!(got, expected);
    }

    /// Borrowing iteration (`par_iter`) preserves order and content too.
    #[test]
    fn par_iter_ref_equals_sequential(
        items in proptest::collection::vec(0u32..u32::MAX, 0..200),
        threads in 1usize..9,
    ) {
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) + 1).collect();
        let got: Vec<u64> = with_level(threads, || {
            items.par_iter().map(|&x| u64::from(x) + 1).collect()
        });
        prop_assert_eq!(got, expected);
    }

    /// Fallible collects short-circuit to the first error in *input index
    /// order*, matching what a sequential `collect::<Result<_, _>>()` over
    /// already-computed values reports.
    #[test]
    fn par_collect_result_reports_first_error_in_index_order(
        items in proptest::collection::vec(0i64..100, 1..100),
        threads in 1usize..9,
    ) {
        let check = |x: i64| if x % 7 == 3 { Err(x) } else { Ok(x * 2) };
        let expected: Result<Vec<i64>, i64> = items.iter().map(|&x| check(x)).collect();
        let got: Result<Vec<i64>, i64> = with_level(threads, || {
            items.clone().into_par_iter().map(check).collect()
        });
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn panic_in_worker_propagates_to_caller() {
    let result = with_level(4, || {
        catch_unwind(AssertUnwindSafe(|| {
            let _: Vec<i32> = (0..64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| {
                    if i == 17 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .collect();
        }))
    });
    let payload = result.expect_err("panic must cross the pool boundary");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom at 17"), "payload lost: {msg:?}");
}

#[test]
fn pool_survives_a_panicked_batch() {
    // A panic must not wedge the workers: the very next parallel call on
    // the same pool still completes.
    with_level(4, || {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            (0..32).collect::<Vec<_>>().into_par_iter().for_each(|i| {
                if i == 5 {
                    panic!("first batch dies");
                }
            });
        }));
        let sum: i64 = (1..=100i64).collect::<Vec<_>>().into_par_iter().sum();
        assert_eq!(sum, 5050);
    });
}

#[test]
fn join_runs_both_closures_and_returns_in_order() {
    let (a, b) = with_level(2, || rayon::join(|| 21 * 2, || "right".len()));
    assert_eq!(a, 42);
    assert_eq!(b, 5);
}
