//! Failure injection: every gate in the flow must fail loudly and
//! specifically, not corrupt state or panic.

use preimpl_cnn::flow::FlowError;
use preimpl_cnn::prelude::*;
use preimpl_cnn::stitch::StitchError;

#[test]
fn missing_component_names_the_signature() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let empty = ComponentDb::new();
    match run_pre_implemented_flow(&network, &empty, &device, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::MissingComponent(sig))) => {
            assert!(sig.starts_with("conv_k3"), "unexpected signature {sig}");
        }
        other => panic!("expected MissingComponent, got {other:?}"),
    }
}

#[test]
fn partial_database_reports_the_first_unmatched_component() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (full_db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    // Rebuild a database missing exactly the pool component.
    let mut partial = ComponentDb::new();
    for cp in full_db.checkpoints() {
        if !cp.meta.signature.starts_with("pool") {
            partial.insert(cp.clone());
        }
    }
    match run_pre_implemented_flow(&network, &partial, &device, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::MissingComponent(sig))) => {
            assert!(sig.starts_with("pool"), "should miss the pool, got {sig}");
        }
        other => panic!("expected MissingComponent, got {other:?}"),
    }
}

#[test]
fn oversized_demand_fails_pblock_sizing() {
    let device = Device::test_part();
    let demand = ResourceCount {
        luts: 10_000_000,
        ..ResourceCount::ZERO
    };
    match preimpl_cnn::flow::size_pblock(&demand, &device, 0.7) {
        Err(FlowError::ComponentUnsatisfiable { .. }) => {}
        other => panic!("expected ComponentUnsatisfiable, got {other:?}"),
    }
}

#[test]
fn device_mismatch_is_rejected_at_relocation() {
    let device = Device::xcku5p_like();
    let other = Device::xcku060_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    match run_pre_implemented_flow(&network, &db, &other, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::DeviceMismatch { .. })) => {}
        other => panic!("expected DeviceMismatch, got {other:?}"),
    }
}

#[test]
fn malformed_archdefs_report_line_numbers() {
    for (text, expect_line) in [
        ("network a\ninput 1x8\n", 2),
        ("network a\ninput 1x8x8\nconv c kernel=0 out=2\n", 3),
        ("network a\ninput 1x8x8\nbogus x\n", 3),
    ] {
        match parse_archdef(text) {
            Err(preimpl_cnn::cnn::CnnError::Parse { line, .. }) => {
                assert_eq!(line, expect_line, "for {text:?}")
            }
            Err(preimpl_cnn::cnn::CnnError::ShapeMismatch(_)) if expect_line == 3 => {}
            other => panic!("expected parse error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn router_reports_congestion_when_capacity_is_starved() {
    use preimpl_cnn::pnr::{place_module, route_module, PlaceOptions, RouteOptions};
    let device = Device::test_part();
    let network = preimpl_cnn::cnn::models::toy();
    let mut module = preimpl_cnn::synth::synth_network_flat(
        &network,
        Granularity::Layer,
        &SynthOptions::lenet_like(),
    )
    .expect("synthesizes");
    place_module(&mut module, &device, &PlaceOptions::default()).expect("places");
    // One wire per tile with a single negotiation round cannot succeed for
    // a thousand-cell design on the tiny test part.
    let starved = RouteOptions {
        max_iters: 1,
        capacity: 1,
    };
    let (stats, map) = route_module(&mut module, &device, &starved).expect("runs");
    assert!(
        stats.overused_tiles > 0,
        "starved routing should leave overuse"
    );
    assert_eq!(map.overused(), stats.overused_tiles);
}

#[test]
fn locked_modules_reject_mutation_everywhere() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    let cp = db.checkpoints().next().expect("non-empty");
    let mut module = cp.module.clone();
    assert!(module
        .set_placement(preimpl_cnn::netlist::CellId(0), TileCoord::new(1, 1))
        .is_err());
    assert!(module.cells_mut().is_err());
    assert!(module.nets_mut().is_err());
    assert!(module.ports_mut().is_err());
    // The placer refuses to touch it too (all cells fixed => no-op is fine,
    // but a locked module as a whole errors at the module API).
    use preimpl_cnn::pnr::{place_module, PlaceOptions};
    let placed_before: Vec<_> = module.cells().iter().map(|c| c.placement).collect();
    // place_module on a locked module: every cell is fixed, so nothing
    // moves and nothing errors — verify it is a strict no-op.
    place_module(&mut module, &device, &PlaceOptions::default()).expect("no-op placement");
    let placed_after: Vec<_> = module.cells().iter().map(|c| c.placement).collect();
    assert_eq!(placed_before, placed_after);
}

#[test]
fn corrupt_checkpoint_files_are_decode_errors() {
    let dir = std::env::temp_dir().join(format!("pi_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("bad.dcp.json"), b"{ not valid json").expect("writes");
    match ComponentDb::load_dir(&dir) {
        Err(StitchError::Netlist(preimpl_cnn::netlist::NetlistError::Decode(_))) => {}
        other => panic!("expected decode error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
