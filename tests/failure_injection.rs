//! Failure injection: every gate in the flow must fail loudly and
//! specifically, not corrupt state or panic.

use preimpl_cnn::flow::FlowError;
use preimpl_cnn::prelude::*;
use preimpl_cnn::stitch::StitchError;

#[test]
fn missing_component_names_the_signature() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let empty = ComponentDb::new();
    match run_pre_implemented_flow(&network, &empty, &device, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::MissingComponent(sig))) => {
            assert!(sig.starts_with("conv_k3"), "unexpected signature {sig}");
        }
        other => panic!("expected MissingComponent, got {other:?}"),
    }
}

#[test]
fn partial_database_reports_the_first_unmatched_component() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (full_db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    // Rebuild a database missing exactly the pool component.
    let mut partial = ComponentDb::new();
    for cp in full_db.checkpoints() {
        if !cp.meta.signature.starts_with("pool") {
            partial.insert(cp.clone());
        }
    }
    match run_pre_implemented_flow(&network, &partial, &device, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::MissingComponent(sig))) => {
            assert!(sig.starts_with("pool"), "should miss the pool, got {sig}");
        }
        other => panic!("expected MissingComponent, got {other:?}"),
    }
}

#[test]
fn oversized_demand_fails_pblock_sizing() {
    let device = Device::test_part();
    let demand = ResourceCount {
        luts: 10_000_000,
        ..ResourceCount::ZERO
    };
    match preimpl_cnn::flow::size_pblock(&demand, &device, 0.7) {
        Err(FlowError::ComponentUnsatisfiable { .. }) => {}
        other => panic!("expected ComponentUnsatisfiable, got {other:?}"),
    }
}

#[test]
fn device_mismatch_is_rejected_at_relocation() {
    let device = Device::xcku5p_like();
    let other = Device::xcku060_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    match run_pre_implemented_flow(&network, &db, &other, &FlowConfig::new()) {
        Err(FlowError::Stitch(StitchError::DeviceMismatch { .. })) => {}
        other => panic!("expected DeviceMismatch, got {other:?}"),
    }
}

#[test]
fn malformed_archdefs_report_line_numbers() {
    for (text, expect_line) in [
        ("network a\ninput 1x8\n", 2),
        ("network a\ninput 1x8x8\nconv c kernel=0 out=2\n", 3),
        ("network a\ninput 1x8x8\nbogus x\n", 3),
    ] {
        match parse_archdef(text) {
            Err(preimpl_cnn::cnn::CnnError::Parse { line, .. }) => {
                assert_eq!(line, expect_line, "for {text:?}")
            }
            Err(preimpl_cnn::cnn::CnnError::ShapeMismatch(_)) if expect_line == 3 => {}
            other => panic!("expected parse error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn router_reports_congestion_when_capacity_is_starved() {
    use preimpl_cnn::pnr::{place_module, route_module, PlaceOptions, RouteOptions};
    let device = Device::test_part();
    let network = preimpl_cnn::cnn::models::toy();
    let mut module = preimpl_cnn::synth::synth_network_flat(
        &network,
        Granularity::Layer,
        &SynthOptions::lenet_like(),
    )
    .expect("synthesizes");
    place_module(&mut module, &device, &PlaceOptions::default()).expect("places");
    // One wire per tile with a single negotiation round cannot succeed for
    // a thousand-cell design on the tiny test part.
    let starved = RouteOptions {
        max_iters: 1,
        capacity: 1,
        ..RouteOptions::default()
    };
    let (stats, map) = route_module(&mut module, &device, &starved).expect("runs");
    assert!(
        stats.overused_tiles > 0,
        "starved routing should leave overuse"
    );
    assert_eq!(map.overused(), stats.overused_tiles);
}

#[test]
fn locked_modules_reject_mutation_everywhere() {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("builds");
    let cp = db.checkpoints().next().expect("non-empty");
    let mut module = cp.module.clone();
    assert!(module
        .set_placement(preimpl_cnn::netlist::CellId(0), TileCoord::new(1, 1))
        .is_err());
    assert!(module.cells_mut().is_err());
    assert!(module.nets_mut().is_err());
    assert!(module.ports_mut().is_err());
    // The placer refuses to touch it too (all cells fixed => no-op is fine,
    // but a locked module as a whole errors at the module API).
    use preimpl_cnn::pnr::{place_module, PlaceOptions};
    let placed_before: Vec<_> = module.cells().iter().map(|c| c.placement).collect();
    // place_module on a locked module: every cell is fixed, so nothing
    // moves and nothing errors — verify it is a strict no-op.
    place_module(&mut module, &device, &PlaceOptions::default()).expect("no-op placement");
    let placed_after: Vec<_> = module.cells().iter().map(|c| c.placement).collect();
    assert_eq!(placed_before, placed_after);
}

// ---- persistent db-cache faults ---------------------------------------
//
// Every way the on-disk cache can rot — truncated objects, dangling
// manifest entries, stale format versions, a corrupted manifest — must
// quarantine the bad entry and fall back to rebuilding, never panic, and
// the recovery must be visible in telemetry.

mod db_cache_faults {
    use super::*;
    use preimpl_cnn::obs::MemorySink;
    use preimpl_cnn::stitch::{cache_key, CacheLookup, DbCache};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    fn tmp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pi_cache_fault_{tag}_{}", std::process::id()))
    }

    /// The object file backing `key` (filenames embed the cache key).
    fn object_path(root: &Path, key: &str) -> PathBuf {
        std::fs::read_dir(root.join("objects"))
            .expect("objects dir")
            .map(|e| e.expect("dir entry").path())
            .find(|p| p.to_string_lossy().contains(key))
            .expect("object file for key")
    }

    fn quarantined_names(root: &Path) -> Vec<String> {
        match std::fs::read_dir(root.join("quarantine")) {
            Ok(rd) => rd
                .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Populate a cache for the toy network and return (root, cfg, key of
    /// the first component, component count).
    fn populated(tag: &str) -> (PathBuf, FlowConfig, String, usize) {
        let root = tmp_root(tag);
        std::fs::remove_dir_all(&root).ok();
        let device = Device::xcku5p_like();
        let network = preimpl_cnn::cnn::models::toy();
        let cfg = FlowConfig::new().with_seeds([1]).with_db_dir(&root);
        let (_, reports, stats) =
            build_component_db_cached(&network, &device, &cfg).expect("cold build");
        assert_eq!(stats.invalidations, 0);
        let comps = network
            .components(preimpl_cnn::cnn::graph::Granularity::Layer)
            .unwrap();
        let sig = comps[0].signature(&network);
        let key = cache_key(&sig, device.name(), cfg.cache_fingerprint());
        (root, cfg, key, reports.len())
    }

    /// Corrupt one entry via `mutate`, then verify: lookup quarantines it
    /// with `reason`, a cached flow rebuild recovers (right stats, telemetry
    /// trail), and a final run is all hits again.
    fn assert_recovers(tag: &str, reason: &str, mutate: impl Fn(&Path, &str)) {
        let (root, cfg, key, n) = populated(tag);
        mutate(&root, &key);

        // The cached build rebuilds exactly the poisoned component and says
        // so in telemetry.
        let sink = Arc::new(MemorySink::new());
        let device = Device::xcku5p_like();
        let network = preimpl_cnn::cnn::models::toy();
        let traced = cfg.clone().with_sink(sink.clone());
        let (db, reports, stats) =
            build_component_db_cached(&network, &device, &traced).expect("recovery build");
        assert_eq!(db.len(), n);
        assert_eq!(reports.len(), 1, "only the poisoned component rebuilds");
        assert_eq!(
            (stats.hits, stats.misses, stats.invalidations),
            (n - 1, 1, 1),
            "for {reason}"
        );
        let events = sink.snapshot();
        assert!(
            events.iter().any(|e| e.name == "cache_invalidate"
                && e.fields
                    .iter()
                    .any(|(k, v)| k == "reason" && format!("{v:?}").contains(reason))),
            "no cache_invalidate({reason}) event in telemetry"
        );

        // And the rebuild re-persisted the entry: next run is clean.
        let (_, _, stats) = build_component_db_cached(&network, &device, &cfg).expect("warm build");
        assert!(stats.all_hits(), "after recovery: {stats:?}");

        // Poison again and probe the cache directly: the entry is
        // invalidated with the exact reason and its file lands in
        // quarantine rather than being reinterpreted.
        mutate(&root, &key);
        let obs = preimpl_cnn::obs::Obs::null();
        let mut cache = DbCache::open(&root, &obs).expect("open never fails on entry rot");
        match cache.lookup(&key, &obs) {
            CacheLookup::Invalidated { reason: got } => assert_eq!(got, reason),
            other => panic!("expected Invalidated({reason}), got {other:?}"),
        }
        if reason != "missing_file" {
            assert!(
                !quarantined_names(&root).is_empty(),
                "nothing quarantined for {reason}"
            );
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_checkpoint_is_quarantined_and_rebuilt() {
        assert_recovers("truncated", "corrupt", |root, key| {
            let path = object_path(root, key);
            let bytes = std::fs::read(&path).expect("read object");
            std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate object");
        });
    }

    #[test]
    fn manifest_entry_with_missing_file_is_dropped_and_rebuilt() {
        assert_recovers("missing", "missing_file", |root, key| {
            std::fs::remove_file(object_path(root, key)).expect("delete object");
        });
    }

    #[test]
    fn stale_format_version_is_quarantined_and_rebuilt() {
        assert_recovers("stale", "stale_version", |root, key| {
            let path = object_path(root, key);
            let text = std::fs::read_to_string(&path).expect("read object");
            assert!(text.contains("\"format_version\""));
            let stale = text.replacen(
                &format!(
                    "\"format_version\":{}",
                    preimpl_cnn::netlist::CHECKPOINT_FORMAT_VERSION
                ),
                "\"format_version\":999",
                1,
            );
            assert_ne!(stale, text, "fault injection failed to rewrite the version");
            std::fs::write(&path, stale).expect("write stale object");
        });
    }

    #[test]
    fn corrupted_manifest_resets_the_cache_instead_of_crashing() {
        let (root, cfg, _, n) = populated("manifest");
        std::fs::write(root.join("manifest.json"), "{ not json").expect("corrupt manifest");
        let obs = preimpl_cnn::obs::Obs::null();
        let cache = DbCache::open(&root, &obs).expect("open survives manifest rot");
        assert!(cache.is_empty(), "rotten manifest must reset the index");
        assert!(
            quarantined_names(&root)
                .iter()
                .any(|f| f.contains("manifest")),
            "manifest not quarantined"
        );
        // Everything rebuilds (objects without manifest entries are dead
        // weight, not hits) and the cache is serviceable again.
        let device = Device::xcku5p_like();
        let network = preimpl_cnn::cnn::models::toy();
        let (_, _, stats) = build_component_db_cached(&network, &device, &cfg).expect("rebuild");
        assert_eq!((stats.hits, stats.misses), (0, n));
        let (_, _, stats) = build_component_db_cached(&network, &device, &cfg).expect("warm");
        assert!(stats.all_hits());
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn corrupt_checkpoint_files_are_decode_errors() {
    let dir = std::env::temp_dir().join(format!("pi_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("bad.dcp.json"), b"{ not valid json").expect("writes");
    match ComponentDb::load_dir(&dir) {
        Err(StitchError::Netlist(preimpl_cnn::netlist::NetlistError::Decode(_))) => {}
        other => panic!("expected decode error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
