//! Determinism of the persistent component-database cache: warm-cache and
//! cold-cache LeNet-5 runs must assemble byte-identical accelerators, and
//! the telemetry streams must not depend on the worker-thread count —
//! loading checkpoints off disk is as reproducible as building them.

use preimpl_cnn::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Run {
    summary: String,
    stream: String,
    stats: DbCacheStats,
    built: usize,
}

fn tmp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pi_dbcache_det_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One LeNet-5 cached-flow run against `dir` at a worker-thread count.
/// Returns the deterministic report projection and the stripped telemetry
/// stream.
fn cached_run(dir: &Path, threads: usize) -> Run {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::lenet5();
    let sink = Arc::new(MemorySink::new());
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1])
        .with_threads(threads)
        .with_db_dir(dir)
        .with_sink(sink.clone());
    let (db, reports, stats) =
        build_component_db_cached(&network, &device, &cfg).expect("db builds");
    let (_, report) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    Run {
        summary: report.deterministic_summary(),
        stream: sink.stripped_jsonl(),
        stats,
        built: reports.len(),
    }
}

#[test]
fn warm_and_cold_runs_agree_at_any_thread_count() {
    // Cold runs: fresh cache directory each, at 1 and 4 workers.
    let dir1 = tmp_root("cold1");
    let cold1 = cached_run(&dir1, 1);
    assert_eq!(cold1.stats.hits, 0, "cold cache must not hit");
    assert!(cold1.built > 0);

    let dir4 = tmp_root("cold4");
    let cold4 = cached_run(&dir4, 4);
    assert_eq!(
        cold1.stream, cold4.stream,
        "cold-run telemetry changed between 1 and 4 worker threads"
    );

    // Warm runs against the populated caches: zero pre-implementations.
    let warm1 = cached_run(&dir1, 1);
    assert!(
        warm1.stats.all_hits() && warm1.built == 0,
        "warm run pre-implemented components: {:?}",
        warm1.stats
    );
    let warm4 = cached_run(&dir4, 4);
    assert!(warm4.stats.all_hits() && warm4.built == 0);
    assert_eq!(
        warm1.stream, warm4.stream,
        "warm-run telemetry changed between 1 and 4 worker threads"
    );

    // The assembled accelerator is the same in all four runs, byte for
    // byte — loading checkpoints is indistinguishable from building them.
    assert!(!warm1.summary.is_empty());
    assert_eq!(cold1.summary, cold4.summary);
    assert_eq!(
        cold1.summary, warm1.summary,
        "warm result drifted from cold"
    );
    assert_eq!(warm1.summary, warm4.summary);

    // Warm streams do record the cache traffic.
    assert!(
        warm1.stream.contains("cache_hit"),
        "warm stream missing cache_hit events"
    );
    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir4).ok();
}
