//! Property and acceptance tests of the `pi-lint` dataflow engine: the
//! fixpoint terminates on arbitrary cyclic graphs, FIFO minima are
//! monotone in path skew, autosized capacities always absorb the computed
//! occupancy, and the skewed-ResNet scenario flows end-to-end under
//! `FlowConfig::with_fifo_autosize` with thread-count-independent
//! telemetry.

use preimpl_cnn::lint::dataflow::min_depth_for_skew;
use preimpl_cnn::lint::{analyze_dataflow, fixpoint_intervals, Interval, LintConfig, LintEngine};
use preimpl_cnn::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The bundled ResNet descriptor with its main-path convolutions widened
/// to `kernel` (and padding keeping shapes closed), which stretches the
/// skip-path skew without changing the topology.
fn skewed_resnet(kernel: u64) -> Network {
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("models/resnet_small.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let skewed = text
        .replace("\"kernel\": 3", &format!("\"kernel\": {kernel}"))
        .replace("\"pad\": 1", &format!("\"pad\": {}", (kernel - 1) / 2));
    let (import, findings) = preimpl_cnn::model::import_lenient(&skewed, ModelFormat::Json);
    assert!(findings.is_empty(), "{findings:?}");
    import.expect("skewed descriptor imports").network
}

proptest! {
    /// The interval fixpoint terminates on *arbitrary* directed graphs —
    /// self-loops, cycles, disconnected nodes — within its stated
    /// iteration budget, and never reports divergence on a forward DAG.
    #[test]
    fn fixpoint_terminates_on_arbitrary_graphs(
        n in 1usize..12,
        edge_bits in proptest::collection::vec(0u8..2, 144..145),
        depths in proptest::collection::vec(0u64..1_000, 12..13),
        forward_only in 0u8..2,
    ) {
        let forward_only = forward_only == 1;
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for a in 0..n {
            for b in 0..n {
                let keep = edge_bits[a * 12 + b] == 1 && (!forward_only || a < b);
                if keep {
                    succs[a].push(b);
                    preds[b].push(a);
                }
            }
        }
        let seeds: Vec<(usize, Interval)> = (0..n)
            .filter(|&i| preds[i].is_empty())
            .map(|i| (i, Interval::point(0)))
            .collect();
        let out = fixpoint_intervals(&preds, &succs, &seeds, |p, _, v| v.offset(depths[p]));
        let budget = ((n as u64) + 1) * (8 + 2) * 4 + 1024;
        prop_assert!(out.iterations <= budget, "{} > {budget}", out.iterations);
        if forward_only {
            prop_assert!(!out.diverged, "DAG widened: {out:?}");
            // On a forward DAG every seeded-reachable value is finite.
            for v in out.values.into_iter().flatten() {
                prop_assert!(!v.is_top());
            }
        }
    }

    /// The FIFO sizing rule is monotone in skew and exact at zero: more
    /// cycles of skew can never need a *shallower* FIFO, and zero skew
    /// needs exactly the one slot in flight.
    #[test]
    fn min_depth_is_monotone_in_skew(
        skew in 0u64..10_000,
        delta in 1u64..1_000,
        tokens in 1u64..100_000,
        frame in 1u64..100_000,
    ) {
        let base = min_depth_for_skew(skew, tokens, frame);
        let more = min_depth_for_skew(skew + delta, tokens, frame);
        prop_assert!(more >= base, "skew {skew}+{delta}: {more} < {base}");
        prop_assert_eq!(min_depth_for_skew(0, tokens, frame), 1);
    }
}

/// Network-level monotonicity: widening the ResNet main-path kernels
/// strictly stretches the add2 skip skew, so the analysis' deepest FIFO
/// requirement is non-decreasing in kernel size — and crosses the default
/// capacity (64) past kernel 3, which is what the CI trigger relies on.
#[test]
fn resnet_skip_min_depth_grows_with_kernel() {
    let mut last = 0u64;
    for kernel in [3u64, 5, 7, 9] {
        let network = skewed_resnet(kernel);
        let analysis = analyze_dataflow(&network, Granularity::Layer);
        assert!(!analysis.diverged, "kernel {kernel} diverged");
        let deepest = analysis.max_min_depth();
        assert!(
            deepest >= last,
            "kernel {kernel}: {deepest} < previous {last}"
        );
        last = deepest;
        let engine = LintEngine::new(LintConfig::new());
        let report = engine.lint_dataflow(&network, Granularity::Layer, false, &Obs::null());
        if kernel == 3 {
            assert!(
                report.is_clean(),
                "kernel {kernel}: {}",
                report.render_text()
            );
        } else {
            assert!(
                report.diagnostics.iter().any(|d| d.code == "PL0400"),
                "kernel {kernel} must trip the deadlock finding: {}",
                report.render_text()
            );
            assert!(
                report.diagnostics.iter().any(|d| d.code == "PL0401"
                    && d.message.contains(&format!("minimum depth {deepest}"))),
                "PL0401 must carry the computed minimum: {}",
                report.render_text()
            );
        }
    }
}

/// Autosizing is self-consistent by construction: linting against the
/// depths the analysis itself computed can never find an undersized link,
/// whatever the skew.
#[test]
fn autosized_capacities_always_lint_clean() {
    let engine = LintEngine::new(LintConfig::new());
    for network in [
        models::lenet5(),
        models::alexnet_like(),
        models::resnet_small(),
        models::cifar10_quick(),
        skewed_resnet(7),
        skewed_resnet(9),
    ] {
        let report = engine.lint_dataflow(&network, Granularity::Layer, true, &Obs::null());
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.code == "PL0400" || d.code == "PL0401"),
            "{}: {}",
            network.name,
            report.render_text()
        );
    }
}

/// The acceptance scenario end-to-end: the skewed ResNet trips the lint
/// gate at the default link depth, but under `with_fifo_autosize` the
/// same model flows to completion with the computed depths installed on
/// the stitched nets — and the run's telemetry is byte-identical at
/// `PI_THREADS` 1 and 4.
#[test]
fn skewed_resnet_flows_under_fifo_autosize() {
    let device = Device::xcku5p_like();
    let network = skewed_resnet(7);
    let base = FlowConfig::new()
        .with_seeds([1])
        .with_lint(LintConfig::new().with_deny_warnings(true));
    // The dataflow gate guards the db build too, so pre-implementation
    // itself must run under autosize (the fingerprint ignores the knob:
    // the same checkpoints serve both configs).
    let (db, _) =
        build_component_db(&network, &device, &base.clone().with_fifo_autosize(true)).unwrap();

    // Gate trips without autosizing: the skip FIFO cannot absorb the skew.
    let err = run_pre_implemented_flow(&network, &db, &device, &base).unwrap_err();
    match err {
        preimpl_cnn::flow::FlowError::LintFailed(report) => {
            assert!(
                report.diagnostics.iter().any(|d| d.code == "PL0400"),
                "{}",
                report.render_text()
            );
        }
        other => panic!("expected LintFailed, got {other}"),
    }

    // With autosizing the identical inputs flow to completion and the
    // deepest computed requirement lands on a stitched net.
    let analysis = analyze_dataflow(&network, Granularity::Layer);
    let deepest = analysis.max_min_depth();
    assert!(deepest > preimpl_cnn::netlist::DEFAULT_LINK_FIFO_DEPTH);
    let mut renders = Vec::new();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let sink = Arc::new(MemorySink::new());
        let cfg = base
            .clone()
            .with_fifo_autosize(true)
            .with_obs(Obs::new(sink.clone()));
        let (design, report) = run_pre_implemented_flow(&network, &db, &device, &cfg).unwrap();
        assert!(design.fully_routed());
        assert!(
            report.lint.as_ref().expect("lint ran").is_clean(),
            "{}",
            report.lint.unwrap().render_text()
        );
        assert!(
            design.top_nets().iter().any(|n| n.fifo_depth == deepest),
            "no stitched net carries the computed depth {deepest}: {:?}",
            design
                .top_nets()
                .iter()
                .map(|n| (&n.name, n.fifo_depth))
                .collect::<Vec<_>>()
        );
        renders.push(RunReport::from_events(&sink.snapshot()).render_text());
    }
    assert_eq!(renders[0], renders[1], "telemetry depends on thread count");
}
