//! Property tests for the `FlowConfig` wire format (`pi_flow::config_json`).
//!
//! `pi-serve` job IDs are content hashes over `FlowConfig::to_json()`, and
//! the daemon rebuilds the config with `from_json` before running the
//! flow — so the wire format must (a) preserve `cache_fingerprint()`
//! (otherwise a remote job would rebuild components a local run already
//! cached), and (b) serialize equal configs byte-identically (otherwise
//! identical submissions would not coalesce). Both properties are checked
//! here over randomized knob combinations, not just the defaults.

use preimpl_cnn::cnn::graph::Granularity;
use preimpl_cnn::lint::{Level, LintConfig, Waiver};
use preimpl_cnn::pnr::RouteOptions;
use preimpl_cnn::prelude::FlowConfig;
use preimpl_cnn::stitch::ComponentPlacerOptions;
use preimpl_cnn::synth::{SynthMode, SynthOptions};
use proptest::prelude::*;

/// Real codes from the lint registry plus one unknown-looking spelling
/// (the levels map is policy, not validation — unknown codes may be
/// configured and simply never fire).
const CODES: &[&str] = &["PL0101", "PL0107", "PL0206", "PL0301", "PL9999"];

/// Waiver origin prefixes with globbing, separators, unicode, empty.
const PREFIXES: &[&str] = &["", "net:top_*", "comp:conv2d_*", "mem/alloc", "配線*", "*"];

/// Cache directories with relative/absolute/dotted/unicode shapes.
const DIRS: &[&str] = &[
    "/tmp/pi-db",
    "rel/cache",
    "./x",
    "..",
    "キャッシュ",
    "a b/c",
];

fn pbool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

/// `Option<T>` stand-in: flag + value.
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (0u8..2, s).prop_map(|(some, v)| if some == 1 { Some(v) } else { None })
}

fn lint_strategy() -> impl Strategy<Value = Option<LintConfig>> {
    let levels = proptest::collection::vec((0usize..CODES.len(), 0u8..3), 0..4);
    let waivers = proptest::collection::vec((0usize..CODES.len(), 0usize..PREFIXES.len()), 0..3);
    let cfg = (
        (levels, waivers),
        (1usize..64, 1u64..1_000_000, 1u64..512),
        pbool(),
    )
        .prop_map(|((levels, waivers), (fanout, budget, fifo), deny)| {
            let mut lint = LintConfig::new()
                .with_fanout_threshold(fanout)
                .with_frame_cycle_budget(budget)
                .with_link_fifo_depth(fifo)
                .with_deny_warnings(deny);
            for (code, level) in levels {
                let level = match level {
                    0 => Level::Allow,
                    1 => Level::Warn,
                    _ => Level::Deny,
                };
                lint = lint.with_level(CODES[code].to_string(), level);
            }
            lint.with_waivers(
                waivers
                    .into_iter()
                    .map(|(code, prefix)| Waiver {
                        code: CODES[code].to_string(),
                        origin_prefix: PREFIXES[prefix].to_string(),
                    })
                    .collect(),
            )
        });
    opt(cfg)
}

fn config_strategy() -> impl Strategy<Value = FlowConfig> {
    let shape = (
        pbool(),                                          // granularity
        proptest::collection::vec(0u64..1_000_000, 1..6), // seeds
        opt(50.0f64..2_000.0),                            // target fmax
        0.05f64..1.0,                                     // pblock utilization
        0.1f64..16.0,                                     // effort
    );
    let engines = (
        pbool(),                                             // plan partpins
        (1usize..40, 1u64..200, pbool(), pbool()),           // route knobs
        (0.0f64..500.0, 0.0f64..20.0, 0u64..16, 0usize..12), // placer knobs
        0usize..10,                                          // phys-opt passes
        0.5f64..16.0,                                        // baseline effort
    );
    let synth = (pbool(), 1u64..64, pbool(), pbool());
    let cache = (
        opt(1usize..32),         // threads
        opt(0usize..DIRS.len()), // db dir
        opt(1u64..u64::MAX),     // db budget
    );
    (shape, engines, synth, cache, lint_strategy()).prop_map(
        |(
            (block, seeds, target, util, effort),
            (partpins, (max_iters, capacity, steiner, slack_order), placer, passes, baseline),
            (mono, width, on_chip, autosize),
            (threads, db_dir, budget),
            lint,
        )| {
            let mut cfg = FlowConfig::new()
                .with_synth(SynthOptions {
                    mode: if mono {
                        SynthMode::Monolithic
                    } else {
                        SynthMode::Ooc
                    },
                    data_width: width as u16,
                    weights_on_chip: on_chip,
                })
                .with_granularity(if block {
                    Granularity::Block
                } else {
                    Granularity::Layer
                })
                .with_seeds(seeds)
                .with_pblock_utilization(util)
                .with_effort(effort)
                .with_plan_partpins(partpins)
                .with_route(RouteOptions {
                    max_iters,
                    capacity: capacity as u16,
                    steiner,
                    slack_order,
                })
                .with_placer(ComponentPlacerOptions {
                    timing_threshold: placer.0,
                    congestion_weight: placer.1,
                    crowding_margin: placer.2 as u16,
                    max_retries: placer.3,
                })
                .with_phys_opt_passes(passes)
                .with_baseline_effort(baseline)
                .with_fifo_autosize(autosize);
            if let Some(t) = target {
                cfg = cfg.with_target_fmax(t);
            }
            if let Some(t) = threads {
                cfg = cfg.with_threads(t);
            }
            if let Some(d) = db_dir {
                cfg = cfg.with_db_dir(DIRS[d]);
            }
            if let Some(b) = budget {
                cfg = cfg.with_db_budget_bytes(b);
            }
            if let Some(l) = lint {
                cfg = cfg.with_lint(l);
            }
            cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The property `pi-serve` stands on: deserializing a serialized
    /// config reproduces the cache fingerprint, so a remote job hits the
    /// same cache entries a local run under the same config would.
    #[test]
    fn from_json_to_json_preserves_cache_fingerprint(cfg in config_strategy()) {
        let wire = cfg.to_json();
        let back = FlowConfig::from_json(&wire).expect("serialized config parses");
        prop_assert_eq!(back.cache_fingerprint(), cfg.cache_fingerprint());
        // Knobs outside the fingerprint must survive too.
        prop_assert_eq!(back.threads, cfg.threads);
        prop_assert_eq!(back.db_dir.clone(), cfg.db_dir.clone());
        prop_assert_eq!(back.db_budget_bytes, cfg.db_budget_bytes);
        prop_assert_eq!(back.phys_opt_passes, cfg.phys_opt_passes);
        prop_assert_eq!(back.baseline_effort, cfg.baseline_effort);
        prop_assert_eq!(back.fifo_autosize, cfg.fifo_autosize);
        prop_assert_eq!(
            back.lint.as_ref().map(|l| (l.levels.clone(), l.waivers.clone(),
                                        l.fanout_threshold, l.frame_cycle_budget,
                                        l.link_fifo_depth, l.deny_warnings)),
            cfg.lint.as_ref().map(|l| (l.levels.clone(), l.waivers.clone(),
                                       l.fanout_threshold, l.frame_cycle_budget,
                                       l.link_fifo_depth, l.deny_warnings))
        );
    }

    /// Equal configs serialize byte-identically — a round-tripped config
    /// re-serializes to the same string, so job IDs (hashes of the wire
    /// form) coalesce identical submissions.
    #[test]
    fn serialization_is_canonical(cfg in config_strategy()) {
        let wire = cfg.to_json();
        let back = FlowConfig::from_json(&wire).expect("serialized config parses");
        prop_assert_eq!(back.to_json(), wire);
    }
}
