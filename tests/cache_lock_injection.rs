//! Failure injection against the cross-process manifest lock that closes
//! the `DbCache` lost-update race (the bug class `pi-serve` worker pools
//! made routine: N processes sharing one `--db-dir`).
//!
//! The scenarios a compile farm actually produces:
//!
//! * a worker is SIGKILLed mid-insert and leaves `manifest.lock` behind —
//!   the next writer must steal it, not deadlock,
//! * the lock file is torn garbage — same recovery,
//! * a *live* holder never lets go — a bounded wait must surface
//!   [`StitchError::LockTimeout`] instead of hanging the daemon,
//! * two handles interleave writes on one directory — neither handle's
//!   entries may be silently dropped (the lost update itself),
//! * all of the above with a byte budget, so eviction's read-modify-write
//!   goes through the same serialized cycle.

use preimpl_cnn::fabric::Pblock;
use preimpl_cnn::netlist::{
    Cell, CellKind, Checkpoint, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole,
};
use preimpl_cnn::obs::Obs;
use preimpl_cnn::stitch::{cache_key, CacheLookup, DbCache, LockFile, StitchError, LOCK_FILE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A PID that cannot name a live process: Linux caps `pid_max` at
/// 4194304, so `/proc/99999999` never exists and a lock recording it is
/// provably stale.
const DEAD_PID: u32 = 99_999_999;

fn tmp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pi_lock_inject_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn checkpoint(sig: &str) -> Checkpoint {
    let mut b = ModuleBuilder::new("m");
    let din = b.input("din", StreamRole::Source, 16);
    let dout = b.output("dout", StreamRole::Sink, 16);
    let c = b.cell(Cell::new("c", CellKind::full_slice()));
    b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
    b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
    let m = b.finish().unwrap();
    Checkpoint {
        meta: CheckpointMeta {
            signature: sig.to_string(),
            fmax_mhz: 500.0,
            resources: m.resources(),
            pblock: Pblock::new(1, 4, 0, 4),
            device: "test-part".to_string(),
            latency_cycles: 10,
        },
        module: m,
    }
}

fn insert(cache: &mut DbCache, sig: &str) {
    let obs = Obs::null();
    cache
        .insert(&cache_key(sig, "test-part", 7), &checkpoint(sig), &obs)
        .unwrap_or_else(|e| panic!("insert '{sig}' failed: {e}"));
}

fn assert_hit(cache: &mut DbCache, sig: &str) {
    let obs = Obs::null();
    match cache.lookup(&cache_key(sig, "test-part", 7), &obs) {
        CacheLookup::Hit { checkpoint: cp, .. } => assert_eq!(cp.meta.signature, sig),
        other => panic!("expected hit for '{sig}', got {other:?}"),
    }
}

/// A lock left by a process that died mid-insert (the classic `kill -9` a
/// farm worker) is detected as stale and stolen; the insert both succeeds
/// and releases the lock afterwards.
#[test]
fn stale_lock_from_dead_process_is_stolen_not_deadlocked() {
    let root = tmp_root("dead_pid");
    let obs = Obs::null();
    let mut cache = DbCache::open(&root, &obs).unwrap();
    std::fs::write(root.join(LOCK_FILE), DEAD_PID.to_string()).unwrap();

    insert(&mut cache, "conv_k3");
    assert_hit(&mut cache, "conv_k3");
    assert!(
        !root.join(LOCK_FILE).exists(),
        "stolen lock must be released after the mutation"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// A torn lock file — partial write, binary junk — is indistinguishable
/// from a crash and must be treated exactly like a dead holder.
#[test]
fn garbage_lock_contents_are_treated_as_stale() {
    let root = tmp_root("garbage");
    let obs = Obs::null();
    let mut cache = DbCache::open(&root, &obs).unwrap();
    // Readable but unparsable — torn UTF-8, not a PID. (Truly unreadable
    // bytes are indistinguishable from a concurrent delete and retried.)
    std::fs::write(root.join(LOCK_FILE), "torn write not a pid\0\0").unwrap();

    insert(&mut cache, "pool_w2s2");
    assert_hit(&mut cache, "pool_w2s2");
    assert!(!root.join(LOCK_FILE).exists());
    std::fs::remove_dir_all(&root).ok();
}

/// A *live* holder is respected: a writer with a short lock timeout gets
/// a `LockTimeout` naming the holder instead of hanging forever — and
/// once the holder releases, the same handle succeeds.
#[test]
fn live_holder_bounds_the_wait_with_lock_timeout() {
    let root = tmp_root("live");
    let obs = Obs::null();
    let mut cache = DbCache::open(&root, &obs)
        .unwrap()
        .with_lock_timeout(Duration::from_millis(50));

    let held = LockFile::acquire(&root, Duration::from_secs(5)).unwrap();
    let err = cache
        .insert(
            &cache_key("relu", "test-part", 7),
            &checkpoint("relu"),
            &obs,
        )
        .expect_err("insert under a live lock must time out");
    match err {
        StitchError::LockTimeout { holder, .. } => {
            assert_eq!(
                holder,
                std::process::id().to_string(),
                "timeout must name the live holder"
            );
        }
        other => panic!("expected LockTimeout, got {other}"),
    }

    drop(held);
    insert(&mut cache, "relu");
    assert_hit(&mut cache, "relu");
    std::fs::remove_dir_all(&root).ok();
}

/// The lost update itself: two handles on one directory interleave
/// inserts. Before the locked read-merge-write cycle, each handle's
/// manifest rewrite silently dropped the other's rows; now a fresh third
/// handle must see the union.
#[test]
fn interleaved_inserts_through_two_handles_lose_nothing() {
    let root = tmp_root("lost_update");
    let obs = Obs::null();
    let mut a = DbCache::open(&root, &obs).unwrap();
    let mut b = DbCache::open(&root, &obs).unwrap();

    insert(&mut a, "conv_c1");
    insert(&mut b, "conv_c3");
    insert(&mut a, "pool_s2");
    insert(&mut b, "fc_f5");

    let mut fresh = DbCache::open(&root, &obs).unwrap();
    assert_eq!(fresh.len(), 4, "a manifest rewrite dropped entries");
    for sig in ["conv_c1", "conv_c3", "pool_s2", "fc_f5"] {
        assert_hit(&mut fresh, sig);
    }
    // An original handle's next locked write cycle refreshes its view of
    // the shared manifest — after one more insert, `a` serves an entry it
    // never wrote. (Reads alone keep the stale private index: a miss
    // costs a rebuild, never a wrong artifact.)
    insert(&mut a, "conv_c5");
    assert_hit(&mut a, "fc_f5");
    std::fs::remove_dir_all(&root).ok();
}

/// Contention without injection: many threads hammer one directory
/// through their own handles; every insert must survive into the shared
/// manifest. This is the access pattern of `pi-serve --workers N`.
#[test]
fn concurrent_writers_on_one_directory_never_drop_entries() {
    let root = tmp_root("stampede");
    let obs = Obs::null();
    drop(DbCache::open(&root, &obs).unwrap());

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let root = root.clone();
            std::thread::spawn(move || {
                let obs = Obs::null();
                let mut cache = DbCache::open(&root, &obs).unwrap();
                for i in 0..4 {
                    insert(&mut cache, &format!("w{t}_item{i}"));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread");
    }

    let mut fresh = DbCache::open(&root, &obs).unwrap();
    assert_eq!(fresh.len(), 16, "concurrent inserts were lost");
    for t in 0..4 {
        for i in 0..4 {
            assert_hit(&mut fresh, &format!("w{t}_item{i}"));
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Budgeted eviction runs through the same serialized cycle: with a
/// budget smaller than two checkpoints, each insert evicts its
/// predecessor (never itself), and a stale lock in the way is recovered
/// exactly as in the unbounded case.
#[test]
fn budget_eviction_survives_a_stale_lock() {
    let root = tmp_root("budget");
    let obs = Obs::null();
    // One serialized checkpoint is well under 4 KiB; a 1-byte budget
    // forces every insert over budget so only the protected entry stays.
    let mut cache = DbCache::open_with_budget(&root, Some(1), &obs).unwrap();

    insert(&mut cache, "gen0");
    std::fs::write(root.join(LOCK_FILE), DEAD_PID.to_string()).unwrap();
    insert(&mut cache, "gen1");
    insert(&mut cache, "gen2");

    assert_eq!(cache.budget_evictions(), 2, "each insert evicts the LRU");
    assert_eq!(cache.len(), 1, "only the newest entry fits the budget");
    assert_hit(&mut cache, "gen2");
    assert!(matches!(
        cache.lookup(&cache_key("gen0", "test-part", 7), &obs),
        CacheLookup::Miss
    ));
    assert!(!root.join(LOCK_FILE).exists());
    std::fs::remove_dir_all(&root).ok();
}
