//! End-to-end compile-farm test: one `pi-serve` daemon on an ephemeral
//! port, four concurrent clients submitting the *same* LeNet-5 compose
//! job. The contract under test is the whole point of the daemon:
//!
//! * all four clients read byte-identical result bodies,
//! * exactly one cold build happens (the other three submissions coalesce
//!   — `/stats` reports 3 farm-level hits),
//! * client-local cache knobs (`db_dir`, `threads`) do not split the work,
//! * a later job against the same daemon runs warm off the shared
//!   component cache.

use pi_serve::protocol::http_call;
use pi_serve::{serve, JobCommand, JobResult, JobSpec, ServerOptions};
use preimpl_cnn::cnn::archdef::to_archdef;
use preimpl_cnn::prelude::*;
use serde_json::Value;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pi_serve_e2e_{tag}_{}", std::process::id()))
}

/// The job every client submits: LeNet-5, one seed, lenet-shaped synth.
fn lenet_spec() -> JobSpec {
    JobSpec::new(
        to_archdef(&preimpl_cnn::cnn::models::lenet5()),
        "xcku5p-like",
        FlowConfig::new()
            .with_synth(SynthOptions::lenet_like())
            .with_seeds([1]),
    )
}

/// Poll `/result/<id>` until it is served, returning the *raw* body — the
/// byte-identity assertion must see exactly what the wire carried.
fn poll_raw_result(addr: &str, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            http_call(addr, "GET", &format!("/result/{job_id}"), "").expect("daemon reachable");
        match status {
            200 => return body,
            202 => {
                assert!(Instant::now() < deadline, "job {job_id} did not finish");
                std::thread::sleep(Duration::from_millis(25));
            }
            other => panic!("unexpected status {other} for job {job_id}: {body}"),
        }
    }
}

fn stat(stats: &Value, section: &str, key: &str) -> u64 {
    match stats.get(section).and_then(|s| s.get(key)) {
        Some(Value::U64(n)) => *n,
        other => panic!("stats.{section}.{key} missing or not a number: {other:?}"),
    }
}

#[test]
fn four_concurrent_clients_coalesce_onto_one_cold_build() {
    let db_dir = tmp_root("farm");
    let _ = std::fs::remove_dir_all(&db_dir);
    let handle = serve(
        "127.0.0.1:0",
        ServerOptions {
            db_dir: Some(db_dir.clone()),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("daemon binds an ephemeral port");
    let addr = handle.addr();

    // Four clients, each with different *client-local* cache knobs — the
    // daemon normalizes those away, so all four coalesce onto one job.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut spec = lenet_spec();
                spec.config = spec
                    .config
                    .with_db_dir(format!("/home/client{i}/cache"))
                    .with_threads(i + 1);
                let job_id = pi_serve::client::submit(&addr, &spec).expect("submit accepted");
                let body = poll_raw_result(&addr, &job_id);
                (job_id, body)
            })
        })
        .collect();
    let outcomes: Vec<(String, String)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    // Same job ID for everyone, byte-identical bodies for everyone.
    let (first_id, first_body) = &outcomes[0];
    for (id, body) in &outcomes {
        assert_eq!(id, first_id, "client-local knobs split the job ID");
        assert_eq!(body, first_body, "result bodies differ between clients");
    }
    let result = JobResult::from_json(first_body).expect("result parses");
    assert!(
        result.summary.starts_with("assembled lenet5"),
        "{}",
        result.summary
    );
    assert!(result.cache.misses > 0, "first build must be cold");
    assert_eq!(result.cache.hits, 0, "nothing cached before the first job");
    assert!(
        !result.trace_jsonl.is_empty(),
        "trace travels with the result"
    );
    assert!(
        !result.report_text.is_empty(),
        "report travels with the result"
    );

    // The farm did the work once: 4 submissions, 1 unique, 3 hits.
    let (status, stats_body) = http_call(&addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&stats_body).expect("stats parse");
    assert_eq!(stat(&stats, "queue", "submitted"), 4);
    assert_eq!(stat(&stats, "queue", "unique"), 1);
    assert_eq!(stat(&stats, "queue", "hits"), 3);
    assert_eq!(stat(&stats, "queue", "completed"), 1);
    assert_eq!(stat(&stats, "queue", "failed"), 0);
    assert_eq!(
        stat(&stats, "db", "cold_builds"),
        1,
        "exactly one cold build"
    );

    // A resubmission after completion is served the stored bytes.
    let resubmit_id = pi_serve::client::submit(&addr, &lenet_spec()).expect("resubmit");
    assert_eq!(&resubmit_id, first_id);
    assert_eq!(&poll_raw_result(&addr, &resubmit_id), first_body);

    // A *different* job (build-db) against the same daemon runs entirely
    // warm off the shared component cache the first job populated.
    let warm = pi_serve::submit_and_wait(&addr, &lenet_spec().with_command(JobCommand::BuildDb))
        .expect("warm job completes");
    assert_eq!(warm.cache.misses, 0, "shared cache should serve everything");
    assert!(warm.cache.hits > 0, "warm job must hit the shared cache");

    pi_serve::client::shutdown(&addr).expect("shutdown accepted");
    handle.join();
    let _ = std::fs::remove_dir_all(&db_dir);
}
