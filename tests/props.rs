//! Property-based tests over the core data structures and invariants.

use pi_fabric::coords::hpwl;
use preimpl_cnn::fabric::{Device, Pblock, TileCoord};
use preimpl_cnn::memalloc::BestFitAllocator;
use proptest::prelude::*;

proptest! {
    // ---- best-fit allocator -------------------------------------------

    /// Any sequence of allocs and frees preserves the block-list
    /// invariants: contiguous coverage, no zero-size blocks, no adjacent
    /// free blocks (coalescing complete); and freeing everything restores
    /// one maximal free block.
    #[test]
    fn allocator_invariants_hold_under_random_ops(
        ops in proptest::collection::vec((0u8..3, 1u64..10_000), 1..120)
    ) {
        let mut a = BestFitAllocator::new(1 << 20, 64);
        let mut live: Vec<u64> = Vec::new();
        for (op, size) in ops {
            match op {
                0 | 1 => {
                    if let Ok(x) = a.alloc(size) {
                        live.push(x.base);
                    }
                }
                _ => {
                    if let Some(base) = live.pop() {
                        a.free(base).expect("live allocation frees");
                    }
                }
            }
            a.check_invariants().map_err(TestCaseError::fail)?;
        }
        for base in live {
            a.free(base).expect("cleanup frees");
        }
        prop_assert_eq!(a.largest_free(), 1 << 20);
        prop_assert_eq!(a.block_count(), 1);
    }

    /// Allocations never overlap while simultaneously live.
    #[test]
    fn allocations_are_disjoint(
        sizes in proptest::collection::vec(1u64..50_000, 1..40)
    ) {
        let mut a = BestFitAllocator::new(4 << 20, 64);
        let mut spans = Vec::new();
        for s in sizes {
            if let Ok(x) = a.alloc(s) {
                spans.push((x.base, x.base + x.size));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }

    // ---- pblock geometry ----------------------------------------------

    /// Overlap is symmetric and overlap area is consistent with the
    /// boolean predicate.
    #[test]
    fn pblock_overlap_symmetry(
        a in pblock_strategy(), b in pblock_strategy()
    ) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
        prop_assert_eq!(a.overlaps(&b), a.overlap_area(&b) > 0);
        prop_assert_eq!(a.overlap_area(&a), a.area());
    }

    /// Translation preserves area and moves containment consistently.
    #[test]
    fn pblock_translation_preserves_area(
        pb in pblock_strategy(), dc in -40i32..40, dr in -40i32..40
    ) {
        if let Some(t) = pb.translated(dc, dr) {
            prop_assert_eq!(t.area(), pb.area());
            prop_assert_eq!(t.width(), pb.width());
            prop_assert_eq!(t.height(), pb.height());
        }
    }

    // ---- coordinates ---------------------------------------------------

    /// HPWL of a point set is at most the Manhattan path through the points
    /// and at least the HPWL of any subset.
    #[test]
    fn hpwl_bounds(points in proptest::collection::vec(coord_strategy(), 2..12)) {
        let h = hpwl(&points);
        let chain: u32 = points.windows(2).map(|w| w[0].manhattan(&w[1])).sum();
        prop_assert!(h <= chain, "hpwl {} > chain {}", h, chain);
        let sub = hpwl(&points[..points.len() - 1]);
        prop_assert!(sub <= h);
    }

    // ---- device geometry ------------------------------------------------

    /// Column-compatible relocation really lands every column on an
    /// identical column kind, and offsets compose with negation.
    #[test]
    fn relocation_offsets_are_sound(lo in 1u16..30, width in 1u16..20, seed in 0u8..4) {
        let device = match seed {
            0 => Device::test_part(),
            1 => Device::xcku060_like(),
            _ => Device::xcku5p_like(),
        };
        let hi = (lo + width).min(device.cols() - 1);
        for d in device.relocation_offsets(lo, hi) {
            for col in lo..=hi {
                let target = (i32::from(col) + d) as u16;
                prop_assert_eq!(device.column_kind(col), device.column_kind(target));
            }
            // Relocating back must be legal too.
            let lo2 = (i32::from(lo) + d) as u16;
            let hi2 = (i32::from(hi) + d) as u16;
            prop_assert!(device.columns_compatible(lo2, hi2, -d));
        }
    }

    /// Wire distance is symmetric and at least Manhattan distance.
    #[test]
    fn wire_distance_properties(a in coord_strategy(), b in coord_strategy()) {
        let device = Device::xcku5p_like();
        if device.in_bounds(a) && device.in_bounds(b) {
            let d1 = device.wire_distance(a, b);
            let d2 = device.wire_distance(b, a);
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!(d1 >= a.manhattan(&b) as f64);
        }
    }

    // ---- archdef round trip ---------------------------------------------

    /// Randomly generated chains survive the archdef text round trip with
    /// identical statistics.
    #[test]
    fn archdef_round_trip(layers in proptest::collection::vec(0u8..3, 0..5)) {
        use preimpl_cnn::cnn::archdef::{parse_archdef, to_archdef};
        use preimpl_cnn::cnn::{ConvParams, FcParams, Layer, PoolParams, Shape};
        let mut net = preimpl_cnn::cnn::Network::new("rand");
        net.push_layer("input", Layer::Input(Shape::new(1, 64, 64)));
        let mut shape_ok = true;
        for (i, kind) in layers.iter().enumerate() {
            let layer = match kind {
                0 => Layer::Conv(ConvParams { kernel: 3, stride: 1, padding: 1, out_channels: 2 }),
                1 => Layer::Pool(PoolParams::max(2, 2)),
                _ => Layer::Relu,
            };
            net.push_layer(format!("l{i}"), layer);
            if net.input_shapes().is_err() {
                shape_ok = false;
                break;
            }
        }
        prop_assume!(shape_ok);
        net.push_layer("fc", Layer::Fc(FcParams { out_features: 4 }));
        prop_assume!(net.input_shapes().is_ok());
        let text = to_archdef(&net);
        let back = parse_archdef(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.nodes().len(), net.nodes().len());
        prop_assert_eq!(back.stats().expect("stats"), net.stats().expect("stats"));
    }

    // ---- fixed point -----------------------------------------------------

    /// Quantization round-trips within half an LSB and requantization of a
    /// product matches the shift definition.
    #[test]
    fn quantization_round_trip(x in -100.0f32..100.0) {
        use preimpl_cnn::cnn::tensor::{dequantize, quantize};
        let q = quantize(x);
        let back = dequantize(q);
        prop_assert!((back - x).abs() <= 0.5 / 256.0 + f32::EPSILON * x.abs());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random 2-pin nets on the test part always route as grid-adjacent
    /// paths, and the resulting occupancy never exceeds channel capacity.
    #[test]
    fn router_produces_adjacent_legal_paths(
        pairs in proptest::collection::vec(
            ((1u16..34, 0u16..40), (1u16..34, 0u16..40)),
            1..12
        )
    ) {
        use preimpl_cnn::netlist::{Cell, CellKind, Endpoint, ModuleBuilder, StreamRole};
        use preimpl_cnn::pnr::{route_module, RouteOptions};
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("rnd");
        let din = b.input("din", StreamRole::Source, 1);
        let dout = b.output("dout", StreamRole::Sink, 1);
        let mut cells = Vec::new();
        for (i, (p, q)) in pairs.iter().enumerate() {
            let a = b.cell(Cell::new(format!("a{i}"), CellKind::full_slice()));
            let z = b.cell(Cell::new(format!("z{i}"), CellKind::full_slice()));
            b.connect(format!("n{i}"), Endpoint::Cell(a), [Endpoint::Cell(z)]);
            cells.push((a, *p, z, *q));
        }
        // Keep the module structurally valid.
        let first = cells[0].0;
        let last = cells[cells.len() - 1].2;
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(first)]);
        b.connect("out", Endpoint::Cell(last), [Endpoint::Port(dout)]);
        let mut m = b.finish().expect("builds");
        for (a, p, z, q) in &cells {
            m.set_placement(*a, TileCoord::new(p.0, p.1)).expect("places");
            m.set_placement(*z, TileCoord::new(q.0, q.1)).expect("places");
        }
        let opts = RouteOptions { max_iters: 6, capacity: 16, ..RouteOptions::default() };
        let (stats, map) = route_module(&mut m, &device, &opts).expect("routes");
        prop_assert_eq!(stats.overused_tiles, 0);
        prop_assert_eq!(map.overused(), 0);
        for net in m.nets() {
            let Some(r) = &net.route else { continue };
            if net.degree() == 2 && r.tiles.len() >= 2 {
                for w in r.tiles.windows(2) {
                    prop_assert!(w[0].manhattan(&w[1]) <= 1, "non-adjacent step {:?}", w);
                }
            }
        }
    }

    /// STA is monotone in cell delay: slowing any combinational cell can
    /// never raise Fmax.
    #[test]
    fn sta_is_monotone_in_comb_delay(extra in 1u32..2000) {
        use preimpl_cnn::netlist::{Cell, CellKind, Endpoint, ModuleBuilder, StreamRole};
        use preimpl_cnn::pnr::sta_module;
        let device = Device::test_part();
        let build = |comb_ps: u32| {
            let mut b = ModuleBuilder::new("m");
            let din = b.input("din", StreamRole::Source, 1);
            let dout = b.output("dout", StreamRole::Sink, 1);
            let a = b.cell(Cell::new("a", CellKind::full_slice()));
            let k = b.cell(
                Cell::new("k", CellKind::full_slice())
                    .combinational()
                    .with_delay_ps(comb_ps),
            );
            let z = b.cell(Cell::new("z", CellKind::full_slice()));
            b.connect("i", Endpoint::Port(din), [Endpoint::Cell(a)]);
            b.connect("1", Endpoint::Cell(a), [Endpoint::Cell(k)]);
            b.connect("2", Endpoint::Cell(k), [Endpoint::Cell(z)]);
            b.connect("o", Endpoint::Cell(z), [Endpoint::Port(dout)]);
            let mut m = b.finish().expect("builds");
            for (i, id) in [0u32, 1, 2].into_iter().enumerate() {
                m.set_placement(preimpl_cnn::netlist::CellId(id), TileCoord::new(1 + i as u16, 1))
                    .expect("places");
            }
            m
        };
        let base = sta_module(&build(100), &device, None).expect("sta");
        let slower = sta_module(&build(100 + extra), &device, None).expect("sta");
        prop_assert!(slower.fmax_mhz <= base.fmax_mhz);
    }
}

fn pblock_strategy() -> impl Strategy<Value = Pblock> {
    (0u16..100, 0u16..100, 1u16..40, 1u16..40)
        .prop_map(|(c, r, w, h)| Pblock::new(c, c + w - 1, r, r + h - 1))
}

fn coord_strategy() -> impl Strategy<Value = TileCoord> {
    (0u16..130, 0u16..440).prop_map(|(c, r)| TileCoord::new(c, r))
}
