//! Same-seed determinism of the telemetry stream: two identical flow runs
//! must emit byte-identical event streams once timestamps (and the
//! wallclock-derived measurement fields that ride with them) are stripped —
//! at *any* worker-thread count. Parallel regions buffer per-item events
//! and flush them in input index order, so the interleaving never depends
//! on scheduling.

use preimpl_cnn::prelude::*;
use std::sync::Arc;

/// Run the full pre-implemented flow on LeNet-5 with a fresh in-memory
/// sink and return the comparison form of the stream.
fn traced_run() -> (String, Vec<preimpl_cnn::obs::Event>) {
    traced_run_threads(None)
}

/// [`traced_run`] pinned to a worker-thread count (`None` = ambient).
fn traced_run_threads(threads: Option<usize>) -> (String, Vec<preimpl_cnn::obs::Event>) {
    let device = Device::xcku5p_like();
    let network = preimpl_cnn::cnn::models::lenet5();
    let sink = Arc::new(MemorySink::new());
    let mut cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1])
        .with_sink(sink.clone());
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let (db, _) = build_component_db(&network, &device, &cfg).expect("db builds");
    run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    (sink.stripped_jsonl(), sink.snapshot())
}

#[test]
fn streams_are_identical_across_thread_counts() {
    // The scheduler must be invisible: 1, 2 and 8 workers produce the very
    // same stream the sequential path does, byte for byte.
    let (sequential, _) = traced_run_threads(Some(1));
    assert!(!sequential.is_empty());
    for threads in [2, 8] {
        let (parallel, _) = traced_run_threads(Some(threads));
        assert_eq!(
            sequential, parallel,
            "telemetry stream changed between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn run_reports_are_identical_across_thread_counts() {
    // The aggregated report is a pure fold of the deterministic stream, so
    // the whole RunReport — span profile, counter sums, histograms,
    // convergence traces — must be equal (and diff empty) between the
    // sequential path and a parallel schedule.
    let (_, seq_events) = traced_run_threads(Some(1));
    let (_, par_events) = traced_run_threads(Some(4));
    let mut seq_report = RunReport::from_events(&seq_events);
    let mut par_report = RunReport::from_events(&par_events);
    assert!(seq_report.events > 0);
    // The wallclock section is the one part of the report that is measured,
    // not derived — it differs between any two runs and is excluded from
    // diffs/gates; compare everything else exactly.
    assert!(
        !seq_report.wallclock.is_empty(),
        "wallclock fields recorded"
    );
    seq_report.wallclock.clear();
    par_report.wallclock.clear();
    assert_eq!(
        seq_report, par_report,
        "aggregated report changed between 1 and 4 worker threads"
    );
    let diff = seq_report.diff(&par_report);
    assert!(
        diff.is_empty(),
        "flowstat diff across thread counts not empty:\n{}",
        diff.render_text()
    );
    // Spot-check the hot-path instrumentation made it into the report:
    // annealer and router traces exist with real work recorded.
    assert!(!seq_report.anneal.is_empty(), "no annealer traces");
    assert!(!seq_report.route.is_empty(), "no router traces");
    assert!(
        seq_report.route.iter().any(|t| t.total_expansions() > 0),
        "router expansions counter stayed zero"
    );
}

#[test]
fn report_from_memory_equals_report_from_jsonl_round_trip() {
    // Fold a live MemorySink capture, then fold the same stream after a
    // JSONL round trip (what `flowstat` reads from --trace files): equal.
    let (_, events) = traced_run();
    let direct = RunReport::from_events(&events);
    let jsonl: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
    let parsed = parse_jsonl(&jsonl).expect("recorded trace parses");
    let round_tripped = RunReport::from_events(&parsed);
    assert_eq!(direct, round_tripped);
    assert!(direct.diff(&round_tripped).is_empty());
}

#[test]
fn same_seed_runs_emit_identical_streams_modulo_timestamps() {
    let (a, events) = traced_run();
    let (b, _) = traced_run();
    assert!(!a.is_empty(), "flow must emit telemetry");
    assert_eq!(a, b, "same-seed streams must be byte-identical");

    // The stream covers the whole backend, not just the flow driver.
    for scope in [
        "pnr::place",
        "pnr::route",
        "stitch::placer",
        "flow::function_opt",
    ] {
        assert!(
            events.iter().any(|e| e.scope == scope),
            "no events from scope {scope}"
        );
    }

    // Sequence numbers are monotonic and the seed tags match the DSE seed.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must be strictly increasing");
    }
}
