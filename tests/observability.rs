//! Farm-wide observability end-to-end: the `/metrics` exposition, the
//! `/trace` splice, and the sampling sink.
//!
//! Three contracts under test:
//!
//! * `/metrics` counters are sums over queue history — four racing
//!   clients submitting the same job always scrape as 4 submitted,
//!   1 unique, 3 coalesced, 1 completed, whatever the interleaving;
//! * a spliced remote report (`submit_and_wait_traced`) carries the
//!   daemon's span tree under the local `serve:request` span, and with
//!   the serve framing filtered out it equals the report of an identical
//!   local run byte-for-byte — the cross-process stream is the *same*
//!   deterministic stream;
//! * [`pi_obs::SamplingSink`] keeps exactly one in N root span trees.

use pi_obs::{Event, SamplingSink};
use pi_serve::{serve, submit_and_wait_traced, JobSpec, ServerOptions};
use preimpl_cnn::prelude::*;
use std::sync::Arc;

/// The job under test: tiny network, one seed, test-part device — a
/// sub-second build so the farm round-trips stay fast.
fn tiny_spec() -> JobSpec {
    JobSpec::new(
        "network tiny\ninput 1x8x8\nconv c1 kernel=3 out=2\n",
        "test-part",
        FlowConfig::new().with_seeds([1]),
    )
}

/// Parse Prometheus text into (name-with-labels, value) pairs, failing on
/// any line that is neither a comment nor a sample.
fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# TYPE ") || line.starts_with("# HELP "),
                "unknown comment form: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
        samples.push((name.to_string(), value));
    }
    samples
}

fn sample(samples: &[(String, f64)], name: &str) -> f64 {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .1
}

#[test]
fn metrics_counters_are_independent_of_client_interleaving() {
    let h = serve(
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("bind ephemeral");
    let addr = h.addr();

    // Four clients race the same job; however the submissions interleave
    // with the build, the queue counters must sum the same way.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                pi_serve::submit_and_wait(&addr, &tiny_spec()).expect("job completes")
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let text = pi_serve::client::metrics(&addr).expect("metrics scrape");
    let samples = parse_prometheus(&text);
    assert_eq!(sample(&samples, "pi_serve_jobs_submitted_total"), 4.0);
    assert_eq!(sample(&samples, "pi_serve_jobs_unique_total"), 1.0);
    assert_eq!(sample(&samples, "pi_serve_jobs_coalesced_total"), 3.0);
    assert_eq!(sample(&samples, "pi_serve_jobs_completed_total"), 1.0);
    assert_eq!(sample(&samples, "pi_serve_jobs_failed_total"), 0.0);
    assert_eq!(sample(&samples, "pi_serve_queue_depth"), 0.0);
    assert_eq!(sample(&samples, "pi_serve_jobs_running"), 0.0);
    assert_eq!(sample(&samples, "pi_serve_workers"), 2.0);
    // One wallclock observation per unique job, in the compose histogram.
    assert_eq!(sample(&samples, "pi_serve_job_wall_ms_compose_count"), 1.0);
    assert!(
        text.contains("pi_serve_job_wall_ms_compose_bucket{le=\"+Inf\"} 1"),
        "{text}"
    );
    assert!(sample(&samples, "uptime_seconds") >= 0.0);

    pi_serve::client::shutdown(&addr).expect("shutdown");
    h.join();
}

#[test]
fn spliced_remote_report_matches_a_local_run() {
    let h = serve("127.0.0.1:0", ServerOptions::default()).expect("bind ephemeral");
    let addr = h.addr();
    let spec = tiny_spec();

    let (result, events) = submit_and_wait_traced(&addr, &spec).expect("traced round-trip");
    assert_eq!(
        result.job_id,
        spec.job_id(),
        "trace context must not move the ID"
    );

    // The splice is one balanced, monotonically sequenced call tree...
    assert!(preimpl_cnn::lint::lint_trace(&events).is_empty());
    // ...rooted at the client-side request span, with the daemon's tagged
    // job span directly beneath it.
    let first = events.first().expect("non-empty splice");
    assert_eq!(
        (first.scope.as_str(), first.name.as_str()),
        ("serve", "request")
    );
    let spliced = RunReport::from_events(&events);
    let spliced_text = spliced.render_text();
    assert!(
        spliced
            .metrics()
            .keys()
            .any(|k| k.contains("serve:request/serve::job:run/")),
        "remote spans must nest under the request span:\n{spliced_text}"
    );

    // Strip the serve framing: what remains is the daemon's own capture of
    // the flow, which must fold to the same report as running the job
    // locally with the same config (no cache tier on either side).
    let inner: Vec<Event> = events
        .iter()
        .filter(|e| e.scope != "serve" && e.scope != "serve::job")
        .cloned()
        .collect();
    let network = parse_archdef(&spec.archdef).expect("archdef parses");
    let device = Device::catalog(&spec.device).expect("device exists");
    let cfg = spec.config.clone().with_report_capture();
    let (db, _, _) = build_component_db_cached(&network, &device, &cfg).expect("db builds");
    run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow runs");
    let local = cfg.run_report().expect("capture installed");
    assert_eq!(
        RunReport::from_events(&inner).render_text(),
        local.render_text(),
        "remote and local telemetry must be the same deterministic stream"
    );

    // A coalesced re-submission is served the stored trace: the spliced
    // report comes out byte-identical.
    let (_, events2) = submit_and_wait_traced(&addr, &spec).expect("coalesced round-trip");
    assert_eq!(RunReport::from_events(&events2).render_text(), spliced_text);

    pi_serve::client::shutdown(&addr).expect("shutdown");
    h.join();
}

#[test]
fn sampling_sink_keeps_one_in_n_root_trees_end_to_end() {
    let kept = Arc::new(MemorySink::new());
    let obs = Obs::new(Arc::new(SamplingSink::new(3, kept.clone())));
    for i in 0..9u64 {
        let scope = obs.scoped("job");
        let span = scope.span_with("run", &[("index", i.into())]);
        scope.counter("work", 1);
        span.end();
    }
    let events = kept.snapshot();
    // Trees 0, 3 and 6 survive, each three events (start, counter, end).
    assert_eq!(events.len(), 9);
    let kept_indices: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "run" && matches!(e.kind, pi_obs::EventKind::SpanStart))
        .filter_map(|e| {
            e.fields
                .iter()
                .find(|(k, _)| k == "index")
                .map(|(_, v)| match v {
                    pi_obs::Value::U64(n) => *n,
                    other => panic!("index field is {other:?}"),
                })
        })
        .collect();
    assert_eq!(kept_indices, vec![0, 3, 6]);
    // The sampled stream is still a well-formed trace.
    assert!(preimpl_cnn::lint::lint_trace(&events).is_empty());
}
