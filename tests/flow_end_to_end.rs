//! End-to-end integration of the whole stack: synthesis → function
//! optimization → database → composition → incremental routing → timing,
//! plus the baseline comparison invariants the paper's evaluation rests on.

use preimpl_cnn::prelude::*;
use std::sync::OnceLock;

struct LenetArtifacts {
    device: Device,
    network: Network,
    db: ComponentDb,
    component_fmax: Vec<f64>,
}

fn lenet() -> &'static LenetArtifacts {
    static CELL: OnceLock<LenetArtifacts> = OnceLock::new();
    CELL.get_or_init(|| {
        let device = Device::xcku5p_like();
        let network = preimpl_cnn::cnn::models::lenet5();
        let cfg = FlowConfig::new()
            .with_synth(SynthOptions::lenet_like())
            .with_seeds([1]);
        let (db, reports) = build_component_db(&network, &device, &cfg).expect("lenet db builds");
        LenetArtifacts {
            device,
            network,
            db,
            component_fmax: reports.iter().map(|r| r.fmax_mhz).collect(),
        }
    })
}

#[test]
fn lenet_preimplemented_flow_end_to_end() {
    let a = lenet();
    let (design, report) =
        run_pre_implemented_flow(&a.network, &a.db, &a.device, &FlowConfig::new())
            .expect("flow succeeds");

    // Fully implemented: every component routed at build time, every
    // stitched net routed now.
    assert!(design.fully_routed());
    assert_eq!(design.unrouted_nets(), 0);
    assert_eq!(design.instances().len(), 6);
    assert_eq!(design.top_nets().len(), 5);

    // All instances are locked pre-implemented checkpoints.
    for inst in design.instances() {
        assert!(inst.module.locked, "{} not locked", inst.name);
        assert!(inst.module.fully_placed());
    }

    // Only the 5 stitched nets were routed by the final router.
    assert_eq!(report.compile.route_stats.routed_nets, 5);

    // The assembled frequency is in the paper's band and bounded by the
    // slowest component.
    let slowest = a
        .component_fmax
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let fmax = report.compile.timing.fmax_mhz;
    assert!(
        (200.0..700.0).contains(&fmax),
        "assembled fmax {fmax} outside calibration band"
    );
    assert!(
        fmax <= slowest * 1.001,
        "assembled {fmax} exceeds slowest component {slowest}"
    );
}

#[test]
fn lenet_flow_is_deterministic() {
    let a = lenet();
    let run = || {
        run_pre_implemented_flow(&a.network, &a.db, &a.device, &FlowConfig::new())
            .expect("flow succeeds")
    };
    let (d1, r1) = run();
    let (d2, r2) = run();
    assert_eq!(
        r1.compile.timing.fmax_mhz, r2.compile.timing.fmax_mhz,
        "same inputs must give identical timing"
    );
    assert_eq!(r1.latency.pipeline_cycles, r2.latency.pipeline_cycles);
    for (i1, i2) in d1.instances().iter().zip(d2.instances()) {
        assert_eq!(i1.module.pblock, i2.module.pblock);
    }
}

#[test]
fn preimplemented_beats_baseline_where_the_paper_says_it_does() {
    let a = lenet();
    let (_, pre) = run_pre_implemented_flow(&a.network, &a.db, &a.device, &FlowConfig::new())
        .expect("flow succeeds");
    let bcfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_baseline_effort(1.0); // keep the test quick; even the full-effort baseline loses
    let (bdesign, base) =
        run_baseline_flow(&a.network, &a.device, &bcfg).expect("baseline succeeds");

    // Fmax: the paper's headline.
    assert!(
        pre.compile.timing.fmax_mhz > base.compile.timing.fmax_mhz,
        "pre-implemented {} <= baseline {}",
        pre.compile.timing.fmax_mhz,
        base.compile.timing.fmax_mhz
    );
    // Productivity: generation must be much cheaper than implementation.
    assert!(pre.total_time() < base.total_time());
    // Resources: monolithic synthesis pays the documented overhead.
    let br = base.compile.resources;
    let pr = bdesign.resources(); // baseline design resources == report resources
    assert_eq!(br.luts, pr.luts);
    let pre_r = preimpl_resources(a);
    assert!(pre_r.luts < br.luts);
    assert!(pre_r.brams <= br.brams);
}

fn preimpl_resources(a: &LenetArtifacts) -> ResourceCount {
    a.db.checkpoints().map(|cp| cp.meta.resources).sum()
}

#[test]
fn checkpoint_database_round_trips_through_disk() {
    let a = lenet();
    let dir = std::env::temp_dir().join(format!("pi_e2e_db_{}", std::process::id()));
    a.db.save_dir(&dir).expect("saves");
    let reloaded = ComponentDb::load_dir(&dir).expect("loads");
    assert_eq!(reloaded.len(), a.db.len());
    // The reloaded database composes identically.
    let (_, r1) = run_pre_implemented_flow(&a.network, &a.db, &a.device, &FlowConfig::new())
        .expect("original db composes");
    let (_, r2) = run_pre_implemented_flow(&a.network, &reloaded, &a.device, &FlowConfig::new())
        .expect("reloaded db composes");
    assert_eq!(r1.compile.timing.fmax_mhz, r2.compile.timing.fmax_mhz);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn archdef_input_drives_the_same_flow() {
    let a = lenet();
    // The user-facing path: text definition -> network -> same signatures.
    let text = preimpl_cnn::cnn::archdef::to_archdef(&a.network);
    let parsed = parse_archdef(&text).expect("parses");
    let comps_a = a
        .network
        .components(Granularity::Layer)
        .expect("components");
    let comps_b = parsed.components(Granularity::Layer).expect("components");
    let sig = |n: &Network, cs: &[preimpl_cnn::cnn::Component]| -> Vec<String> {
        cs.iter().map(|c| c.signature(n)).collect()
    };
    assert_eq!(sig(&a.network, &comps_a), sig(&parsed, &comps_b));
    // Therefore the database built for one matches the other.
    let (_, report) = run_pre_implemented_flow(&parsed, &a.db, &a.device, &FlowConfig::new())
        .expect("parsed network reuses the database");
    assert!(report.compile.timing.fmax_mhz > 100.0);
}

#[test]
fn component_reuse_across_designs() {
    // Two different networks sharing a layer configuration reuse the same
    // checkpoint — the paper's reuse claim.
    let device = Device::xcku5p_like();
    let net_a = parse_archdef("network a\ninput 1x16x16\nconv c kernel=3 out=4\nfc f out=8\n")
        .expect("parses");
    let net_b = parse_archdef(
        "network b\ninput 1x16x16\nconv c kernel=3 out=4\npool p window=2\nfc f out=8\n",
    )
    .expect("parses");
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db_a, _) = build_component_db(&net_a, &device, &cfg).expect("a builds");
    let (db_b, _) = build_component_db(&net_b, &device, &cfg).expect("b builds");
    // The shared conv signature exists in both databases...
    let conv_sig = net_a.components(Granularity::Layer).expect("components")[0].signature(&net_a);
    assert!(db_a.get(&conv_sig).is_some());
    assert!(db_b.get(&conv_sig).is_some());
    // ...and a merged database serves both networks.
    let mut merged = db_a.clone();
    for cp in db_b.checkpoints() {
        merged.insert(cp.clone());
    }
    assert!(run_pre_implemented_flow(&net_a, &merged, &device, &FlowConfig::new()).is_ok());
    assert!(run_pre_implemented_flow(&net_b, &merged, &device, &FlowConfig::new()).is_ok());
}
