//! Property-based tests over the persistent component-database cache:
//! adversarial signatures must round-trip losslessly, the manifest must
//! stay consistent under arbitrary insert/evict interleavings, and cache
//! keys must be stable functions of their inputs.

use preimpl_cnn::fabric::Pblock;
use preimpl_cnn::netlist::{
    Cell, CellKind, Checkpoint, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole,
};
use preimpl_cnn::obs::Obs;
use preimpl_cnn::prelude::FlowConfig;
use preimpl_cnn::stitch::{cache_key, CacheLookup, ComponentDb, DbCache};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Signature fragments chosen to break naive filename schemes: path
/// separators, parent-dir hops, unicode (multi-byte), characters that
/// sanitize to the same '_', and tokens long enough to overflow NAME_MAX
/// when repeated.
const TOKENS: &[&str] = &[
    "conv",
    "pool_w2s2",
    "+relu",
    "_relu",
    "__in6x28x28",
    "a/b",
    "..",
    "\\win\\sep",
    "é",
    "層畳み込み",
    "🚀",
    " space ",
    ":colon:",
    "k3s1p0co16",
    "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
];

fn signature_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..TOKENS.len(), 1..10)
        .prop_map(|ixs| ixs.into_iter().map(|i| TOKENS[i]).collect::<String>())
}

fn checkpoint(sig: &str) -> Checkpoint {
    let mut b = ModuleBuilder::new("m");
    let din = b.input("din", StreamRole::Source, 16);
    let dout = b.output("dout", StreamRole::Sink, 16);
    let c = b.cell(Cell::new("c", CellKind::full_slice()));
    b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
    b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
    let m = b.finish().unwrap();
    Checkpoint {
        meta: CheckpointMeta {
            signature: sig.to_string(),
            fmax_mhz: 500.0,
            resources: m.resources(),
            pblock: Pblock::new(1, 4, 0, 4),
            device: "test-part".to_string(),
            latency_cycles: 10,
        },
        module: m,
    }
}

fn tmp_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pi_cache_props_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any signature — unicode, path separators, parent-dir hops, names
    /// far past NAME_MAX — survives insert, persist, reopen, and verified
    /// load unchanged.
    #[test]
    fn adversarial_signatures_round_trip_through_the_cache(
        sigs in proptest::collection::vec(signature_strategy(), 1..8)
    ) {
        let sigs: BTreeSet<String> = sigs.into_iter().collect();
        let root = tmp_root("roundtrip");
        let obs = Obs::null();
        {
            let mut cache = DbCache::open(&root, &obs).unwrap();
            for sig in &sigs {
                let cp = checkpoint(sig);
                cache.insert(&cache_key(sig, "test-part", 7), &cp, &obs).unwrap();
            }
        }
        let mut cache = DbCache::open(&root, &obs).unwrap();
        prop_assert_eq!(cache.len(), sigs.len());
        for sig in &sigs {
            let key = cache_key(sig, "test-part", 7);
            prop_assert_eq!(cache.signature_of(&key), Some(sig.as_str()));
            match cache.lookup(&key, &obs) {
                CacheLookup::Hit { checkpoint: cp, bytes } => {
                    prop_assert_eq!(&cp.meta.signature, sig);
                    prop_assert_eq!(cp.content_hash(), checkpoint(sig).content_hash());
                    prop_assert!(bytes > 0);
                }
                other => return Err(TestCaseError::fail(format!(
                    "expected hit for '{sig}', got {other:?}"
                ))),
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    /// The flat-directory form behind `build-db` keeps every checkpoint
    /// despite signatures that sanitize to colliding filenames.
    #[test]
    fn save_dir_load_dir_round_trips_adversarial_signatures(
        sigs in proptest::collection::vec(signature_strategy(), 1..8)
    ) {
        let sigs: BTreeSet<String> = sigs.into_iter().collect();
        let mut db = ComponentDb::new();
        for sig in &sigs {
            db.insert(checkpoint(sig));
        }
        let dir = tmp_root("savedir");
        db.save_dir(&dir).unwrap();
        let loaded = ComponentDb::load_dir(&dir).unwrap();
        prop_assert_eq!(loaded.len(), sigs.len());
        for sig in &sigs {
            prop_assert!(loaded.get(sig).is_some(), "lost '{}' across save/load", sig);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// After any interleaving of inserts and evictions the manifest agrees
    /// with the object store: a reopen sees exactly the surviving keys,
    /// every entry's file exists, and no orphaned object files remain.
    #[test]
    fn manifest_stays_consistent_under_insert_evict(
        ops in proptest::collection::vec((0u8..3, 0usize..TOKENS.len()), 1..25)
    ) {
        let root = tmp_root("ops");
        let obs = Obs::null();
        let mut expect: BTreeSet<String> = BTreeSet::new();
        {
            let mut cache = DbCache::open(&root, &obs).unwrap();
            for (op, ix) in ops {
                let sig = TOKENS[ix];
                let key = cache_key(sig, "test-part", 7);
                if op < 2 {
                    cache.insert(&key, &checkpoint(sig), &obs).unwrap();
                    expect.insert(key);
                } else {
                    let was_in = expect.remove(&key);
                    prop_assert_eq!(cache.evict(&key, &obs).unwrap(), was_in);
                }
            }
        }
        let cache = DbCache::open(&root, &obs).unwrap();
        let keys: BTreeSet<String> = cache.keys().map(str::to_string).collect();
        prop_assert_eq!(&keys, &expect);
        let mut on_disk = 0;
        for entry in std::fs::read_dir(root.join("objects")).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            prop_assert!(
                keys.iter().any(|k| name.contains(k.as_str())),
                "orphaned object file {}", name
            );
            on_disk += 1;
        }
        prop_assert_eq!(on_disk, expect.len());
        std::fs::remove_dir_all(&root).ok();
    }

    /// Cache keys are pure functions: identical inputs agree, and any
    /// change to signature, device, or knobs fingerprint separates them.
    #[test]
    fn cache_keys_are_stable_and_input_sensitive(
        ix in 0usize..TOKENS.len(), fp in 0u64..1000
    ) {
        let sig = TOKENS[ix];
        let key = cache_key(sig, "test-part", fp);
        prop_assert_eq!(&key, &cache_key(sig, "test-part", fp));
        prop_assert_ne!(&key, &cache_key(sig, "test-part", fp + 1));
        prop_assert_ne!(&key, &cache_key(sig, "xcku5p-like", fp));
        prop_assert_eq!(key.len(), 16);
        prop_assert!(key.chars().all(|c| c.is_ascii_hexdigit()));
    }

    /// The config fingerprint that scopes cache keys moves with every
    /// implementation knob and ignores execution-only settings.
    #[test]
    fn fingerprint_tracks_seeds_not_threads(
        seed in 1u64..500, threads in 1usize..8
    ) {
        let base = FlowConfig::new().with_seeds([seed]);
        let fp = base.cache_fingerprint();
        prop_assert_eq!(fp, base.clone().with_threads(threads).cache_fingerprint());
        prop_assert_ne!(fp, base.clone().with_seeds([seed + 1]).cache_fingerprint());
        prop_assert_ne!(fp, base.clone().with_seeds([seed, seed + 1]).cache_fingerprint());
    }
}
