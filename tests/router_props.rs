//! Property and determinism tests for the Steiner-aware, slack-driven
//! parallel router.
//!
//! * Steiner decomposition must always produce a topology that connects
//!   every terminal, at no more wirelength than the fan-out star it
//!   replaces.
//! * Criticality ordering must be a permutation, sorted most-negative
//!   slack first with index tie-breaks.
//! * Routes and the telemetry stream must be byte-identical at
//!   `PI_THREADS` = 1, 2 and 8 — the parallel proposal wave and the
//!   deterministic merge may not leak the schedule into results.

use preimpl_cnn::obs::{MemorySink, Obs};
use preimpl_cnn::pnr::{criticality_order, steiner_topology, RouteOptions};
use preimpl_cnn::prelude::*;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use preimpl_cnn::netlist::{Cell, CellKind, Endpoint, ModuleBuilder, StreamRole};
use rayon as pi_rayon;

/// The worker-thread level is process-global; tests that change it must
/// not interleave (same pattern as `tests/parallel_backend.rs`).
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

fn with_level<R>(level: usize, f: impl FnOnce() -> R) -> R {
    let _guard = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    pi_rayon::set_num_threads(level);
    let out = f();
    pi_rayon::set_num_threads(4);
    out
}

fn manhattan(a: TileCoord, b: TileCoord) -> u64 {
    u64::from(a.manhattan(&b))
}

proptest! {
    /// Every terminal of a net is spanned by its Steiner topology, and
    /// the tree never costs more wire than the star from the driver.
    #[test]
    fn steiner_topology_connects_all_terminals_within_star_wirelength(
        raw in proptest::collection::vec((0u16..30, 0u16..20), 2..12),
    ) {
        let terminals: Vec<TileCoord> =
            raw.iter().map(|&(c, r)| TileCoord::new(c, r)).collect();
        let segments = steiner_topology(&terminals);

        // Wirelength: tree <= star (the star is a valid Steiner topology,
        // so decomposition may never do worse).
        let tree_wl: u64 = segments.iter().map(|(a, b)| manhattan(*a, *b)).sum();
        let star_wl: u64 = terminals[1..]
            .iter()
            .map(|&t| manhattan(terminals[0], t))
            .sum();
        prop_assert!(
            tree_wl <= star_wl,
            "tree {} > star {} for {:?}",
            tree_wl,
            star_wl,
            terminals
        );

        // Connectivity: BFS from the driver over the segment graph reaches
        // every distinct terminal.
        let mut adj: HashMap<TileCoord, Vec<TileCoord>> = HashMap::new();
        for &(a, b) in &segments {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen: HashSet<TileCoord> = HashSet::new();
        let mut queue = VecDeque::from([terminals[0]]);
        seen.insert(terminals[0]);
        while let Some(at) = queue.pop_front() {
            for &next in adj.get(&at).into_iter().flatten() {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        for &t in &terminals {
            prop_assert!(
                seen.contains(&t),
                "terminal {:?} not spanned by {:?}",
                t,
                segments
            );
        }
    }

    /// Criticality ordering is a permutation of the net indices, sorted
    /// ascending by slack with index tie-breaks — every net routes exactly
    /// once per wave, most critical first.
    #[test]
    fn criticality_order_is_a_sorted_permutation(
        raw in proptest::collection::vec(-30_000i64..30_000, 0..64),
    ) {
        // Mix finite slacks with ties (coarse quantization) and +inf
        // (unconstrained nets, e.g. clocks).
        let slacks: Vec<f64> = raw
            .iter()
            .map(|&x| {
                if x % 10 == 0 {
                    f64::INFINITY
                } else {
                    f64::from((x / 100) as i32)
                }
            })
            .collect();
        let order = criticality_order(&slacks);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..slacks.len()).collect::<Vec<_>>());
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                slacks[a] < slacks[b] || (slacks[a] == slacks[b] && a < b),
                "order not (slack, index)-sorted: {} before {} in {:?}",
                a,
                b,
                slacks
            );
        }
    }
}

/// A module with fan-out nets spread across the fabric and a capacity low
/// enough to force negotiation: Steiner decomposition, slack ordering and
/// rip-up all engage.
fn fanout_module() -> Module {
    let mut b = ModuleBuilder::new("fan");
    let din = b.input("din", StreamRole::Source, 16);
    let dout = b.output("dout", StreamRole::Sink, 16);
    let mut drivers = Vec::new();
    let mut sinks = Vec::new();
    for n in 0..10u16 {
        let drv = b.cell(Cell::new(format!("d{n}"), CellKind::full_slice()));
        let fan: Vec<_> = (0..3)
            .map(|k| b.cell(Cell::new(format!("s{n}_{k}"), CellKind::full_slice())))
            .collect();
        b.connect(
            format!("net{n}"),
            Endpoint::Cell(drv),
            fan.iter().map(|&c| Endpoint::Cell(c)).collect::<Vec<_>>(),
        );
        drivers.push(drv);
        sinks.push(fan);
    }
    b.connect("in", Endpoint::Port(din), [Endpoint::Cell(drivers[0])]);
    b.connect("out", Endpoint::Cell(sinks[9][2]), [Endpoint::Port(dout)]);
    let mut m = b.finish().unwrap();
    for (n, &drv) in drivers.iter().enumerate() {
        let n = n as u16;
        m.set_placement(drv, TileCoord::new(2 * n + 1, 1)).unwrap();
        m.set_placement(sinks[n as usize][0], TileCoord::new(2 * n + 1, 15))
            .unwrap();
        m.set_placement(sinks[n as usize][1], TileCoord::new(2 * n + 3, 8))
            .unwrap();
        m.set_placement(sinks[n as usize][2], TileCoord::new((2 * n + 11) % 25, 18))
            .unwrap();
    }
    m
}

fn route_at_level(level: usize) -> (String, Vec<Option<preimpl_cnn::netlist::Route>>, u64) {
    with_level(level, || {
        let device = Device::test_part();
        let mut m = fanout_module();
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        let opts = RouteOptions {
            capacity: 4,
            ..RouteOptions::default()
        };
        let (stats, _) = preimpl_cnn::pnr::route_module_obs(&mut m, &device, &opts, &obs).unwrap();
        (
            sink.stripped_jsonl(),
            m.nets().iter().map(|n| n.route.clone()).collect(),
            stats.steiner_segments,
        )
    })
}

#[test]
fn routes_and_telemetry_are_identical_across_thread_counts() {
    let (base_stream, base_routes, steiner_segments) = route_at_level(1);
    assert!(!base_stream.is_empty(), "telemetry captured");
    assert!(
        steiner_segments > 0,
        "fan-out nets must exercise the Steiner path"
    );
    assert!(
        base_routes
            .iter()
            .any(|r| r.as_ref().is_some_and(|r| !r.tiles.is_empty())),
        "nets routed"
    );
    for level in [2, 8] {
        let (stream, routes, _) = route_at_level(level);
        assert_eq!(
            base_stream, stream,
            "telemetry stream changed between 1 and {level} worker threads"
        );
        assert_eq!(
            base_routes, routes,
            "routes changed between 1 and {level} worker threads"
        );
    }
}
