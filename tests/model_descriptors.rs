//! The bundled model descriptors under `models/` are golden copies of
//! the built-in constructors: the checked-in JSON files are byte-for-byte
//! what `pi_model::json::to_json_descriptor` renders for the matching
//! `models::*()` network (regenerate with `PI_MODEL_REGEN=1 cargo test
//! --test model_descriptors`), and importing any of them must hand the
//! flow a network indistinguishable from the constructor's — same stats,
//! same archdef, same telemetry at any thread count.

use preimpl_cnn::model::{import, ModelFormat};
use preimpl_cnn::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn model_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("models")
        .join(file)
}

fn bundled_json() -> [(&'static str, Network); 3] {
    [
        ("lenet.json", models::lenet5()),
        ("alexnet.json", models::alexnet_like()),
        ("resnet_small.json", models::resnet_small()),
    ]
}

#[test]
fn bundled_json_descriptors_are_generated_from_the_builtins() {
    for (file, network) in bundled_json() {
        let expected = preimpl_cnn::model::json::to_json_descriptor(&network).unwrap();
        let path = model_path(file);
        if std::env::var_os("PI_MODEL_REGEN").is_some() {
            std::fs::write(&path, &expected).unwrap();
            continue;
        }
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run with PI_MODEL_REGEN=1 to create)", file));
        assert_eq!(
            on_disk, expected,
            "{file} is stale — regenerate with PI_MODEL_REGEN=1 cargo test --test model_descriptors"
        );
    }
}

#[test]
fn bundled_json_descriptors_import_to_the_builtin_networks() {
    for (file, network) in bundled_json() {
        let text = std::fs::read_to_string(model_path(file)).unwrap();
        let imp = import(&text, ModelFormat::Json).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(imp.findings.is_empty(), "{file}: {:?}", imp.findings);
        assert_eq!(
            preimpl_cnn::cnn::archdef::to_archdef(&imp.network),
            preimpl_cnn::cnn::archdef::to_archdef(&network),
            "{file} imports to a different architecture"
        );
        assert_eq!(
            imp.network.stats().unwrap(),
            network.stats().unwrap(),
            "{file} imports to different stats"
        );
    }
}

#[test]
fn bundled_prototxt_matches_cifar10_quick() {
    let text = std::fs::read_to_string(model_path("cifar10_quick.prototxt")).unwrap();
    let imp = import(&text, ModelFormat::Prototxt).unwrap();
    assert!(imp.findings.is_empty(), "{:?}", imp.findings);
    assert_eq!(
        preimpl_cnn::cnn::archdef::to_archdef(&imp.network),
        preimpl_cnn::cnn::archdef::to_archdef(&models::cifar10_quick()),
    );
    // Folding factors and header knobs survive as metadata.
    for key in [
        "header.frequency",
        "header.default_precision.integer_bits",
        "conv1.worker_factor",
        "fc1.weights_reloading_factor",
    ] {
        assert!(
            imp.metadata.iter().any(|(k, _)| k == key),
            "metadata key {key} missing: {:?}",
            imp.metadata
        );
    }
    // The canonical writer round-trips the declared form.
    let model = preimpl_cnn::model::prototxt::parse_prototxt(&text).unwrap();
    let rendered = preimpl_cnn::model::prototxt::render_prototxt(&model);
    let back = preimpl_cnn::model::prototxt::parse_prototxt(&rendered).unwrap();
    assert_eq!(back, model);
    assert_eq!(
        preimpl_cnn::model::prototxt::render_prototxt(&back),
        rendered
    );
}

/// Run the full flow (db build + compose) for `network` with the given
/// worker-thread count and return the comparison form of the telemetry.
fn traced_flow(network: &Network, threads: usize) -> (String, f64) {
    let device = Device::xcku5p_like();
    let sink = Arc::new(MemorySink::new());
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1])
        .with_threads(threads)
        .with_sink(sink.clone());
    let (db, _) = build_component_db(network, &device, &cfg).expect("db builds");
    let (_, report) = run_pre_implemented_flow(network, &db, &device, &cfg).expect("flow runs");
    (sink.stripped_jsonl(), report.compile.timing.fmax_mhz)
}

#[test]
fn lenet_descriptor_flow_telemetry_is_byte_identical_to_the_builtin() {
    // The golden-model contract: a LeNet that came in through the
    // descriptor frontend is invisible downstream — the whole telemetry
    // stream (every placement, route, timing event) matches the builtin's
    // byte for byte, sequentially and under a parallel schedule.
    let text = std::fs::read_to_string(model_path("lenet.json")).unwrap();
    let descriptor_net = import(&text, ModelFormat::Json).unwrap().network;
    let (builtin, builtin_fmax) = traced_flow(&models::lenet5(), 1);
    let (imported, imported_fmax) = traced_flow(&descriptor_net, 1);
    assert!(!builtin.is_empty());
    assert_eq!(builtin, imported, "descriptor LeNet diverged from builtin");
    assert_eq!(builtin_fmax, imported_fmax);
    let (parallel, _) = traced_flow(&descriptor_net, 4);
    assert_eq!(
        imported, parallel,
        "descriptor telemetry changed between 1 and 4 worker threads"
    );
}

#[test]
fn resnet_descriptor_runs_the_full_flow() {
    // The acceptance path behind `preimpl --model models/resnet_small.json`:
    // the branching descriptor composes, routes to completion, and is
    // deterministic run to run.
    let text = std::fs::read_to_string(model_path("resnet_small.json")).unwrap();
    let network = import(&text, ModelFormat::Json).unwrap().network;
    let device = Device::xcku5p_like();
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("db builds");
    let run = || run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow runs");
    let (design, report) = run();
    assert!(design.fully_routed());
    assert_eq!(design.unrouted_nets(), 0);
    let (_, again) = run();
    assert_eq!(
        report.compile.timing.fmax_mhz,
        again.compile.timing.fmax_mhz
    );
}
