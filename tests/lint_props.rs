//! Property-based and integration tests of the `pi-lint` pass manager:
//! injected defects are always caught, the bundled models lint clean, and
//! reports render byte-identically regardless of worker-thread count.

use preimpl_cnn::cnn::archdef::to_archdef;
use preimpl_cnn::lint::{LintConfig, LintEngine};
use preimpl_cnn::netlist::{Cell, CellKind, Endpoint, ModuleBuilder, StreamRole};
use preimpl_cnn::prelude::*;
use proptest::prelude::*;

fn engine() -> LintEngine {
    LintEngine::new(LintConfig::new())
}

/// A clean N-stage registered pipeline module: `din -> c0 -> … -> dout`.
fn chain_module(stages: usize, defect: Defect) -> preimpl_cnn::netlist::Module {
    let mut b = ModuleBuilder::new("chain");
    let din = b.input("din", StreamRole::Source, 8);
    let out_width = if matches!(defect, Defect::WidenOutput) {
        16
    } else {
        8
    };
    let dout = b.output("dout", StreamRole::Sink, out_width);
    let cells: Vec<_> = (0..stages)
        .map(|i| b.cell(Cell::new(format!("c{i}"), CellKind::full_slice())))
        .collect();
    if !matches!(defect, Defect::CutInputNet) {
        b.connect("n_in", Endpoint::Port(din), [Endpoint::Cell(cells[0])]);
    }
    for i in 1..stages {
        b.connect(
            format!("n{i}"),
            Endpoint::Cell(cells[i - 1]),
            [Endpoint::Cell(cells[i])],
        );
    }
    match defect {
        Defect::CutOutputNet => {}
        Defect::DoubleDriveOutput => {
            b.connect(
                "n_out_a",
                Endpoint::Cell(cells[stages - 1]),
                [Endpoint::Port(dout)],
            );
            b.connect("n_out_b", Endpoint::Cell(cells[0]), [Endpoint::Port(dout)]);
        }
        Defect::WidenOutput => {
            // An 8-bit producer port driving the 16-bit output through a
            // port-to-port feedthrough module would be caught at the
            // design level; inside one module the mismatch is between the
            // input and output port of a direct feedthrough net.
            b.connect(
                "n_out",
                Endpoint::Cell(cells[stages - 1]),
                [Endpoint::Port(dout)],
            );
            b.connect("thru", Endpoint::Port(din), [Endpoint::Port(dout)]);
        }
        Defect::CombLoop => {
            b.connect(
                "n_out",
                Endpoint::Cell(cells[stages - 1]),
                [Endpoint::Port(dout)],
            );
            let x = b.cell(Cell::new("loop_x", CellKind::full_slice()).combinational());
            let y = b.cell(Cell::new("loop_y", CellKind::full_slice()).combinational());
            b.connect("l0", Endpoint::Cell(x), [Endpoint::Cell(y)]);
            b.connect("l1", Endpoint::Cell(y), [Endpoint::Cell(x)]);
            // Keep the loop reachable so PL0106 does not fire instead.
            b.connect("l2", Endpoint::Cell(cells[0]), [Endpoint::Cell(x)]);
        }
        Defect::CutInputNet => {
            b.connect(
                "n_out",
                Endpoint::Cell(cells[stages - 1]),
                [Endpoint::Port(dout)],
            );
        }
    }
    b.finish().expect("module builds")
}

#[derive(Debug, Clone, Copy)]
enum Defect {
    CutInputNet,
    CutOutputNet,
    DoubleDriveOutput,
    WidenOutput,
    CombLoop,
}

impl Defect {
    fn expected_code(self) -> &'static str {
        match self {
            Defect::CutInputNet => "PL0102",
            Defect::CutOutputNet => "PL0103",
            Defect::DoubleDriveOutput => "PL0101",
            Defect::WidenOutput => "PL0104",
            Defect::CombLoop => "PL0105",
        }
    }
}

const DEFECTS: [Defect; 5] = [
    Defect::CutInputNet,
    Defect::CutOutputNet,
    Defect::DoubleDriveOutput,
    Defect::WidenOutput,
    Defect::CombLoop,
];

proptest! {
    /// Every injected netlist defect class is caught with its stable
    /// code, at any pipeline depth.
    #[test]
    fn injected_netlist_defects_always_caught(
        stages in 2usize..8,
        defect_idx in 0usize..DEFECTS.len(),
    ) {
        let defect = DEFECTS[defect_idx];
        let m = chain_module(stages, defect);
        let report = engine().lint_module("module:chain", &m, &Obs::null());
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        prop_assert!(
            codes.contains(&defect.expected_code()),
            "{defect:?} must raise {}: got {codes:?}",
            defect.expected_code()
        );
    }

    /// Corrupting one layer parameter of a bundled model always raises a
    /// graph-family diagnostic: an oversized kernel breaks shape
    /// propagation (PL0201), a zeroed parameter is degenerate (PL0205).
    #[test]
    fn shape_corrupted_archdef_always_caught(
        pick in 0usize..100,
        zero_idx in 0usize..2,
    ) {
        let zero = zero_idx == 1;
        let text = to_archdef(&models::lenet5());
        let conv_lines: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.starts_with("conv "))
            .map(|(i, _)| i)
            .collect();
        let target = conv_lines[pick % conv_lines.len()];
        let corrupted: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == target {
                    let mut l = l.to_string();
                    let from = l.find("kernel=").expect("conv line has kernel");
                    let end = l[from..].find(' ').map(|e| from + e).unwrap_or(l.len());
                    let with = if zero { "kernel=0" } else { "kernel=999" };
                    l.replace_range(from..end, with);
                    l + "\n"
                } else {
                    l.to_string() + "\n"
                }
            })
            .collect();
        let network = parse_archdef_lenient(&corrupted).expect("still syntactically valid");
        let report = engine().lint_network(&network, Granularity::Layer, &Obs::null());
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        let expected = if zero { "PL0205" } else { "PL0201" };
        prop_assert!(
            codes.contains(&expected),
            "corrupting line {target} must raise {expected}: got {codes:?}"
        );
    }
}

#[test]
fn bundled_models_lint_clean_at_both_granularities() {
    let e = engine();
    for network in [models::lenet5(), models::vgg16(), models::alexnet_like()] {
        for granularity in [Granularity::Layer, Granularity::Block] {
            let report = e.lint_network(&network, granularity, &Obs::null());
            assert!(
                report.is_clean() && report.warnings() == 0,
                "{} at {granularity:?}: {}",
                network.name,
                report.render_text()
            );
        }
    }
}

/// Pre-implement a small network once for the checkpoint-family tests.
fn smoke_db() -> (Device, Network, ComponentDb) {
    let device = Device::xcku5p_like();
    let network =
        parse_archdef("network smoke\ninput 1x16x16\nconv c kernel=3 out=4\nfc f out=8\n").unwrap();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).unwrap();
    (device, network, db)
}

#[test]
fn synthesized_db_lints_clean_and_contract_breaks_are_caught() {
    let (device, network, db) = smoke_db();
    let e = engine();
    let clean = e.lint_db_for_network(
        &network,
        Granularity::Layer,
        &db,
        Some(&device),
        &Obs::null(),
    );
    assert!(
        clean.is_clean() && clean.warnings() == 0,
        "{}",
        clean.render_text()
    );

    let cp = db.checkpoints().next().unwrap().clone();

    // Unlocked checkpoint (the API cannot produce one; emulate an
    // upstream bug through the serde envelope).
    let mut json = serde_json::to_value(&cp);
    json["module"]["locked"] = serde_json::Value::Bool(false);
    let unlocked: Checkpoint = serde_json::from_value(json).unwrap();
    let report = e.lint_checkpoint(&unlocked, Some(&device), &Obs::null());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"PL0302"), "{codes:?}");

    // Partition pin off the pblock boundary ring.
    let mut json = serde_json::to_value(&cp);
    json["module"]["locked"] = serde_json::Value::Bool(false);
    let mut m: Module = serde_json::from_value(json["module"].clone()).unwrap();
    let pb = m.pblock.expect("checkpoint module has a pblock");
    let interior = preimpl_cnn::fabric::TileCoord::new(pb.col_lo + 1, pb.row_lo + 1);
    m.ports_mut().unwrap()[0].partpin = Some(interior);
    m.lock();
    let mut broken = cp.clone();
    broken.module = m;
    let report = e.lint_checkpoint(&broken, Some(&device), &Obs::null());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"PL0304"), "{codes:?}");

    // Wrong target device in the metadata.
    let mut wrong = cp.clone();
    wrong.meta.device = "some-other-part".to_string();
    let report = e.lint_checkpoint(&wrong, Some(&device), &Obs::null());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"PL0306"), "{codes:?}");
}

#[test]
fn lint_reports_render_byte_identically_across_thread_counts() {
    let (device, network, db) = smoke_db();
    let e = engine();
    let mut renders = Vec::new();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        let mut report = e.lint_db_for_network(
            &network,
            Granularity::Layer,
            &db,
            Some(&device),
            &Obs::null(),
        );
        report.merge(e.lint_network(&models::vgg16(), Granularity::Layer, &Obs::null()));
        renders.push((report.render_text(), report.render_json()));
    }
    assert_eq!(
        renders[0], renders[1],
        "lint output depends on thread count"
    );
}

/// Lint a JSON model descriptor through the engine's model pass.
fn lint_descriptor(text: &str) -> (Option<Network>, LintReport) {
    engine().lint_model(
        text,
        preimpl_cnn::model::ModelFormat::Json,
        Granularity::Layer,
        &Obs::null(),
    )
}

#[test]
fn model_descriptor_defects_raise_the_pl015x_family() {
    // PL0150: unknown op is an error, located at the node, with the
    // nearest supported op suggested.
    let (net, report) = lint_descriptor(
        r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [{"name": "c", "op": "Convolve", "inputs": ["input"]}],
  "outputs": ["c"]
}"#,
    );
    assert!(net.is_none());
    assert!(report.gate(false), "PL0150 must deny by default");
    let d = &report.diagnostics[0];
    assert_eq!(d.code, "PL0150");
    assert!(d.origin.starts_with("model:nodes[0]"), "{}", d.origin);
    assert!(
        d.message.contains("Conv"),
        "no suggestion in {:?}",
        d.message
    );

    // PL0151: a BatchNorm that cannot fold into a producing Conv is a
    // warning — the import still succeeds (BN treated as identity).
    let (net, report) = lint_descriptor(
        r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "r", "op": "Relu", "inputs": ["input"]},
    {"name": "bn", "op": "BatchNormalization", "inputs": ["r"]},
    {"name": "f", "op": "Gemm", "inputs": ["bn"], "attrs": {"out": 4}}
  ],
  "outputs": ["f"]
}"#,
    );
    assert!(net.is_some());
    assert!(!report.gate(false) && report.gate(true), "PL0151 warns");
    assert!(report.diagnostics.iter().any(|d| d.code == "PL0151"));

    // PL0152: joining branches with different channel counts is an error
    // located at the join node.
    let (net, report) = lint_descriptor(
        r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "a", "op": "Conv", "inputs": ["input"], "attrs": {"kernel": 1, "out": 2}},
    {"name": "b", "op": "Conv", "inputs": ["input"], "attrs": {"kernel": 1, "out": 3}},
    {"name": "j", "op": "Add", "inputs": ["a", "b"]}
  ],
  "outputs": ["j"]
}"#,
    );
    assert!(net.is_none());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "PL0152")
        .expect("join mismatch raised");
    assert!(d.origin.contains("nodes[2]"), "{}", d.origin);

    // PL0153: structural malformation (a dangling edge) is an error
    // located at the referencing field.
    let (net, report) = lint_descriptor(
        r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [{"name": "r", "op": "Relu", "inputs": ["ghost"]}],
  "outputs": ["r"]
}"#,
    );
    assert!(net.is_none());
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "PL0153")
        .expect("dangling edge raised");
    assert!(d.origin.contains("inputs"), "{}", d.origin);

    // Every PL015x code sits in the registry with the right default.
    for (code, level) in [
        ("PL0150", Level::Deny),
        ("PL0151", Level::Warn),
        ("PL0152", Level::Deny),
        ("PL0153", Level::Deny),
    ] {
        let c = preimpl_cnn::lint::lookup(code).expect(code);
        assert_eq!(c.default, level, "{code}");
    }
}

#[test]
fn bundled_descriptors_lint_clean_through_the_model_pass() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("models");
    let e = engine();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let format = preimpl_cnn::model::ModelFormat::from_path(&path).expect("known extension");
        let text = std::fs::read_to_string(&path).unwrap();
        let (net, report) = e.lint_model(&text, format, Granularity::Layer, &Obs::null());
        assert!(net.is_some(), "{} failed to import", path.display());
        assert!(
            report.is_clean() && report.warnings() == 0,
            "{}: {}",
            path.display(),
            report.render_text()
        );
    }
}

#[test]
fn flow_lint_gate_is_clean_on_smoke_network() {
    let (device, network, db) = smoke_db();
    let cfg = FlowConfig::new()
        .with_seeds([1])
        .with_lint(LintConfig::new().with_deny_warnings(true));
    let (design, report) = run_pre_implemented_flow(&network, &db, &device, &cfg).unwrap();
    assert!(design.fully_routed());
    let lint = report.lint.as_ref().expect("lint ran");
    assert!(lint.is_clean(), "{}", lint.render_text());
    assert!(report.deterministic_summary().contains("\"lint\""));
}
