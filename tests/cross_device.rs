//! Device portability: the flow runs on any catalog part, and checkpoints
//! stay bound to the part they were implemented for.

use preimpl_cnn::prelude::*;

#[test]
fn toy_network_flows_on_the_ku060_part() {
    let device = Device::xcku060_like();
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
    for cp in db.checkpoints() {
        assert_eq!(cp.meta.device, "xcku060-like");
    }
    for r in &reports {
        assert!(r.fmax_mhz > 100.0, "{} too slow: {}", r.name, r.fmax_mhz);
    }
    let (design, report) = run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new())
        .expect("flow succeeds on ku060");
    assert!(design.fully_routed());
    assert!(report.compile.timing.fmax_mhz > 100.0);
}

#[test]
fn per_device_databases_are_independent() {
    let network = preimpl_cnn::cnn::models::toy();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db_a, _) = build_component_db(&network, &Device::xcku5p_like(), &cfg).expect("builds");
    let (db_b, _) = build_component_db(&network, &Device::xcku060_like(), &cfg).expect("builds");
    // Same signatures, different physical implementations.
    let sigs_a: Vec<_> = db_a.signatures().collect();
    let sigs_b: Vec<_> = db_b.signatures().collect();
    assert_eq!(sigs_a, sigs_b);
    for sig in sigs_a {
        let a = db_a.get(sig).expect("present");
        let b = db_b.get(sig).expect("present");
        assert_ne!(a.meta.device, b.meta.device);
    }
}
