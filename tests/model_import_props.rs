//! Property tests over the `pi-model` descriptor frontend: any valid
//! descriptor round-trips byte-identically through the canonical writer
//! and imports to exactly the network it was rendered from; any of the
//! classic malformations (unknown op, dangling edge, declared-shape lie,
//! cycle) comes back as a located `CnnError::Import` — never a panic —
//! with every lenient-mode finding carrying a registered lint code.

use preimpl_cnn::cnn::{CnnError, ConvParams, EltwiseOp, FcParams, Layer, PoolParams, Shape};
use preimpl_cnn::model::json::{parse_json, render_json, to_json_descriptor, JsonModel};
use preimpl_cnn::model::{import, import_lenient, ModelFormat};
use preimpl_cnn::prelude::*;
use proptest::prelude::*;

/// One step of a generated architecture. Residual blocks exercise the
/// branching (join) paths; everything else walks the linear ones.
#[derive(Debug, Clone)]
enum Step {
    Conv { kernel: u32, out: u32 },
    Relu,
    Pool,
    Residual,
}

/// The vendored proptest stand-in has no `prop_oneof`; a selector index
/// mapped over candidate draws covers the same ground.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..4, 0usize..3, 1u32..7).prop_map(|(pick, k, out)| match pick {
        0 => Step::Conv {
            kernel: [1u32, 3, 5][k],
            out,
        },
        1 => Step::Relu,
        2 => Step::Pool,
        _ => Step::Residual,
    })
}

/// Build a valid network from the generated recipe. Convolutions use
/// same-padding so spatial sizes only move at pools (halving, gated on
/// the current size staying poolable), and residual branches preserve
/// channel counts so the join shapes always agree.
fn build_network(channels: u32, size_exp: u32, steps: &[Step], fc_out: u32) -> Network {
    let h = 1u32 << size_exp;
    let mut n = Network::new("prop-net");
    let mut tail = n.push_layer("input", Layer::Input(Shape::new(channels, h, h)));
    let mut cur_c = channels;
    let mut cur_h = h;
    let conv = |out: u32, kernel: u32| {
        Layer::Conv(ConvParams {
            kernel,
            stride: 1,
            padding: kernel / 2,
            out_channels: out,
        })
    };
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Conv { kernel, out } => {
                tail = n.push_layer(format!("conv{i}"), conv(*out, *kernel));
                cur_c = *out;
            }
            Step::Relu => {
                tail = n.push_layer(format!("relu{i}"), Layer::Relu);
            }
            Step::Pool => {
                if cur_h >= 4 {
                    tail = n.push_layer(format!("pool{i}"), Layer::Pool(PoolParams::max(2, 2)));
                    cur_h /= 2;
                }
            }
            Step::Residual => {
                let ca = n.add_node(format!("res{i}a"), conv(cur_c, 3));
                n.add_edge(tail, ca);
                let ra = n.add_node(format!("res{i}r"), Layer::Relu);
                n.add_edge(ca, ra);
                let cb = n.add_node(format!("res{i}b"), conv(cur_c, 3));
                n.add_edge(ra, cb);
                let join = n.add_node(format!("res{i}add"), Layer::Eltwise(EltwiseOp::Add));
                n.add_edge(cb, join);
                n.add_edge(tail, join);
                tail = join;
            }
        }
    }
    let head = n.add_node(
        "fc_out",
        Layer::Fc(FcParams {
            out_features: fc_out,
        }),
    );
    n.add_edge(tail, head);
    n
}

fn network_strategy() -> impl Strategy<Value = Network> {
    (
        1u32..=3,
        3u32..=5,
        proptest::collection::vec(step_strategy(), 0..8),
        1u32..=16,
    )
        .prop_map(|(c, e, steps, fc)| build_network(c, e, &steps, fc))
}

/// The four malformations the importer must locate, applied to a parsed
/// descriptor AST.
fn mutate(model: &mut JsonModel, kind: u8, pick: usize) {
    let i = pick % model.nodes.len();
    match kind {
        0 => model.nodes[i].op = "Convolve".to_string(),
        1 => model.nodes[i].inputs[0] = "no_such_node".to_string(),
        2 => {
            let s = model.nodes[i].shape.expect("descriptor declares shapes");
            model.nodes[i].shape = Some(Shape::new(s.channels + 1, s.height, s.width));
        }
        _ => {
            // Point an early node at a later one: every generated node
            // feeds the chain downstream, so this always closes a cycle.
            let j = i + (pick / model.nodes.len()) % (model.nodes.len() - i);
            model.nodes[i].inputs[0] = model.nodes[j].name.clone();
        }
    }
}

proptest! {
    /// Valid descriptor → parse → re-render is byte-identical (the
    /// canonical writer is a fixed point of parse∘render).
    #[test]
    fn render_parse_render_is_byte_identical(net in network_strategy()) {
        let text = to_json_descriptor(&net).unwrap();
        let model = parse_json(&text).unwrap();
        prop_assert_eq!(render_json(&model), text);
    }

    /// Importing the rendered descriptor reproduces the source network
    /// exactly — same archdef, same shape table — with no findings.
    #[test]
    fn import_agrees_with_the_declared_network(net in network_strategy()) {
        let text = to_json_descriptor(&net).unwrap();
        let imp = import(&text, ModelFormat::Json).unwrap();
        prop_assert!(imp.findings.is_empty(), "{:?}", imp.findings);
        prop_assert_eq!(
            preimpl_cnn::cnn::archdef::to_archdef(&imp.network),
            preimpl_cnn::cnn::archdef::to_archdef(&net)
        );
        // Shape propagation over the import matches the declared shapes.
        let declared = parse_json(&text).unwrap();
        let shapes = imp.network.input_shapes().unwrap();
        for node in &declared.nodes {
            let id = imp.network.nodes().iter().position(|n| n.name == node.name).unwrap();
            let propagated = imp.network.nodes()[id].layer.output_shape(shapes[id]).unwrap();
            prop_assert_eq!(Some(propagated), node.shape, "{}", node.name);
        }
    }

    /// Malformed descriptors always come back as located import errors —
    /// never a panic — and lenient mode tags every finding with a code
    /// the lint registry resolves.
    #[test]
    fn malformed_descriptors_error_with_locations(
        net in network_strategy(),
        kind in 0u8..4,
        pick in 0usize..1000,
    ) {
        let mut model = parse_json(&to_json_descriptor(&net).unwrap()).unwrap();
        mutate(&mut model, kind, pick);
        let text = render_json(&model);
        match import(&text, ModelFormat::Json) {
            Err(CnnError::Import { loc, msg }) => {
                prop_assert!(!loc.is_empty(), "error without a location: {msg}");
            }
            Err(other) => prop_assert!(false, "unlocated error type: {other}"),
            Ok(_) => prop_assert!(false, "mutation {kind} imported cleanly"),
        }
        let (imported, findings) = import_lenient(&text, ModelFormat::Json);
        prop_assert!(imported.is_none());
        prop_assert!(!findings.is_empty());
        for f in &findings {
            prop_assert!(
                preimpl_cnn::lint::lookup(f.code).is_some(),
                "unregistered finding code {}",
                f.code
            );
        }
    }
}
