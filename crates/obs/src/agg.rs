//! Event-stream aggregation: fold any telemetry stream into a
//! deterministic, diffable [`RunReport`].
//!
//! The raw [`Event`](crate::Event) stream is a total order (by `seq`) over
//! everything a flow run did. This module folds that order into the three
//! views the paper-style evaluation needs:
//!
//! * a **span profile tree** — every `SpanStart`/`SpanEnd` pair becomes a
//!   node keyed by its path of enclosing spans, with call counts and an
//!   event-ordered *cost*: the number of events emitted while the span was
//!   open (total) and while it was the innermost open span (self). Cost is
//!   counted in events, never wall clock, so two same-seed runs produce
//!   byte-identical profiles at any `PI_THREADS` setting;
//! * **metric tables** — counter sums, gauge last/min/max, point counts,
//!   and fixed-bucket [`Histogram`]s over every numeric point field;
//! * **convergence traces** — annealer cost per temperature round, router
//!   expansions/rip-ups per negotiation pass, and the stitch placer's
//!   threshold-retry log.
//!
//! [`RunReport::diff`] aligns two reports by scope path and flags every
//! metric delta; `flowstat diff --fail-on-regression` turns that into a CI
//! gate. Fields whose key starts with `wallclock` are skipped during the
//! fold (they are nondeterministic by convention, see
//! [`Event::to_json`](crate::Event::to_json)), so a report folded from a
//! live [`MemorySink`](crate::MemorySink) equals one folded from the
//! recorded `--trace` JSONL of the same run.

use crate::{Event, EventKind, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Number of histogram buckets: underflow (`< 0`), `[0, 1)`, then one
/// power-of-two bucket per magnitude up to `2^15`, then overflow.
pub const HISTOGRAM_BUCKETS: usize = 18;

/// A fixed-bucket histogram over `f64` samples.
///
/// Bucket boundaries are hard-coded powers of two (bucket 0 is `< 0`,
/// bucket 1 is `[0, 1)`, bucket `i` for `2 <= i <= 16` is
/// `[2^(i-2), 2^(i-1))`, bucket 17 is `>= 2^15`), so two histograms built
/// from the same samples in the same order are identical — no dynamic
/// rebinning, no data-dependent boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub counts: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Bucket index for a sample. Comparisons against exact integer powers
    /// of two — no `log2`, so the mapping is bit-reproducible.
    pub fn bucket_of(v: f64) -> usize {
        if v < 0.0 || v.is_nan() {
            return 0;
        }
        if v < 1.0 {
            return 1;
        }
        let mut bound = 2.0f64;
        for i in 2..HISTOGRAM_BUCKETS - 1 {
            if v < bound {
                return i;
            }
            bound *= 2.0;
        }
        HISTOGRAM_BUCKETS - 1
    }

    /// Human-readable label of a bucket's range.
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "<0".to_string(),
            1 => "[0,1)".to_string(),
            i if i < HISTOGRAM_BUCKETS - 1 => {
                format!("[{},{})", 1u64 << (i - 2), 1u64 << (i - 1))
            }
            _ => format!(">={}", 1u64 << (HISTOGRAM_BUCKETS - 3)),
        }
    }

    pub fn record(&mut self, v: f64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// A scalar fingerprint of the bucket shape: moving any sample to a
    /// different bucket changes it. Used by [`RunReport::metrics`] so a
    /// distribution shift is flagged even when count/sum/min/max agree.
    pub fn shape_fingerprint(&self) -> f64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 1.0))
            .sum()
    }

    fn to_json(&self) -> serde_json::Value {
        let mut m = serde_json::Value::Map(Vec::new());
        m["count"] = serde_json::Value::U64(self.count);
        m["sum"] = serde_json::Value::F64(self.sum);
        if self.count > 0 {
            m["min"] = serde_json::Value::F64(self.min);
            m["max"] = serde_json::Value::F64(self.max);
        }
        let mut buckets = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                buckets.push(serde_json::Value::Seq(vec![
                    serde_json::Value::Str(Self::bucket_label(i)),
                    serde_json::Value::U64(c),
                ]));
            }
        }
        m["buckets"] = serde_json::Value::Seq(buckets);
        m
    }
}

/// Profile statistics of one span path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanProfile {
    /// Times a span with this path was entered.
    pub count: u64,
    /// Events emitted while a span with this path was open (its
    /// event-ordered total cost, children included).
    pub total_events: u64,
    /// Events emitted while this path was the innermost open span (total
    /// minus the children's share).
    pub self_events: u64,
}

/// Counter aggregate: counters carry monotonic totals sampled at emission
/// time, so both the sum over samples and the last sample are kept.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterStats {
    pub count: u64,
    pub sum: u64,
    pub last: u64,
}

/// Gauge aggregate over instantaneous measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStats {
    pub count: u64,
    pub last: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for GaugeStats {
    fn default() -> Self {
        GaugeStats {
            count: 0,
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Point aggregate: occurrence count plus a fixed-bucket histogram per
/// numeric field.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointStats {
    pub count: u64,
    pub fields: BTreeMap<String, Histogram>,
}

/// One simulated-annealing placement run (a `pnr::place` `anneal_round`
/// sequence restarting at round 0): cost vs. iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnnealTrace {
    pub seed: u64,
    /// Cost after each temperature round, in round order.
    pub cost: Vec<f64>,
    /// Moves accepted per round (present once the annealer reports them).
    pub accepted: u64,
    /// Moves rejected per round total.
    pub rejected: u64,
}

impl AnnealTrace {
    pub fn rounds(&self) -> u64 {
        self.cost.len() as u64
    }

    pub fn initial_cost(&self) -> f64 {
        self.cost.first().copied().unwrap_or(0.0)
    }

    pub fn final_cost(&self) -> f64 {
        self.cost.last().copied().unwrap_or(0.0)
    }
}

/// One PathFinder negotiation run (a `pnr::route` `pathfinder_iter`
/// sequence restarting at iteration 0).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteTrace {
    /// Per-pass `(overused, ripups, expansions)` samples, in pass order.
    pub passes: Vec<(u64, u64, u64)>,
    /// Two-pin segments routed through Steiner decomposition across the run.
    pub steiner_segments: u64,
    /// Rip-ups of negative-slack (timing-critical) nets across the run.
    pub criticality_reroutes: u64,
    /// Parallel-merge conflicts re-routed against the live state.
    pub parallel_conflicts: u64,
}

impl RouteTrace {
    pub fn iters(&self) -> u64 {
        self.passes.len() as u64
    }

    pub fn final_overused(&self) -> u64 {
        self.passes.last().map(|p| p.0).unwrap_or(0)
    }

    pub fn total_ripups(&self) -> u64 {
        self.passes.iter().map(|p| p.1).sum()
    }

    pub fn total_expansions(&self) -> u64 {
        self.passes.iter().map(|p| p.2).sum()
    }
}

/// One firing of the stitch placer's unplace-and-retry loop
/// (`stitch::placer` `threshold_retry`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StitchRetry {
    pub component: String,
    pub step: u64,
    pub score: f64,
    pub threshold: f64,
}

/// A deterministic aggregation of one telemetry stream.
///
/// Folding is keyed entirely on the event payload in `seq` order — never on
/// `ts_us` or `wallclock*` fields — so the report of a run is a pure
/// function of its deterministic event stream: fold a live `MemorySink`
/// snapshot or the re-parsed `--trace` JSONL of the same run and the
/// reports compare equal. (`wallclock*` point fields are additionally
/// aggregated into [`RunReport::wallclock`] for human inspection; the
/// timestamp-stripped JSONL form drops them, and [`RunReport::metrics`] /
/// [`RunReport::diff`] never look at them.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Total events folded.
    pub events: u64,
    /// Every seed that tagged at least one event.
    pub seeds: BTreeSet<u64>,
    /// Span profile nodes, keyed by `/`-joined span path (each segment is
    /// `scope:name`). Sorted lexicographically the keys read as a tree.
    pub spans: BTreeMap<String, SpanProfile>,
    /// Counter aggregates keyed by `scope:name`.
    pub counters: BTreeMap<String, CounterStats>,
    /// Gauge aggregates keyed by `scope:name`.
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Point aggregates (count + per-field histograms) keyed by
    /// `scope:name`.
    pub points: BTreeMap<String, PointStats>,
    /// Wall-clock aggregates folded from `wallclock*` point fields, keyed
    /// `scope:name.field` (e.g. per-request latency from `pi-serve`).
    /// Real measurements, but nondeterministic by convention — excluded
    /// from [`RunReport::metrics`] (and therefore from diffs and
    /// regression gates) and from the default text rendering; see
    /// [`RunReport::render_wallclock`].
    pub wallclock: BTreeMap<String, GaugeStats>,
    /// Annealer convergence traces, in stream order.
    pub anneal: Vec<AnnealTrace>,
    /// Router negotiation traces, in stream order.
    pub route: Vec<RouteTrace>,
    /// Stitch-placer threshold retries, in stream order.
    pub stitch_retries: Vec<StitchRetry>,
}

fn seg(scope: &str, name: &str) -> String {
    if scope.is_empty() {
        name.to_string()
    } else {
        format!("{scope}:{name}")
    }
}

fn field_f64(fields: &[(String, Value)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        })
}

fn field_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
    field_f64(fields, key).map(|v| v as u64)
}

fn field_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

impl RunReport {
    /// Fold an event stream (in `seq` order) into a report.
    pub fn from_events(events: &[Event]) -> RunReport {
        let mut r = RunReport::default();
        // Stack of open spans: (scope, name, full path).
        let mut stack: Vec<(String, String, String)> = Vec::new();
        for e in events {
            r.events += 1;
            r.seeds.insert(e.seed);
            // Event-ordered cost attribution: every event (including the
            // span markers themselves) bills one unit to each open span,
            // and one *self* unit to the innermost.
            for (_, _, path) in &stack {
                r.spans.entry(path.clone()).or_default().total_events += 1;
            }
            if let Some((_, _, path)) = stack.last() {
                r.spans.entry(path.clone()).or_default().self_events += 1;
            }
            let key = seg(&e.scope, &e.name);
            match e.kind {
                EventKind::SpanStart => {
                    let path = match stack.last() {
                        Some((_, _, parent)) => format!("{parent}/{key}"),
                        None => key.clone(),
                    };
                    r.spans.entry(path.clone()).or_default().count += 1;
                    stack.push((e.scope.clone(), e.name.clone(), path));
                }
                EventKind::SpanEnd => {
                    // Pop the matching span; tolerate unbalanced streams
                    // (e.g. a truncated trace) by searching downward.
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|(s, n, _)| *s == e.scope && *n == e.name)
                    {
                        stack.truncate(pos);
                    }
                }
                EventKind::Counter => {
                    let v = field_u64(&e.fields, "value").unwrap_or(0);
                    let c = r.counters.entry(key).or_default();
                    c.count += 1;
                    c.sum += v;
                    c.last = v;
                }
                EventKind::Gauge => {
                    let v = field_f64(&e.fields, "value").unwrap_or(0.0);
                    let g = r.gauges.entry(key).or_default();
                    g.count += 1;
                    g.last = v;
                    g.min = g.min.min(v);
                    g.max = g.max.max(v);
                }
                EventKind::Point => {
                    for (k, v) in &e.fields {
                        // Nondeterministic by convention: aggregated apart
                        // from the deterministic histograms below.
                        if !k.starts_with("wallclock") {
                            continue;
                        }
                        let n = match v {
                            Value::U64(n) => *n as f64,
                            Value::I64(n) => *n as f64,
                            Value::F64(n) => *n,
                            _ => continue,
                        };
                        let w = r.wallclock.entry(format!("{key}.{k}")).or_default();
                        w.count += 1;
                        w.last = n;
                        w.min = w.min.min(n);
                        w.max = w.max.max(n);
                    }
                    let p = r.points.entry(key).or_default();
                    p.count += 1;
                    for (k, v) in &e.fields {
                        if k.starts_with("wallclock") {
                            continue;
                        }
                        let n = match v {
                            Value::U64(n) => *n as f64,
                            Value::I64(n) => *n as f64,
                            Value::F64(n) => *n,
                            _ => continue,
                        };
                        p.fields.entry(k.clone()).or_default().record(n);
                    }
                    r.fold_convergence(e);
                }
            }
        }
        r
    }

    /// Parse a JSON-Lines trace (full or timestamp-stripped form) and fold
    /// it. Blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<RunReport, crate::ParseError> {
        Ok(Self::from_events(&crate::parse_jsonl(text)?))
    }

    fn fold_convergence(&mut self, e: &Event) {
        match (e.scope.as_str(), e.name.as_str()) {
            ("pnr::place", "anneal_round") => {
                if field_u64(&e.fields, "round") == Some(0) || self.anneal.is_empty() {
                    self.anneal.push(AnnealTrace {
                        seed: e.seed,
                        ..AnnealTrace::default()
                    });
                }
                let t = self.anneal.last_mut().expect("pushed above");
                t.cost.push(field_f64(&e.fields, "cost").unwrap_or(0.0));
                t.accepted += field_u64(&e.fields, "accepted").unwrap_or(0);
                t.rejected += field_u64(&e.fields, "rejected").unwrap_or(0);
            }
            ("pnr::route", "pathfinder_iter") => {
                if field_u64(&e.fields, "iter") == Some(0) || self.route.is_empty() {
                    self.route.push(RouteTrace::default());
                }
                let t = self.route.last_mut().expect("pushed above");
                t.passes.push((
                    field_u64(&e.fields, "overused").unwrap_or(0),
                    field_u64(&e.fields, "ripups").unwrap_or(0),
                    field_u64(&e.fields, "expansions").unwrap_or(0),
                ));
                t.steiner_segments += field_u64(&e.fields, "steiner_segments").unwrap_or(0);
                t.criticality_reroutes += field_u64(&e.fields, "criticality_reroutes").unwrap_or(0);
                t.parallel_conflicts += field_u64(&e.fields, "parallel_conflicts").unwrap_or(0);
            }
            ("stitch::placer", "threshold_retry") => {
                self.stitch_retries.push(StitchRetry {
                    component: field_str(&e.fields, "component").unwrap_or("").to_string(),
                    step: field_u64(&e.fields, "step").unwrap_or(0),
                    score: field_f64(&e.fields, "score").unwrap_or(0.0),
                    threshold: field_f64(&e.fields, "threshold").unwrap_or(0.0),
                });
            }
            _ => {}
        }
    }

    /// Flatten the report into a sorted map of scalar metrics — the
    /// alignment form [`RunReport::diff`] compares. Keys are
    /// human-readable (`span <path> total`, `counter <scope:name> sum`,
    /// ...), values are exact folds of the deterministic payload.
    pub fn metrics(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("events".to_string(), self.events as f64);
        m.insert("seeds".to_string(), self.seeds.len() as f64);
        for (path, s) in &self.spans {
            m.insert(format!("span {path} count"), s.count as f64);
            m.insert(format!("span {path} total"), s.total_events as f64);
            m.insert(format!("span {path} self"), s.self_events as f64);
        }
        for (k, c) in &self.counters {
            m.insert(format!("counter {k} sum"), c.sum as f64);
            m.insert(format!("counter {k} last"), c.last as f64);
            m.insert(format!("counter {k} n"), c.count as f64);
        }
        for (k, g) in &self.gauges {
            m.insert(format!("gauge {k} last"), g.last);
            m.insert(format!("gauge {k} min"), g.min);
            m.insert(format!("gauge {k} max"), g.max);
            m.insert(format!("gauge {k} n"), g.count as f64);
        }
        for (k, p) in &self.points {
            m.insert(format!("point {k} n"), p.count as f64);
            for (f, h) in &p.fields {
                m.insert(format!("hist {k}.{f} n"), h.count as f64);
                m.insert(format!("hist {k}.{f} sum"), h.sum);
                if h.count > 0 {
                    m.insert(format!("hist {k}.{f} min"), h.min);
                    m.insert(format!("hist {k}.{f} max"), h.max);
                }
                m.insert(format!("hist {k}.{f} shape"), h.shape_fingerprint());
            }
        }
        m.insert("trace anneal runs".to_string(), self.anneal.len() as f64);
        m.insert(
            "trace anneal rounds".to_string(),
            self.anneal.iter().map(AnnealTrace::rounds).sum::<u64>() as f64,
        );
        m.insert(
            "trace anneal final_cost".to_string(),
            self.anneal.iter().map(AnnealTrace::final_cost).sum(),
        );
        m.insert("trace route runs".to_string(), self.route.len() as f64);
        m.insert(
            "trace route iters".to_string(),
            self.route.iter().map(RouteTrace::iters).sum::<u64>() as f64,
        );
        m.insert(
            "trace route ripups".to_string(),
            self.route.iter().map(RouteTrace::total_ripups).sum::<u64>() as f64,
        );
        m.insert(
            "trace route expansions".to_string(),
            self.route
                .iter()
                .map(RouteTrace::total_expansions)
                .sum::<u64>() as f64,
        );
        m.insert(
            "trace route final_overused".to_string(),
            self.route
                .iter()
                .map(RouteTrace::final_overused)
                .sum::<u64>() as f64,
        );
        m.insert(
            "trace route steiner_segments".to_string(),
            self.route.iter().map(|t| t.steiner_segments).sum::<u64>() as f64,
        );
        m.insert(
            "trace route criticality_reroutes".to_string(),
            self.route
                .iter()
                .map(|t| t.criticality_reroutes)
                .sum::<u64>() as f64,
        );
        m.insert(
            "trace route parallel_conflicts".to_string(),
            self.route.iter().map(|t| t.parallel_conflicts).sum::<u64>() as f64,
        );
        m.insert(
            "trace stitch retries".to_string(),
            self.stitch_retries.len() as f64,
        );
        m
    }

    /// Align two reports by metric key and collect every difference.
    pub fn diff(&self, other: &RunReport) -> ReportDiff {
        let a = self.metrics();
        let b = other.metrics();
        let mut entries = Vec::new();
        let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
        let compared = keys.len();
        for key in keys {
            let (va, vb) = (a.get(key).copied(), b.get(key).copied());
            let differs = match (va, vb) {
                (Some(x), Some(y)) => x != y,
                _ => true,
            };
            if differs {
                entries.push(DiffEntry {
                    key: key.clone(),
                    a: va,
                    b: vb,
                });
            }
        }
        ReportDiff { entries, compared }
    }

    /// The report as a JSON tree (deterministic: sorted keys, no
    /// timestamps).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value as J;
        let mut root = J::Map(Vec::new());
        root["events"] = J::U64(self.events);
        root["seeds"] = J::Seq(self.seeds.iter().map(|&s| J::U64(s)).collect());
        let mut spans = J::Map(Vec::new());
        for (path, s) in &self.spans {
            let mut n = J::Map(Vec::new());
            n["count"] = J::U64(s.count);
            n["total_events"] = J::U64(s.total_events);
            n["self_events"] = J::U64(s.self_events);
            spans[path.as_str()] = n;
        }
        root["spans"] = spans;
        let mut counters = J::Map(Vec::new());
        for (k, c) in &self.counters {
            let mut n = J::Map(Vec::new());
            n["n"] = J::U64(c.count);
            n["sum"] = J::U64(c.sum);
            n["last"] = J::U64(c.last);
            counters[k.as_str()] = n;
        }
        root["counters"] = counters;
        let mut gauges = J::Map(Vec::new());
        for (k, g) in &self.gauges {
            let mut n = J::Map(Vec::new());
            n["n"] = J::U64(g.count);
            n["last"] = J::F64(g.last);
            n["min"] = J::F64(g.min);
            n["max"] = J::F64(g.max);
            gauges[k.as_str()] = n;
        }
        root["gauges"] = gauges;
        let mut points = J::Map(Vec::new());
        for (k, p) in &self.points {
            let mut n = J::Map(Vec::new());
            n["n"] = J::U64(p.count);
            let mut fields = J::Map(Vec::new());
            for (f, h) in &p.fields {
                fields[f.as_str()] = h.to_json();
            }
            n["fields"] = fields;
            points[k.as_str()] = n;
        }
        root["points"] = points;
        let mut conv = J::Map(Vec::new());
        conv["anneal"] = J::Seq(
            self.anneal
                .iter()
                .map(|t| {
                    let mut n = J::Map(Vec::new());
                    n["seed"] = J::U64(t.seed);
                    n["rounds"] = J::U64(t.rounds());
                    n["initial_cost"] = J::F64(t.initial_cost());
                    n["final_cost"] = J::F64(t.final_cost());
                    n["accepted"] = J::U64(t.accepted);
                    n["rejected"] = J::U64(t.rejected);
                    n["cost"] = J::Seq(t.cost.iter().map(|&c| J::F64(c)).collect());
                    n
                })
                .collect(),
        );
        conv["route"] = J::Seq(
            self.route
                .iter()
                .map(|t| {
                    let mut n = J::Map(Vec::new());
                    n["iters"] = J::U64(t.iters());
                    n["final_overused"] = J::U64(t.final_overused());
                    n["ripups"] = J::U64(t.total_ripups());
                    n["expansions"] = J::U64(t.total_expansions());
                    n["steiner_segments"] = J::U64(t.steiner_segments);
                    n["criticality_reroutes"] = J::U64(t.criticality_reroutes);
                    n["parallel_conflicts"] = J::U64(t.parallel_conflicts);
                    n["passes"] = J::Seq(
                        t.passes
                            .iter()
                            .map(|&(o, r, x)| J::Seq(vec![J::U64(o), J::U64(r), J::U64(x)]))
                            .collect(),
                    );
                    n
                })
                .collect(),
        );
        conv["stitch_retries"] = J::Seq(
            self.stitch_retries
                .iter()
                .map(|t| {
                    let mut n = J::Map(Vec::new());
                    n["component"] = J::Str(t.component.clone());
                    n["step"] = J::U64(t.step);
                    n["score"] = J::F64(t.score);
                    n["threshold"] = J::F64(t.threshold);
                    n
                })
                .collect(),
        );
        root["convergence"] = conv;
        root
    }

    /// [`RunReport::to_json`] pretty-printed (the `flowstat summarize
    /// --json` form).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("report serializes")
    }

    /// Deterministic plain-text rendering (the `flowstat summarize`
    /// default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "flowstat run report: {} events, seeds [{}]\n",
            self.events,
            seeds.join(", ")
        ));

        if !self.spans.is_empty() {
            out.push_str("\nspan profile (event-ordered cost)\n");
            out.push_str(&format!(
                "  {:<52} {:>7} {:>10} {:>10}\n",
                "path", "count", "total", "self"
            ));
            for (path, s) in &self.spans {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let label = format!("{}{}", "  ".repeat(depth), name);
                out.push_str(&format!(
                    "  {:<52} {:>7} {:>10} {:>10}\n",
                    label, s.count, s.total_events, s.self_events
                ));
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            for (k, c) in &self.counters {
                out.push_str(&format!(
                    "  {:<52} sum {:>10}  last {:>10}  n {}\n",
                    k, c.sum, c.last, c.count
                ));
            }
        }

        if !self.gauges.is_empty() {
            out.push_str("\ngauges\n");
            for (k, g) in &self.gauges {
                out.push_str(&format!(
                    "  {:<52} last {:>12.4}  min {:>12.4}  max {:>12.4}  n {}\n",
                    k, g.last, g.min, g.max, g.count
                ));
            }
        }

        if !self.points.is_empty() {
            out.push_str("\npoints\n");
            for (k, p) in &self.points {
                out.push_str(&format!("  {:<52} n {}\n", k, p.count));
                for (f, h) in &p.fields {
                    out.push_str(&format!(
                        "    .{:<30} n {:>8}  mean {:>12.4}  min {:>12.4}  max {:>12.4}\n",
                        f,
                        h.count,
                        h.mean(),
                        h.min,
                        h.max
                    ));
                }
            }
        }

        out.push_str("\nconvergence\n");
        let anneal_rounds: u64 = self.anneal.iter().map(AnnealTrace::rounds).sum();
        let (acc, rej) = self
            .anneal
            .iter()
            .fold((0u64, 0u64), |(a, r), t| (a + t.accepted, r + t.rejected));
        out.push_str(&format!(
            "  anneal: {} runs, {} rounds, {} accepted / {} rejected moves\n",
            self.anneal.len(),
            anneal_rounds,
            acc,
            rej
        ));
        for t in &self.anneal {
            out.push_str(&format!(
                "    seed {:<3} {:>3} rounds  cost {:>12.2} -> {:>12.2}\n",
                t.seed,
                t.rounds(),
                t.initial_cost(),
                t.final_cost()
            ));
        }
        let max_iters = self.route.iter().map(RouteTrace::iters).max().unwrap_or(0);
        out.push_str(&format!(
            "  route: {} runs, max {} passes, {} expansions, {} rip-ups, final overuse {}\n",
            self.route.len(),
            max_iters,
            self.route
                .iter()
                .map(RouteTrace::total_expansions)
                .sum::<u64>(),
            self.route.iter().map(RouteTrace::total_ripups).sum::<u64>(),
            self.route
                .iter()
                .map(RouteTrace::final_overused)
                .sum::<u64>()
        ));
        out.push_str(&format!(
            "  route opt: {} steiner segments, {} criticality re-routes, {} merge conflicts\n",
            self.route.iter().map(|t| t.steiner_segments).sum::<u64>(),
            self.route
                .iter()
                .map(|t| t.criticality_reroutes)
                .sum::<u64>(),
            self.route.iter().map(|t| t.parallel_conflicts).sum::<u64>()
        ));
        out.push_str(&format!(
            "  stitch: {} threshold retries\n",
            self.stitch_retries.len()
        ));
        for t in &self.stitch_retries {
            out.push_str(&format!(
                "    step {:<3} {:<40} score {:>10.2} > threshold {:>10.2}\n",
                t.step, t.component, t.score, t.threshold
            ));
        }
        out
    }

    /// The `n` hottest span paths by self cost (event-ordered), hottest
    /// first; ties break lexicographically by path so the order is
    /// deterministic.
    pub fn hot_spans(&self, n: usize) -> Vec<(&str, &SpanProfile)> {
        let mut v: Vec<(&str, &SpanProfile)> =
            self.spans.iter().map(|(k, s)| (k.as_str(), s)).collect();
        v.sort_by(|a, b| {
            b.1.self_events
                .cmp(&a.1.self_events)
                .then_with(|| a.0.cmp(b.0))
        });
        v.truncate(n);
        v
    }

    /// Compact table of the `n` hottest spans (the `flowstat summarize
    /// --top N` form): full paths, no tree indentation, sorted by self
    /// cost.
    pub fn render_top(&self, n: usize) -> String {
        let hot = self.hot_spans(n);
        let mut out = format!(
            "flowstat hot spans: top {} of {} (by self cost, event-ordered)\n",
            hot.len(),
            self.spans.len()
        );
        out.push_str(&format!(
            "  {:<60} {:>7} {:>10} {:>10}\n",
            "path", "count", "total", "self"
        ));
        for (path, s) in hot {
            out.push_str(&format!(
                "  {:<60} {:>7} {:>10} {:>10}\n",
                path, s.count, s.total_events, s.self_events
            ));
        }
        out
    }

    /// Render the wall-clock aggregates (empty string when the stream
    /// carried none). Kept out of [`RunReport::render_text`] so the
    /// default `flowstat summarize` output stays byte-identical across
    /// same-seed runs; `flowstat summarize --wallclock` appends it.
    pub fn render_wallclock(&self) -> String {
        if self.wallclock.is_empty() {
            return String::new();
        }
        let mut out = String::from("\nwall-clock (nondeterministic, excluded from diffs)\n");
        for (k, w) in &self.wallclock {
            out.push_str(&format!(
                "  {:<52} last {:>12.4}  min {:>12.4}  max {:>12.4}  n {}\n",
                k, w.last, w.min, w.max, w.count
            ));
        }
        out
    }
}

/// One aligned metric that differs between two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    pub key: String,
    /// Value in the first report (`None` = metric absent there).
    pub a: Option<f64>,
    /// Value in the second report.
    pub b: Option<f64>,
}

impl DiffEntry {
    /// Relative change in percent, when both sides are present and the
    /// baseline is nonzero.
    pub fn rel_change_pct(&self) -> Option<f64> {
        match (self.a, self.b) {
            (Some(a), Some(b)) if a != 0.0 => Some((b - a) / a.abs() * 100.0),
            _ => None,
        }
    }

    /// Whether this delta trips a `--fail-on-regression pct` gate: metrics
    /// appearing or disappearing always do; present-on-both-sides metrics
    /// do when the relative change exceeds `pct` percent in either
    /// direction (with a zero baseline, any nonzero value trips).
    pub fn is_regression(&self, pct: f64) -> bool {
        match (self.a, self.b) {
            (Some(a), Some(b)) => {
                if a == 0.0 {
                    b != 0.0
                } else {
                    ((b - a) / a.abs() * 100.0).abs() > pct
                }
            }
            _ => true,
        }
    }
}

/// The aligned difference of two [`RunReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDiff {
    /// Differing metrics, sorted by key.
    pub entries: Vec<DiffEntry>,
    /// Total metric keys compared (union of both reports).
    pub compared: usize,
}

impl ReportDiff {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that trip a `--fail-on-regression pct` gate.
    pub fn regressions(&self, pct: f64) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.is_regression(pct))
            .collect()
    }

    /// Deterministic plain-text rendering.
    pub fn render_text(&self) -> String {
        if self.entries.is_empty() {
            return format!(
                "flowstat diff: reports are identical ({} metrics compared)\n",
                self.compared
            );
        }
        let mut out = format!(
            "flowstat diff: {} differing metrics (of {} compared)\n",
            self.entries.len(),
            self.compared
        );
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x}"),
            None => "-".to_string(),
        };
        for e in &self.entries {
            let rel = match e.rel_change_pct() {
                Some(p) => format!("  ({p:+.2}%)"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:<60} {:>16} -> {:>16}{}\n",
                e.key,
                fmt(e.a),
                fmt(e.b),
                rel
            ));
        }
        out
    }

    /// [`ReportDiff::to_json`] pretty-printed (the `flowstat diff --json`
    /// form).
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("diff serializes")
    }

    /// The diff as a JSON array (deterministic).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value as J;
        let mut root = J::Map(Vec::new());
        root["compared"] = J::U64(self.compared as u64);
        root["differing"] = J::U64(self.entries.len() as u64);
        root["entries"] = J::Seq(
            self.entries
                .iter()
                .map(|e| {
                    let mut n = J::Map(Vec::new());
                    n["key"] = J::Str(e.key.clone());
                    n["a"] = e.a.map(J::F64).unwrap_or(J::Null);
                    n["b"] = e.b.map(J::F64).unwrap_or(J::Null);
                    n
                })
                .collect(),
        );
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Obs};
    use std::sync::Arc;

    fn sample_stream() -> Vec<Event> {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).with_seed(7);
        let flow = obs.scoped("flow::arch_opt");
        let span = flow.span("stitch");
        let placer = obs.scoped("stitch::placer").with_seed(7);
        placer.point(
            "candidate",
            &[("score", 12.5f64.into()), ("step", 0u64.into())],
        );
        placer.point(
            "threshold_retry",
            &[
                ("component", "conv1".into()),
                ("step", 1u64.into()),
                ("score", 300.0f64.into()),
                ("threshold", 200.0f64.into()),
            ],
        );
        span.end();
        let route = obs.scoped("pnr::route");
        let rspan = route.span("pathfinder");
        route.point(
            "pathfinder_iter",
            &[
                ("iter", 0u64.into()),
                ("overused", 3u64.into()),
                ("ripups", 2u64.into()),
                ("expansions", 100u64.into()),
                ("steiner_segments", 5u64.into()),
                ("criticality_reroutes", 1u64.into()),
                ("parallel_conflicts", 0u64.into()),
            ],
        );
        route.point(
            "pathfinder_iter",
            &[
                ("iter", 1u64.into()),
                ("overused", 0u64.into()),
                ("ripups", 0u64.into()),
                ("expansions", 40u64.into()),
                ("steiner_segments", 2u64.into()),
                ("criticality_reroutes", 0u64.into()),
                ("parallel_conflicts", 1u64.into()),
            ],
        );
        rspan.end();
        let place = obs.scoped("pnr::place").with_seed(3);
        place.point(
            "anneal_round",
            &[
                ("round", 0u64.into()),
                ("cost", 100.0f64.into()),
                ("accepted", 10u64.into()),
                ("rejected", 5u64.into()),
            ],
        );
        place.point(
            "anneal_round",
            &[
                ("round", 1u64.into()),
                ("cost", 80.0f64.into()),
                ("accepted", 4u64.into()),
                ("rejected", 11u64.into()),
            ],
        );
        obs.scoped("flow::function_opt").counter("cache_hits", 6);
        obs.scoped("pnr::timing").gauge("fmax_mhz", 312.5);
        sink.snapshot()
    }

    #[test]
    fn folds_spans_counters_gauges_and_traces() {
        let r = RunReport::from_events(&sample_stream());
        assert_eq!(r.events, 12);
        assert_eq!(r.seeds.iter().copied().collect::<Vec<_>>(), vec![3, 7]);
        let stitch = &r.spans["flow::arch_opt:stitch"];
        assert_eq!(stitch.count, 1);
        // start + 2 points + end, all billed to the open span.
        assert_eq!(stitch.total_events, 3);
        assert_eq!(stitch.self_events, 3);
        assert_eq!(r.counters["flow::function_opt:cache_hits"].sum, 6);
        let g = &r.gauges["pnr::timing:fmax_mhz"];
        assert_eq!((g.last, g.min, g.max, g.count), (312.5, 312.5, 312.5, 1));
        assert_eq!(r.anneal.len(), 1);
        assert_eq!(r.anneal[0].seed, 3);
        assert_eq!(r.anneal[0].cost, vec![100.0, 80.0]);
        assert_eq!(r.anneal[0].accepted, 14);
        assert_eq!(r.route.len(), 1);
        assert_eq!(r.route[0].iters(), 2);
        assert_eq!(r.route[0].total_expansions(), 140);
        assert_eq!(r.route[0].final_overused(), 0);
        assert_eq!(r.route[0].steiner_segments, 7);
        assert_eq!(r.route[0].criticality_reroutes, 1);
        assert_eq!(r.route[0].parallel_conflicts, 1);
        let m = r.metrics();
        assert_eq!(m["trace route steiner_segments"], 7.0);
        assert_eq!(m["trace route criticality_reroutes"], 1.0);
        assert_eq!(m["trace route parallel_conflicts"], 1.0);
        assert_eq!(r.stitch_retries.len(), 1);
        assert_eq!(r.stitch_retries[0].component, "conv1");
    }

    #[test]
    fn nested_spans_attribute_self_and_total() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("t");
        {
            let _outer = obs.span("outer");
            obs.point("a", &[]);
            {
                let _inner = obs.span("inner");
                obs.point("b", &[]);
                obs.point("c", &[]);
            }
            obs.point("d", &[]);
        }
        let r = RunReport::from_events(&sink.snapshot());
        let outer = &r.spans["t:outer"];
        let inner = &r.spans["t:outer/t:inner"];
        // Outer sees everything after its start: a, inner start, b, c,
        // inner end, d, outer end = 7.
        assert_eq!(outer.total_events, 7);
        // Inner's share: b, c, inner end = 3.
        assert_eq!(inner.total_events, 3);
        assert_eq!(outer.self_events, outer.total_events - inner.total_events);
        assert_eq!(inner.self_events, 3);
    }

    #[test]
    fn histogram_buckets_are_fixed_and_exhaustive() {
        assert_eq!(Histogram::bucket_of(-1.0), 0);
        assert_eq!(Histogram::bucket_of(0.0), 1);
        assert_eq!(Histogram::bucket_of(0.999), 1);
        assert_eq!(Histogram::bucket_of(1.0), 2);
        assert_eq!(Histogram::bucket_of(2.0), 3);
        assert_eq!(Histogram::bucket_of(3.99), 3);
        assert_eq!(Histogram::bucket_of(32768.0), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1.0e300), HISTOGRAM_BUCKETS - 1);
        let mut h = Histogram::default();
        for v in [0.5, 1.5, 1.5, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.sum, 103.5);
        assert_eq!((h.min, h.max), (0.5, 100.0));
        assert_eq!(Histogram::bucket_label(1), "[0,1)");
        assert_eq!(Histogram::bucket_label(2), "[1,2)");
    }

    #[test]
    fn same_stream_folds_to_equal_reports_and_empty_diff() {
        let events = sample_stream();
        let a = RunReport::from_events(&events);
        let b = RunReport::from_events(&events);
        assert_eq!(a, b);
        let d = a.diff(&b);
        assert!(d.is_empty());
        assert!(d.compared > 10);
        assert!(d.render_text().contains("identical"));
    }

    #[test]
    fn diff_flags_deltas_and_regressions() {
        let events = sample_stream();
        let a = RunReport::from_events(&events);
        // Perturb: drop the last two events (gauge + counter differ).
        let b = RunReport::from_events(&events[..events.len() - 2]);
        let d = a.diff(&b);
        assert!(!d.is_empty());
        // Removed metrics always count as regressions.
        assert!(!d.regressions(50.0).is_empty());
        // events went from 12 to 10: -16.7%, above a 5% gate, below 50%.
        let ev = d.entries.iter().find(|e| e.key == "events").unwrap();
        assert!(ev.is_regression(5.0));
        assert!(!ev.is_regression(50.0));
        let text = d.render_text();
        assert!(text.contains("differing metrics"));
        // Deterministic rendering.
        assert_eq!(text, a.diff(&b).render_text());
    }

    #[test]
    fn report_round_trips_through_jsonl() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("rt").with_seed(2);
        let span = obs.span_with("phase", &[("n", 3u64.into())]);
        obs.point(
            "step",
            &[
                ("cost", 1.25f64.into()),
                ("i", (-4i64).into()),
                ("ok", true.into()),
                ("tag", "x".into()),
                ("wallclock_s", 0.5f64.into()),
            ],
        );
        obs.counter("c", 9);
        obs.gauge("g", -2.5);
        span.end();
        let direct = RunReport::from_events(&sink.snapshot());
        // Full JSONL (with timestamps) and the stripped comparison form
        // must fold to the same report.
        let full: String = sink
            .snapshot()
            .iter()
            .map(|e| e.to_json_line() + "\n")
            .collect();
        let parsed = RunReport::from_jsonl(&full).expect("parses");
        assert_eq!(direct, parsed);
        // The stripped comparison form drops exactly the wall-clock
        // aggregates — every deterministic metric still aligns.
        let stripped = RunReport::from_jsonl(&sink.stripped_jsonl()).expect("parses");
        assert!(direct.diff(&stripped).is_empty());
        assert!(stripped.wallclock.is_empty());
        assert_eq!(direct.wallclock["rt:step.wallclock_s"].last, 0.5);
        assert!(direct.render_wallclock().contains("wallclock_s"));
        assert_eq!(stripped.render_wallclock(), "");
        let mut no_wallclock = direct.clone();
        no_wallclock.wallclock.clear();
        assert_eq!(no_wallclock, stripped);
    }

    #[test]
    fn renderings_are_deterministic_and_mention_sections() {
        let r = RunReport::from_events(&sample_stream());
        let t1 = r.render_text();
        let t2 = RunReport::from_events(&sample_stream()).render_text();
        assert_eq!(t1, t2);
        for needle in ["span profile", "counters", "gauges", "convergence"] {
            assert!(t1.contains(needle), "missing section {needle}");
        }
        let j1 = serde_json::to_string_pretty(&r.to_json()).unwrap();
        let j2 = serde_json::to_string_pretty(&r.to_json()).unwrap();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"convergence\""));
    }

    #[test]
    fn hot_spans_sort_by_self_cost_with_stable_ties() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("t");
        {
            let _outer = obs.span("outer");
            {
                let _hot = obs.span("hot");
                for _ in 0..5 {
                    obs.point("w", &[]);
                }
            }
            {
                let _cool = obs.span("cool");
                obs.point("w", &[]);
            }
        }
        let r = RunReport::from_events(&sink.snapshot());
        let top = r.hot_spans(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "t:outer/t:hot");
        assert!(top[0].1.self_events >= top[1].1.self_events);
        // Truncation and rendering are deterministic.
        assert_eq!(r.hot_spans(10).len(), r.spans.len());
        let text = r.render_top(2);
        assert!(text.starts_with("flowstat hot spans: top 2 of 3"));
        assert!(text.contains("t:outer/t:hot"));
        assert!(!text.contains("t:outer/t:cool"));
        assert_eq!(text, r.render_top(2));
    }

    #[test]
    fn unbalanced_streams_do_not_panic() {
        // A truncated trace may end with open spans or carry an orphan end.
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("x");
        let span = obs.span("open_forever");
        obs.point("p", &[]);
        drop(span);
        let mut events = sink.snapshot();
        events.remove(2); // drop the span end -> stream ends with open span
        let r = RunReport::from_events(&events);
        assert_eq!(r.spans["x:open_forever"].count, 1);
        // Orphan end only.
        let orphan = vec![Event {
            seq: 0,
            ts_us: 0,
            seed: 0,
            scope: "y".to_string(),
            name: "ghost".to_string(),
            kind: EventKind::SpanEnd,
            fields: vec![],
        }];
        let r = RunReport::from_events(&orphan);
        assert_eq!(r.events, 1);
    }
}
