//! Append-only run history and rolling-window trend gating.
//!
//! `flowstat diff` compares exactly two runs; this module turns many runs
//! into a *trajectory*. [`append`] adds one compacted run — a label plus
//! the flattened [`RunReport::metrics`](crate::agg::RunReport::metrics)
//! map — as a single JSON line in `history.jsonl` under a history
//! directory. [`trend`] then judges the newest run against the rolling
//! median of the preceding window: for every metric, the newest value must
//! stay within a relative tolerance of the window median (a zero median
//! admits only zero; a metric appearing or disappearing always trips).
//! Everything is a pure function of the deterministic metric maps, so the
//! verdict and its rendering are byte-stable — `flowstat trend
//! --fail-on-regression` is a CI gate, exactly like `flowstat diff`.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::Path;

/// File name of the JSONL run log inside a history directory.
pub const HISTORY_FILE: &str = "history.jsonl";

/// One recorded run: a human-chosen label and the compacted metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    pub label: String,
    pub metrics: BTreeMap<String, f64>,
}

impl HistoryEntry {
    /// Compact a folded report under `label`.
    pub fn from_report(label: impl Into<String>, report: &crate::agg::RunReport) -> Self {
        HistoryEntry {
            label: label.into(),
            metrics: report.metrics(),
        }
    }

    /// One JSON line: `{"label":...,"metrics":{...}}` with sorted metric
    /// keys (the map is a `BTreeMap`).
    pub fn to_json_line(&self) -> String {
        let mut m = serde_json::Value::Map(Vec::new());
        m["label"] = serde_json::Value::Str(self.label.clone());
        let mut metrics = serde_json::Value::Map(Vec::new());
        for (k, v) in &self.metrics {
            metrics[k.as_str()] = serde_json::Value::F64(*v);
        }
        m["metrics"] = metrics;
        serde_json::to_string(&m).expect("entry serializes")
    }

    /// Parse one line written by [`HistoryEntry::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let json: serde_json::Value =
            serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let label = match json.get("label") {
            Some(serde_json::Value::Str(s)) => s.clone(),
            _ => return Err("missing string field `label`".to_string()),
        };
        let mut metrics = BTreeMap::new();
        match json.get("metrics") {
            Some(serde_json::Value::Map(entries)) => {
                for (k, v) in entries {
                    let n = match v {
                        serde_json::Value::U64(n) => *n as f64,
                        serde_json::Value::I64(n) => *n as f64,
                        serde_json::Value::F64(n) => *n,
                        // Non-finite floats serialize as null.
                        serde_json::Value::Null => f64::NAN,
                        _ => return Err(format!("metric {k} is not a number")),
                    };
                    metrics.insert(k.clone(), n);
                }
            }
            _ => return Err("missing object field `metrics`".to_string()),
        }
        Ok(HistoryEntry { label, metrics })
    }
}

/// Append one entry to `dir/history.jsonl`, creating the directory and
/// file as needed. Appends are atomic at line granularity (one `write`).
pub fn append(dir: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(HISTORY_FILE))?;
    f.write_all((entry.to_json_line() + "\n").as_bytes())
}

/// Load every entry of `dir/history.jsonl` in append order. A missing
/// file reads as an empty history; a corrupt line is an error naming its
/// 1-based line number.
pub fn load(dir: &Path) -> Result<Vec<HistoryEntry>, String> {
    let path = dir.join(HISTORY_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(
            HistoryEntry::from_json_line(line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(entries)
}

/// One metric whose newest value trips the trend gate.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendEntry {
    pub key: String,
    /// Newest run's value (`None` = the metric disappeared).
    pub value: Option<f64>,
    /// Rolling median over the baseline window (`None` = the metric is
    /// new).
    pub median: Option<f64>,
    /// Relative deviation in percent, when both sides exist and the
    /// median is nonzero.
    pub rel_pct: Option<f64>,
}

/// The verdict of judging the newest run against its rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Label of the run under judgment.
    pub newest: String,
    /// Baseline entries actually used (`<= window`).
    pub baseline_runs: usize,
    /// Metric keys compared (union of newest and baseline).
    pub compared: usize,
    /// Tolerance applied, in percent.
    pub tolerance_pct: f64,
    /// Metrics outside tolerance, sorted by key.
    pub regressions: Vec<TrendEntry>,
}

/// Median of a non-empty sample set (even count: mean of the middle two).
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Judge the newest entry against the rolling median of up to `window`
/// immediately preceding entries. Needs at least two entries (one
/// baseline run plus the run under judgment).
pub fn trend(
    entries: &[HistoryEntry],
    window: usize,
    tolerance_pct: f64,
) -> Result<TrendReport, String> {
    let (newest, prior) = match entries.split_last() {
        Some(split) => split,
        None => return Err("history is empty — record runs first".to_string()),
    };
    if prior.is_empty() {
        return Err("history has a single run — need at least one baseline run".to_string());
    }
    let window = window.max(1);
    let baseline = &prior[prior.len().saturating_sub(window)..];
    let keys: BTreeSet<&String> = newest
        .metrics
        .keys()
        .chain(baseline.iter().flat_map(|e| e.metrics.keys()))
        .collect();
    let compared = keys.len();
    let mut regressions = Vec::new();
    for key in keys {
        let value = newest.metrics.get(key).copied();
        let samples: Vec<f64> = baseline
            .iter()
            .filter_map(|e| e.metrics.get(key).copied())
            .collect();
        let med = if samples.is_empty() {
            None
        } else {
            Some(median(samples))
        };
        let (trips, rel_pct) = match (value, med) {
            // Appearing or disappearing metrics always trip, like
            // `DiffEntry::is_regression`.
            (None, _) | (_, None) => (true, None),
            (Some(v), Some(m)) => {
                if m == 0.0 {
                    (v != 0.0, None)
                } else {
                    let pct = (v - m) / m.abs() * 100.0;
                    (pct.abs() > tolerance_pct, Some(pct))
                }
            }
        };
        if trips {
            regressions.push(TrendEntry {
                key: key.clone(),
                value,
                median: med,
                rel_pct,
            });
        }
    }
    Ok(TrendReport {
        newest: newest.label.clone(),
        baseline_runs: baseline.len(),
        compared,
        tolerance_pct,
        regressions,
    })
}

impl TrendReport {
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Deterministic plain-text rendering.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "flowstat trend: run {:?} vs median of {} run(s), tolerance {}%\n",
            self.newest, self.baseline_runs, self.tolerance_pct
        );
        if self.regressions.is_empty() {
            out.push_str(&format!(
                "  within tolerance ({} metrics compared)\n",
                self.compared
            ));
            return out;
        }
        out.push_str(&format!(
            "  {} metric(s) outside tolerance (of {} compared)\n",
            self.regressions.len(),
            self.compared
        ));
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x}"),
            None => "-".to_string(),
        };
        for r in &self.regressions {
            let rel = match r.rel_pct {
                Some(p) => format!("  ({p:+.2}%)"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:<60} median {:>16} -> {:>16}{}\n",
                r.key,
                fmt(r.median),
                fmt(r.value),
                rel
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, pairs: &[(&str, f64)]) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            metrics: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn entries_round_trip_through_json_lines() {
        let e = entry("run-1", &[("events", 12.0), ("span x self", 3.5)]);
        let parsed = HistoryEntry::from_json_line(&e.to_json_line()).expect("parses");
        assert_eq!(parsed, e);
        assert!(HistoryEntry::from_json_line("not json").is_err());
        assert!(HistoryEntry::from_json_line("{\"label\":\"x\"}").is_err());
    }

    #[test]
    fn append_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("pi_obs_history_rt_test");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load(&dir).expect("missing file reads empty"), vec![]);
        let a = entry("a", &[("events", 1.0)]);
        let b = entry("b", &[("events", 2.0)]);
        append(&dir, &a).expect("append a");
        append(&dir, &b).expect("append b");
        assert_eq!(load(&dir).expect("loads"), vec![a, b]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trend_needs_a_baseline() {
        assert!(trend(&[], 20, 5.0).is_err());
        assert!(trend(&[entry("only", &[("e", 1.0)])], 20, 5.0).is_err());
    }

    #[test]
    fn identical_runs_are_within_tolerance() {
        let runs = vec![
            entry("r1", &[("events", 100.0), ("zero", 0.0)]),
            entry("r2", &[("events", 100.0), ("zero", 0.0)]),
            entry("r3", &[("events", 100.0), ("zero", 0.0)]),
        ];
        let t = trend(&runs, 20, 5.0).expect("trends");
        assert!(t.is_clean());
        assert_eq!(t.baseline_runs, 2);
        assert_eq!(t.compared, 2);
        assert!(t.render_text().contains("within tolerance"));
    }

    #[test]
    fn deviation_beyond_tolerance_trips() {
        let runs = vec![
            entry("r1", &[("cost", 100.0)]),
            entry("r2", &[("cost", 102.0)]),
            entry("r3", &[("cost", 98.0)]),
            entry("slow", &[("cost", 150.0)]),
        ];
        let t = trend(&runs, 20, 5.0).expect("trends");
        assert_eq!(t.regressions.len(), 1);
        let r = &t.regressions[0];
        assert_eq!(r.key, "cost");
        assert_eq!(r.median, Some(100.0));
        assert_eq!(r.value, Some(150.0));
        assert_eq!(r.rel_pct, Some(50.0));
        // 50% off is fine under a 60% tolerance.
        assert!(trend(&runs, 20, 60.0).expect("trends").is_clean());
        let text = t.render_text();
        assert!(text.contains("cost"));
        assert!(text.contains("+50.00%"));
        assert_eq!(text, trend(&runs, 20, 5.0).unwrap().render_text());
    }

    #[test]
    fn appearing_and_disappearing_metrics_trip() {
        let runs = vec![
            entry("r1", &[("a", 1.0), ("b", 1.0)]),
            entry("r2", &[("a", 1.0), ("c", 1.0)]),
        ];
        let t = trend(&runs, 20, 5.0).expect("trends");
        let keys: Vec<&str> = t.regressions.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, vec!["b", "c"], "b disappeared, c appeared");
    }

    #[test]
    fn zero_median_admits_only_zero() {
        let runs = vec![
            entry("r1", &[("overuse", 0.0)]),
            entry("r2", &[("overuse", 0.0)]),
            entry("r3", &[("overuse", 1.0)]),
        ];
        // Any nonzero against an all-zero baseline trips at any tolerance.
        assert!(!trend(&runs, 20, 1000.0).expect("trends").is_clean());
    }

    #[test]
    fn window_limits_the_baseline() {
        // Ancient slow runs fall out of a window of 2.
        let runs = vec![
            entry("old1", &[("cost", 1000.0)]),
            entry("old2", &[("cost", 1000.0)]),
            entry("r1", &[("cost", 100.0)]),
            entry("r2", &[("cost", 100.0)]),
            entry("r3", &[("cost", 101.0)]),
        ];
        let t = trend(&runs, 2, 5.0).expect("trends");
        assert_eq!(t.baseline_runs, 2);
        assert!(t.is_clean(), "window excludes the old runs");
        // The full window pulls the median up and trips the newest run.
        assert!(!trend(&runs, 20, 5.0).expect("trends").is_clean());
    }

    #[test]
    fn even_windows_take_the_middle_mean() {
        let runs = vec![
            entry("r1", &[("cost", 90.0)]),
            entry("r2", &[("cost", 110.0)]),
            entry("r3", &[("cost", 100.0)]),
        ];
        // Median of [90, 110] is 100 — the newest run matches exactly.
        assert!(trend(&runs, 20, 0.0).expect("trends").is_clean());
    }
}
