//! A process-wide metrics registry with Prometheus-style text exposition.
//!
//! [`Registry`] is the *live* counterpart of [`crate::agg::RunReport`]:
//! where a report folds one finished event stream into a deterministic
//! summary, a registry accumulates counters, gauges and histograms across
//! the lifetime of a long-running process (the `pi-serve` daemon's
//! `/metrics` endpoint is the first consumer) and renders them on demand
//! in the Prometheus text format — `# TYPE` comments, `name value` sample
//! lines, and cumulative `_bucket{le="..."}` series for histograms.
//!
//! The registry is cheap and thread-safe (one mutex around three
//! `BTreeMap`s), and rendering is deterministic for a given registry
//! state: metrics sort by name, floats print via Rust's shortest-roundtrip
//! formatting. Wall-clock derived values (uptime, latency histograms) are
//! inherently nondeterministic — exposition is for live monitoring, never
//! for the same-seed diff gates.

use crate::agg::{Histogram, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Live metric accumulator. Create one per process (or per subsystem),
/// share it behind an `Arc`, and render with
/// [`Registry::render_prometheus`].
pub struct Registry {
    inner: Mutex<Inner>,
    start: Instant,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Fold a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); every other byte becomes `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            start: Instant::now(),
        }
    }

    /// Add `delta` to a monotonic counter (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner.counters.entry(sanitize(name)).or_insert(0) += delta;
    }

    /// Set a monotonic counter to an absolute value — for mirroring a
    /// total that another subsystem already maintains (queue stats, cache
    /// totals) at scrape time.
    pub fn counter_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.insert(sanitize(name), value);
    }

    /// Set an instantaneous gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.insert(sanitize(name), value);
    }

    /// Record one sample into a fixed-bucket histogram (the
    /// [`crate::agg::Histogram`] power-of-two buckets).
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.hists.entry(sanitize(name)).or_default().record(value);
    }

    /// Whole seconds since this registry was created.
    pub fn uptime_seconds(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Current value of a counter (0 if absent) — mostly for tests.
    pub fn counter_value(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("registry lock");
        inner.counters.get(&sanitize(name)).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("registry lock");
        inner.gauges.get(&sanitize(name)).copied()
    }

    /// Upper bound (`le` label) of histogram bucket `i`, matching
    /// [`Histogram::bucket_of`]: bucket 0 holds negatives (`le="0"`),
    /// bucket 1 is `[0,1)`, bucket `i` tops out at `2^(i-1)`, the last
    /// bucket is `+Inf`.
    fn bucket_le(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            i if i < HISTOGRAM_BUCKETS - 1 => format!("{}", 1u64 << (i - 1)),
            _ => "+Inf".to_string(),
        }
    }

    /// Render every metric in the Prometheus text exposition format:
    /// sorted by name, one `# TYPE` comment per family, cumulative
    /// buckets plus `_sum`/`_count` for histograms, and a synthetic
    /// `uptime_seconds` gauge. Ends with a newline.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &inner.hists {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    Self::bucket_le(i)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out.push_str(&format!(
            "# TYPE uptime_seconds gauge\nuptime_seconds {}\n",
            self.uptime_seconds()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set_overrides() {
        let r = Registry::new();
        r.counter_add("jobs_total", 2);
        r.counter_add("jobs_total", 3);
        assert_eq!(r.counter_value("jobs_total"), 5);
        r.counter_set("jobs_total", 9);
        assert_eq!(r.counter_value("jobs_total"), 9);
        assert_eq!(r.counter_value("absent"), 0);
    }

    #[test]
    fn names_are_sanitized_into_the_prometheus_charset() {
        let r = Registry::new();
        r.counter_add("pi-serve jobs.total", 1);
        assert_eq!(r.counter_value("pi_serve_jobs_total"), 1);
        assert!(r.render_prometheus().contains("pi_serve_jobs_total 1"));
        // A leading digit is not a valid first character.
        r.gauge_set("9lives", 1.0);
        assert_eq!(r.gauge_value("_lives"), Some(1.0));
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge_set("queue_depth", 3.0);
        r.counter_add("b_total", 1);
        r.counter_add("a_total", 2);
        let text = r.render_prometheus();
        let a = text.find("a_total 2").expect("a_total rendered");
        let b = text.find("b_total 1").expect("b_total rendered");
        assert!(a < b, "counters sort by name");
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 3\n"));
        assert!(text.contains("# TYPE uptime_seconds gauge\n"));
        assert!(text.ends_with('\n'));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let r = Registry::new();
        for v in [0.5, 1.5, 1.5, 100.0] {
            r.observe("latency_ms", v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE latency_ms histogram\n"));
        // 0.5 lands below le=1; the two 1.5s join it below le=2.
        assert!(text.contains("latency_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("latency_ms_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("latency_ms_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_ms_sum 103.5\n"));
        assert!(text.contains("latency_ms_count 4\n"));
    }
}
