//! Flow-wide telemetry: a lightweight, thread-safe structured-event layer.
//!
//! Every engine in the workspace (annealing placer, PathFinder router,
//! physical optimization, component stitcher, the two flows) emits
//! [`Event`]s through an [`Obs`] handle instead of printing or keeping
//! private statistics. Events flow into an [`EventSink`]:
//!
//! * [`NullSink`] — drop everything (the default; instrumentation costs a
//!   branch),
//! * [`MemorySink`] — collect in memory for tests and in-process analysis,
//! * [`FileSink`] — append JSON Lines to a file (the `--trace` flag of the
//!   `pi-bench` binaries),
//! * [`FanoutSink`] — tee to several sinks,
//! * [`FilterSink`] — keep only events whose scope starts with a prefix,
//! * [`SamplingSink`] — deterministic 1-in-N head sampling of root span
//!   trees, for bounding telemetry overhead on high-traffic servers.
//!
//! **Determinism contract**: an event's payload (`seq`, `seed`, `scope`,
//! `name`, `kind`, `fields`) never contains wall-clock time; the only
//! nondeterministic field is the microsecond timestamp `ts_us`, carried
//! separately so it can be stripped. Two runs of the same seeded flow emit
//! byte-identical streams once timestamps are removed —
//! [`MemorySink::stripped_jsonl`] is exactly that comparison form.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod agg;
pub mod history;
pub mod registry;

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $conv)
            }
        }
    )*};
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn to_json(&self) -> serde_json::Value {
        match self {
            Value::U64(v) => serde_json::Value::U64(*v),
            Value::I64(v) => serde_json::Value::I64(*v),
            Value::F64(v) => serde_json::Value::F64(*v),
            Value::Str(v) => serde_json::Value::Str(v.clone()),
            Value::Bool(v) => serde_json::Value::Bool(*v),
        }
    }

    fn from_json(v: &serde_json::Value) -> Option<Value> {
        Some(match v {
            serde_json::Value::U64(n) => Value::U64(*n),
            serde_json::Value::I64(n) => Value::I64(*n),
            serde_json::Value::F64(n) => Value::F64(*n),
            serde_json::Value::Str(s) => Value::Str(s.clone()),
            serde_json::Value::Bool(b) => Value::Bool(*b),
            // Non-finite floats serialize as null; fold them back to NaN so
            // the field survives a round trip instead of vanishing.
            serde_json::Value::Null => Value::F64(f64::NAN),
            _ => return None,
        })
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named phase begins. Paired with [`EventKind::SpanEnd`] by name
    /// within a scope.
    SpanStart,
    /// A named phase ends. Duration is *not* in the payload — it is
    /// derivable from the (strippable) timestamps, keeping the payload
    /// deterministic.
    SpanEnd,
    /// A monotonic count sampled at this point.
    Counter,
    /// An instantaneous measurement.
    Gauge,
    /// A structured progress record (one iteration, one candidate, ...).
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Point => "point",
        }
    }

    fn from_str(s: &str) -> Option<EventKind> {
        Some(match s {
            "span_start" => EventKind::SpanStart,
            "span_end" => EventKind::SpanEnd,
            "counter" => EventKind::Counter,
            "gauge" => EventKind::Gauge,
            "point" => EventKind::Point,
            _ => return None,
        })
    }
}

/// Error parsing a recorded JSONL trace back into [`Event`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending record (0 for single-line
    /// parses).
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// One structured telemetry record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number, shared by every handle cloned from the
    /// same root — a total order over the run.
    pub seq: u64,
    /// Microseconds since the root handle was created. The only
    /// nondeterministic field; strip it to compare runs.
    pub ts_us: u64,
    /// Seed of the computation that emitted this event.
    pub seed: u64,
    /// Dotted origin, e.g. `pnr::place` or `flow::baseline`.
    pub scope: String,
    pub name: String,
    pub kind: EventKind,
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// JSON object for this event; `include_ts` controls whether the
    /// nondeterministic data is present. Besides `ts_us`, fields whose key
    /// starts with `wallclock` are nondeterministic by convention (they
    /// carry wall-clock-derived measurements such as the stitch share) and
    /// are stripped from the comparison form along with the timestamp.
    pub fn to_json(&self, include_ts: bool) -> serde_json::Value {
        let mut m = serde_json::Value::Map(Vec::new());
        m["seq"] = serde_json::Value::U64(self.seq);
        if include_ts {
            m["ts_us"] = serde_json::Value::U64(self.ts_us);
        }
        m["seed"] = serde_json::Value::U64(self.seed);
        m["scope"] = serde_json::Value::Str(self.scope.clone());
        m["name"] = serde_json::Value::Str(self.name.clone());
        m["kind"] = serde_json::Value::Str(self.kind.as_str().to_string());
        let mut fields = serde_json::Value::Map(Vec::new());
        for (k, v) in &self.fields {
            if !include_ts && k.starts_with("wallclock") {
                continue;
            }
            fields[k.as_str()] = v.to_json();
        }
        m["fields"] = fields;
        m
    }

    /// One JSON line, timestamp included.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_json(true)).expect("event serializes")
    }

    /// Parse one JSON line produced by [`Event::to_json_line`] (or its
    /// timestamp-stripped [`MemorySink::stripped_jsonl`] form — a missing
    /// `ts_us` reads as 0).
    pub fn from_json_line(line: &str) -> Result<Event, ParseError> {
        let err = |message: String| ParseError { line: 0, message };
        let json = serde_json::from_str(line).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let m = match &json {
            serde_json::Value::Map(entries) => entries,
            _ => return Err(err("event line is not a JSON object".to_string())),
        };
        let get = |key: &str| m.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let get_u64 = |key: &str| match get(key) {
            Some(serde_json::Value::U64(n)) => Ok(*n),
            Some(serde_json::Value::I64(n)) if *n >= 0 => Ok(*n as u64),
            Some(_) => Err(err(format!("field {key} is not an unsigned integer"))),
            None => Err(err(format!("missing field {key}"))),
        };
        let get_str = |key: &str| match get(key) {
            Some(serde_json::Value::Str(s)) => Ok(s.clone()),
            Some(_) => Err(err(format!("field {key} is not a string"))),
            None => Err(err(format!("missing field {key}"))),
        };
        let kind_str = get_str("kind")?;
        let kind = EventKind::from_str(&kind_str)
            .ok_or_else(|| err(format!("unknown event kind {kind_str:?}")))?;
        let mut fields = Vec::new();
        match get("fields") {
            Some(serde_json::Value::Map(entries)) => {
                for (k, v) in entries {
                    let value = Value::from_json(v)
                        .ok_or_else(|| err(format!("field {k} has a non-scalar value")))?;
                    fields.push((k.clone(), value));
                }
            }
            Some(_) => return Err(err("fields is not an object".to_string())),
            None => {}
        }
        Ok(Event {
            seq: get_u64("seq")?,
            ts_us: if get("ts_us").is_some() {
                get_u64("ts_us")?
            } else {
                0
            },
            seed: get_u64("seed")?,
            scope: get_str("scope")?,
            name: get_str("name")?,
            kind,
            fields,
        })
    }
}

/// Parse a whole JSON-Lines trace (blank lines skipped), e.g. a `--trace`
/// recording, back into events. Errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(Event::from_json_line(line).map_err(|e| ParseError {
            line: i + 1,
            message: e.message,
        })?);
    }
    Ok(events)
}

/// Receives every event emitted through an [`Obs`] handle. Implementations
/// must be cheap and thread-safe; the engines call `record` from inside
/// their hot loops (guarded by [`Obs::enabled`]).
pub trait EventSink: Send + Sync {
    fn record(&self, event: &Event);
    fn flush(&self) {}
}

/// Drops everything.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The determinism comparison form: JSON Lines with the timestamp
    /// stripped. Two same-seed runs must produce byte-identical output.
    pub fn stripped_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().expect("sink lock").iter() {
            out.push_str(&serde_json::to_string(&e.to_json(false)).expect("event serializes"));
            out.push('\n');
        }
        out
    }
}

impl EventSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// Appends JSON Lines (timestamps included) to a file.
pub struct FileSink {
    out: Mutex<BufWriter<File>>,
}

impl FileSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FileSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl EventSink for FileSink {
    fn record(&self, event: &Event) {
        let mut out = self.out.lock().expect("sink lock");
        let _ = writeln!(out, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("sink lock").flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Tees every event to several sinks.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl FanoutSink {
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Forwards only events whose scope starts with a prefix.
pub struct FilterSink {
    prefix: String,
    inner: Arc<dyn EventSink>,
}

impl FilterSink {
    pub fn new(prefix: impl Into<String>, inner: Arc<dyn EventSink>) -> Self {
        FilterSink {
            prefix: prefix.into(),
            inner,
        }
    }
}

impl EventSink for FilterSink {
    fn record(&self, event: &Event) {
        if event.scope.starts_with(&self.prefix) {
            self.inner.record(event);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

/// Deterministic 1-in-N head sampling: of every N root-level span trees,
/// the first is forwarded whole (all events until its matching end,
/// children included) and the other N-1 are dropped whole. Events outside
/// any span are independently sampled 1-in-N by arrival index. The
/// decision is keyed on arrival order alone — never on time or
/// randomness — so the same stream always samples to the same substream.
///
/// High-traffic servers wrap their sink in one of these to bound
/// telemetry overhead while keeping every Nth request's full span tree.
pub struct SamplingSink {
    inner: Arc<dyn EventSink>,
    n: u64,
    state: Mutex<SamplingState>,
}

#[derive(Default)]
struct SamplingState {
    /// Open-span depth of the stream as observed so far.
    depth: usize,
    /// Whether the current root tree is being forwarded.
    keep: bool,
    /// Root-level span trees seen so far.
    roots: u64,
    /// Span-free events seen at depth 0 so far.
    loose: u64,
}

impl SamplingSink {
    /// Forward 1 in `n` (an `n` of 0 behaves like 1: keep everything).
    pub fn new(n: u64, inner: Arc<dyn EventSink>) -> Self {
        SamplingSink {
            inner,
            n: n.max(1),
            state: Mutex::new(SamplingState::default()),
        }
    }
}

impl EventSink for SamplingSink {
    fn record(&self, event: &Event) {
        let mut s = self.state.lock().expect("sink lock");
        let forward = match event.kind {
            EventKind::SpanStart => {
                if s.depth == 0 {
                    s.keep = s.roots.is_multiple_of(self.n);
                    s.roots += 1;
                }
                s.depth += 1;
                s.keep
            }
            EventKind::SpanEnd if s.depth > 0 => {
                s.depth -= 1;
                s.keep
            }
            _ => {
                if s.depth > 0 {
                    s.keep
                } else {
                    // Outside any span (incl. orphan ends): sample by
                    // arrival index.
                    let keep = s.loose.is_multiple_of(self.n);
                    s.loose += 1;
                    keep
                }
            }
        };
        if forward {
            self.inner.record(event);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

struct ObsInner {
    sink: Arc<dyn EventSink>,
    seq: AtomicU64,
    epoch: Instant,
    enabled: bool,
}

/// A handle for emitting events. Clones share the sink, the sequence
/// counter, and the epoch; each clone carries its own scope and seed, so
/// threading telemetry through a call tree is `obs.scoped("pnr::route")`
/// or `obs.with_seed(seed)` — cheap, and no global state anywhere.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
    scope: String,
    seed: u64,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("scope", &self.scope)
            .field("seed", &self.seed)
            .field("enabled", &self.inner.enabled)
            .finish()
    }
}

impl Obs {
    /// A recording handle emitting to `sink`.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                sink,
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
                enabled: true,
            }),
            scope: String::new(),
            seed: 0,
        }
    }

    /// The disabled handle: every emit is a single branch.
    pub fn null() -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                sink: Arc::new(NullSink),
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
                enabled: false,
            }),
            scope: String::new(),
            seed: 0,
        }
    }

    /// Whether events reach a real sink. Engines use this to skip building
    /// field vectors in hot loops.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// A handle with the given scope (replacing this handle's scope).
    pub fn scoped(&self, scope: impl Into<String>) -> Obs {
        Obs {
            inner: Arc::clone(&self.inner),
            scope: scope.into(),
            seed: self.seed,
        }
    }

    /// A handle whose scope nests under this handle's scope
    /// (`parent::child`); a handle with no scope behaves like
    /// [`Obs::scoped`]. Lets per-request workers (e.g. `pi-serve` jobs)
    /// tag their events under a request-specific sub-scope without the
    /// caller reassembling dotted paths by hand.
    pub fn subscoped(&self, child: impl AsRef<str>) -> Obs {
        let child = child.as_ref();
        if self.scope.is_empty() {
            self.scoped(child)
        } else {
            self.scoped(format!("{}::{}", self.scope, child))
        }
    }

    /// A handle tagging its events with `seed`.
    pub fn with_seed(&self, seed: u64) -> Obs {
        Obs {
            inner: Arc::clone(&self.inner),
            scope: self.scope.clone(),
            seed,
        }
    }

    pub fn scope(&self) -> &str {
        &self.scope
    }

    fn emit(&self, name: &str, kind: EventKind, fields: &[(&str, Value)]) {
        if !self.inner.enabled {
            return;
        }
        let event = Event {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.inner.epoch.elapsed().as_micros() as u64,
            seed: self.seed,
            scope: self.scope.clone(),
            name: name.to_string(),
            kind,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.inner.sink.record(&event);
    }

    /// A structured progress record.
    pub fn point(&self, name: &str, fields: &[(&str, Value)]) {
        self.emit(name, EventKind::Point, fields);
    }

    /// A monotonic count observed at this moment.
    pub fn counter(&self, name: &str, value: u64) {
        self.emit(name, EventKind::Counter, &[("value", Value::U64(value))]);
    }

    /// An instantaneous measurement.
    pub fn gauge(&self, name: &str, value: f64) {
        self.emit(name, EventKind::Gauge, &[("value", Value::F64(value))]);
    }

    /// Start a span; the returned guard emits the matching `SpanEnd` when
    /// dropped. Extra fields go on the start event.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// [`Obs::span`] with fields on the start event.
    pub fn span_with(&self, name: &str, fields: &[(&str, Value)]) -> SpanGuard {
        self.emit(name, EventKind::SpanStart, fields);
        SpanGuard {
            obs: self.clone(),
            name: name.to_string(),
        }
    }

    /// Ask the sink to persist anything buffered.
    pub fn flush(&self) {
        self.inner.sink.flush();
    }

    /// A shared handle to this handle's sink — for tee-ing an existing
    /// pipeline into a [`FanoutSink`] without rebuilding it.
    pub fn sink_handle(&self) -> Arc<dyn EventSink> {
        Arc::clone(&self.inner.sink)
    }

    /// Re-emit `events` through this handle's sink, assigning fresh
    /// sequence numbers and timestamps from this handle's root. Scope,
    /// seed, name, kind and fields are preserved. This is the flush half
    /// of the [`BufferedObs`] pattern.
    pub fn replay<I: IntoIterator<Item = Event>>(&self, events: I) {
        if !self.inner.enabled {
            return;
        }
        for e in events {
            let event = Event {
                seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
                ts_us: self.inner.epoch.elapsed().as_micros() as u64,
                ..e
            };
            self.inner.sink.record(&event);
        }
    }

    /// A buffering handle for one task of a parallel region (see
    /// [`BufferedObs`]). Cheap no-op when this handle is disabled.
    pub fn buffered(&self) -> BufferedObs {
        BufferedObs::new(self)
    }
}

/// Telemetry buffering for parallel regions.
///
/// **The rule:** worker closures must never emit through a shared handle —
/// the global sequence counter would interleave events in thread-schedule
/// order and break the same-seed determinism contract. Instead, each
/// parallel *item* gets a `BufferedObs`: a private handle recording into a
/// per-task [`MemorySink`]. After the parallel region joins, the
/// coordinator calls [`BufferedObs::flush_into`] on each buffer **in input
/// index order**, which replays the events through the real handle with
/// freshly assigned sequence numbers. The resulting stream is byte-
/// identical (in [`MemorySink::stripped_jsonl`] form) at every thread
/// count, including the `PI_THREADS=1` sequential path.
///
/// When the parent handle is disabled this is a no-op wrapper around the
/// same disabled handle: nothing is buffered and flushing does nothing.
pub struct BufferedObs {
    obs: Obs,
    sink: Option<Arc<MemorySink>>,
}

impl BufferedObs {
    /// A buffer whose handle inherits `parent`'s scope and seed.
    pub fn new(parent: &Obs) -> BufferedObs {
        if !parent.enabled() {
            return BufferedObs {
                obs: parent.clone(),
                sink: None,
            };
        }
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone())
            .scoped(parent.scope().to_string())
            .with_seed(parent.seed);
        BufferedObs {
            obs,
            sink: Some(sink),
        }
    }

    /// The handle to hand to the worker closure.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Replay everything buffered through `target`, in buffered order,
    /// with fresh sequence numbers. Call once per buffer, in input index
    /// order, from the coordinating thread.
    pub fn flush_into(self, target: &Obs) {
        if let Some(sink) = self.sink {
            target.replay(sink.snapshot());
        }
    }
}

/// Emits the `SpanEnd` for [`Obs::span`] on drop.
pub struct SpanGuard {
    obs: Obs,
    name: String,
}

impl SpanGuard {
    /// End the span now (instead of at scope exit).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.emit(&self.name, EventKind::SpanEnd, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_disabled_and_silent() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.point("p", &[("x", 1u64.into())]);
        obs.counter("c", 2);
        let _g = obs.span("s");
    }

    #[test]
    fn memory_sink_records_in_sequence_order() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("test").with_seed(7);
        obs.point("a", &[("v", 1u64.into())]);
        obs.gauge("g", 2.5);
        obs.counter("c", 3);
        let events = sink.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(events.iter().all(|e| e.scope == "test" && e.seed == 7));
        assert_eq!(events[1].kind, EventKind::Gauge);
        assert_eq!(events[1].fields[0].1, Value::F64(2.5));
    }

    #[test]
    fn spans_nest_and_close_in_reverse_order() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("nest");
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
                obs.point("work", &[]);
            }
        }
        let events = sink.snapshot();
        let trace: Vec<(String, EventKind)> =
            events.iter().map(|e| (e.name.clone(), e.kind)).collect();
        assert_eq!(
            trace,
            vec![
                ("outer".to_string(), EventKind::SpanStart),
                ("inner".to_string(), EventKind::SpanStart),
                ("work".to_string(), EventKind::Point),
                ("inner".to_string(), EventKind::SpanEnd),
                ("outer".to_string(), EventKind::SpanEnd),
            ]
        );
    }

    #[test]
    fn filter_sink_keeps_only_matching_scopes() {
        let mem = Arc::new(MemorySink::new());
        let filtered = Arc::new(FilterSink::new("pnr::", mem.clone()));
        let obs = Obs::new(filtered);
        obs.scoped("pnr::place").point("keep", &[]);
        obs.scoped("stitch::placer").point("drop", &[]);
        obs.scoped("pnr::route").point("keep2", &[]);
        let names: Vec<String> = mem.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["keep", "keep2"]);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::new(FanoutSink::new(vec![a.clone(), b.clone()])));
        obs.point("p", &[]);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn wallclock_fields_are_stripped_with_the_timestamp() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        obs.point(
            "flow_done",
            &[
                ("fmax_mhz", 312.5f64.into()),
                ("wallclock_stitch_share", 0.07f64.into()),
            ],
        );
        let stripped = sink.stripped_jsonl();
        assert!(stripped.contains("fmax_mhz"));
        assert!(!stripped.contains("wallclock_stitch_share"));
        // The full line keeps the wall-clock measurement.
        let full = sink.snapshot()[0].to_json_line();
        assert!(full.contains("wallclock_stitch_share"));
    }

    #[test]
    fn stripped_jsonl_is_timestamp_free_and_stable() {
        let run = || {
            let sink = Arc::new(MemorySink::new());
            let obs = Obs::new(sink.clone()).scoped("d").with_seed(3);
            let span = obs.span_with("phase", &[("n", 4u64.into())]);
            obs.point("step", &[("cost", 1.25f64.into()), ("ok", true.into())]);
            span.end();
            sink.stripped_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.contains("ts_us"));
        assert!(a.contains("\"scope\":\"d\""));
        // Full lines still carry the timestamp.
        let sink = Arc::new(MemorySink::new());
        Obs::new(sink.clone()).point("p", &[]);
        assert!(sink.snapshot()[0].to_json_line().contains("ts_us"));
    }

    #[test]
    fn buffered_obs_replays_in_flush_order_with_fresh_seqs() {
        let sink = Arc::new(MemorySink::new());
        let root = Obs::new(sink.clone()).scoped("flow").with_seed(9);
        root.point("before", &[]);
        // Two buffers, flushed in index order regardless of emit order.
        let b0 = root.buffered();
        let b1 = root.buffered();
        b1.obs().point("item1", &[("i", 1u64.into())]);
        b0.obs().point("item0a", &[("i", 0u64.into())]);
        b0.obs().point("item0b", &[]);
        b0.flush_into(&root);
        b1.flush_into(&root);
        root.point("after", &[]);
        let events = sink.snapshot();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["before", "item0a", "item0b", "item1", "after"]);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "replay must renumber");
        // Scope and seed survive the replay.
        assert!(events.iter().all(|e| e.scope == "flow" && e.seed == 9));
    }

    #[test]
    fn buffered_obs_preserves_scoped_and_seeded_children() {
        let sink = Arc::new(MemorySink::new());
        let root = Obs::new(sink.clone()).scoped("flow");
        let buf = root.buffered();
        buf.obs().scoped("pnr::place").with_seed(3).point("p", &[]);
        buf.flush_into(&root);
        let events = sink.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, "pnr::place");
        assert_eq!(events[0].seed, 3);
    }

    #[test]
    fn buffered_obs_is_free_when_disabled() {
        let root = Obs::null();
        let buf = root.buffered();
        assert!(!buf.obs().enabled());
        buf.obs().point("dropped", &[]);
        buf.flush_into(&root); // no-op, must not panic
    }

    #[test]
    fn nested_buffers_flatten_into_one_ordered_stream() {
        let sink = Arc::new(MemorySink::new());
        let root = Obs::new(sink.clone());
        let outer = root.buffered();
        outer.obs().point("outer_pre", &[]);
        let inner = outer.obs().buffered();
        inner.obs().point("inner", &[]);
        inner.flush_into(outer.obs());
        outer.obs().point("outer_post", &[]);
        outer.flush_into(&root);
        let names: Vec<String> = sink.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["outer_pre", "inner", "outer_post"]);
    }

    #[test]
    fn file_sink_writes_json_lines() {
        let path = std::env::temp_dir().join("pi_obs_file_sink_test.jsonl");
        {
            let obs = Obs::new(Arc::new(FileSink::create(&path).expect("create")));
            obs.scoped("f").point("p", &[("x", 9u64.into())]);
            obs.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"x\":9"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_buffers_until_explicit_flush() {
        let path = std::env::temp_dir().join("pi_obs_file_sink_flush_test.jsonl");
        let sink = FileSink::create(&path).expect("create");
        sink.record(&Event {
            seq: 0,
            ts_us: 0,
            seed: 0,
            scope: "f".to_string(),
            name: "small".to_string(),
            kind: EventKind::Point,
            fields: vec![("x".to_string(), Value::U64(1))],
        });
        // One small record sits in the BufWriter — nothing on disk yet
        // (that's the point: no syscall per event on long traces).
        let before = std::fs::read_to_string(&path).expect("read back");
        assert!(before.is_empty(), "expected buffered, got {before:?}");
        sink.flush();
        let after = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(after.lines().count(), 1);
        assert!(after.contains("\"small\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_flushes_on_drop() {
        let path = std::env::temp_dir().join("pi_obs_file_sink_drop_test.jsonl");
        {
            let sink = FileSink::create(&path).expect("create");
            let obs = Obs::new(Arc::new(sink));
            obs.scoped("f").point("dropped", &[("x", 3u64.into())]);
            // No explicit flush: the Drop impl must write the buffer out.
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"dropped\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_round_trip_through_json_lines() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone()).scoped("rt").with_seed(4);
        let span = obs.span_with("phase", &[("n", 2u64.into())]);
        obs.point(
            "mixed",
            &[
                ("u", 7u64.into()),
                ("f", 2.5f64.into()),
                ("s", "text".into()),
                ("b", false.into()),
            ],
        );
        obs.counter("c", 11);
        obs.gauge("g", -1.5);
        span.end();
        for e in sink.snapshot() {
            let parsed = Event::from_json_line(&e.to_json_line()).expect("parses");
            assert_eq!(parsed.seq, e.seq);
            assert_eq!(parsed.ts_us, e.ts_us);
            assert_eq!(parsed.seed, e.seed);
            assert_eq!(parsed.scope, e.scope);
            assert_eq!(parsed.name, e.name);
            assert_eq!(parsed.kind, e.kind);
            // Values compare via JSON form: a positive I64 reads back as
            // U64, which is the same JSON scalar.
            assert_eq!(
                serde_json::to_string(&parsed.to_json(true)).unwrap(),
                e.to_json_line()
            );
        }
        // Whole-trace parse, including the stripped form (ts_us -> 0).
        let full: String = sink
            .snapshot()
            .iter()
            .map(|e| e.to_json_line() + "\n")
            .collect();
        assert_eq!(parse_jsonl(&full).expect("parses").len(), sink.len());
        let stripped = parse_jsonl(&sink.stripped_jsonl()).expect("parses");
        assert_eq!(stripped.len(), sink.len());
        assert!(stripped.iter().all(|e| e.ts_us == 0));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "{\"seq\":0,\"seed\":0,\"scope\":\"a\",\"name\":\"p\",\
                    \"kind\":\"point\",\"fields\":{}}\nnot json\n";
        let e = parse_jsonl(text).expect_err("second line is invalid");
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line("[1,2]").is_err());
        let bad_kind = "{\"seq\":0,\"seed\":0,\"scope\":\"a\",\"name\":\"p\",\
                        \"kind\":\"mystery\",\"fields\":{}}";
        assert!(Event::from_json_line(bad_kind)
            .unwrap_err()
            .message
            .contains("mystery"));
    }

    #[test]
    fn subscoped_nests_under_the_parent_scope() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        obs.scoped("serve").subscoped("job_1").point("start", &[]);
        obs.subscoped("root_level").point("start", &[]);
        let events = sink.snapshot();
        assert_eq!(events[0].scope, "serve::job_1");
        assert_eq!(events[1].scope, "root_level", "no leading separator");
    }

    #[test]
    fn sink_handle_shares_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        let tee = Obs::new(obs.sink_handle());
        tee.point("via_handle", &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn sampling_sink_keeps_exactly_one_in_n_root_trees() {
        let mem = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::new(SamplingSink::new(3, mem.clone()))).scoped("srv");
        for i in 0..12u64 {
            let span = obs.span_with("request", &[("i", i.into())]);
            {
                let _inner = obs.span("work");
                obs.point("step", &[]);
            }
            span.end();
        }
        let events = mem.snapshot();
        // Roots 0, 3, 6, 9 survive; each tree is 5 events.
        assert_eq!(events.len(), 4 * 5);
        let kept: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart && e.name == "request")
            .map(|e| match &e.fields[0].1 {
                Value::U64(v) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![0, 3, 6, 9]);
        // Kept trees are complete: starts and ends balance.
        let starts = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanStart)
            .count();
        let ends = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd)
            .count();
        assert_eq!(starts, ends);
    }

    #[test]
    fn sampling_sink_with_n_1_forwards_everything() {
        let mem = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::new(SamplingSink::new(1, mem.clone())));
        for _ in 0..5 {
            let _s = obs.span("r");
        }
        obs.point("loose", &[]);
        assert_eq!(mem.len(), 11);
        // n = 0 is clamped to 1, not a division by zero.
        let mem0 = Arc::new(MemorySink::new());
        Obs::new(Arc::new(SamplingSink::new(0, mem0.clone()))).point("p", &[]);
        assert_eq!(mem0.len(), 1);
    }

    #[test]
    fn sampling_sink_samples_span_free_events_independently() {
        let mem = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::new(SamplingSink::new(4, mem.clone())));
        for i in 0..8u64 {
            obs.point("tick", &[("i", i.into())]);
        }
        let kept: Vec<u64> = mem
            .snapshot()
            .iter()
            .map(|e| match &e.fields[0].1 {
                Value::U64(v) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(kept, vec![0, 4]);
    }
}
