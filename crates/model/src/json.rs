//! ONNX-style JSON op graphs.
//!
//! The descriptor is a named node list with explicit edges — the shape
//! exporters emit when walking an `onnx.GraphProto`:
//!
//! ```json
//! {
//!   "name": "resnet_small",
//!   "input": {"name": "input", "shape": [3, 32, 32]},
//!   "nodes": [
//!     {"name": "conv1", "op": "Conv", "inputs": ["input"],
//!      "attrs": {"kernel": 3, "out": 16, "pad": 1, "stride": 1},
//!      "shape": [16, 32, 32]},
//!     {"name": "add1", "op": "Add", "inputs": ["conv1b", "relu1"]}
//!   ],
//!   "outputs": ["fc1"]
//! }
//! ```
//!
//! `shape` declares a node's expected output tensor; the importer
//! cross-checks it against its own propagation and rejects
//! disagreements. [`render_json`] is the canonical writer: fixed key
//! order, sorted attributes, two-space indent — `parse → render` is
//! byte-stable, which the property tests pin down.

use crate::{Ctx, Import, ModelFormat};
use pi_cnn::{
    CnnError, ConvParams, EltwiseOp, FcParams, Layer, Network, NodeId, PoolParams, Shape,
};
use serde_json::Value;
use std::collections::HashMap;

/// Operators the importer understands, in suggestion order.
pub const SUPPORTED_OPS: &[&str] = &[
    "Conv",
    "BatchNormalization",
    "MaxPool",
    "AveragePool",
    "GlobalAveragePool",
    "Gemm",
    "Relu",
    "Add",
    "Mul",
    "Flatten",
];

/// One descriptor node, as declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonNode {
    pub name: String,
    pub op: String,
    pub inputs: Vec<String>,
    /// Sorted by key (the canonical order).
    pub attrs: Vec<(String, u32)>,
    /// Declared output shape, if any.
    pub shape: Option<Shape>,
}

/// A parsed JSON descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonModel {
    pub name: String,
    pub input_name: String,
    pub input_shape: Shape,
    pub nodes: Vec<JsonNode>,
    pub outputs: Vec<String>,
}

fn err(loc: impl Into<String>, msg: impl Into<String>) -> CnnError {
    CnnError::Import {
        loc: loc.into(),
        msg: msg.into(),
    }
}

fn as_map<'a>(v: &'a Value, loc: &str) -> Result<&'a [(String, Value)], CnnError> {
    match v {
        Value::Map(m) => Ok(m),
        _ => Err(err(loc, "expected an object")),
    }
}

fn as_str<'a>(v: &'a Value, loc: &str) -> Result<&'a str, CnnError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(err(loc, "expected a string")),
    }
}

fn as_u32(v: &Value, loc: &str) -> Result<u32, CnnError> {
    match v {
        Value::U64(n) => u32::try_from(*n).map_err(|_| err(loc, "number out of range")),
        Value::I64(n) => u32::try_from(*n).map_err(|_| err(loc, "number out of range")),
        _ => Err(err(loc, "expected a non-negative integer")),
    }
}

fn as_shape(v: &Value, loc: &str) -> Result<Shape, CnnError> {
    let Value::Seq(xs) = v else {
        return Err(err(loc, "expected a [channels, height, width] array"));
    };
    if xs.len() != 3 {
        return Err(err(loc, format!("expected 3 dimensions, got {}", xs.len())));
    }
    let d = |i: usize| as_u32(&xs[i], &format!("{loc}[{i}]"));
    Ok(Shape::new(d(0)?, d(1)?, d(2)?))
}

fn as_str_list(v: &Value, loc: &str) -> Result<Vec<String>, CnnError> {
    let Value::Seq(xs) = v else {
        return Err(err(loc, "expected an array of node names"));
    };
    xs.iter()
        .enumerate()
        .map(|(i, x)| as_str(x, &format!("{loc}[{i}]")).map(String::from))
        .collect()
}

/// Reject unknown keys so typos surface as located errors instead of
/// silently ignored fields.
fn check_keys(m: &[(String, Value)], allowed: &[&str], loc: &str) -> Result<(), CnnError> {
    for (k, _) in m {
        if !allowed.contains(&k.as_str()) {
            return Err(err(
                format!("{loc}.{k}"),
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

/// Parse descriptor text into the declared-form AST. Errors carry a JSON
/// field path (`nodes[3].attrs.kernel`).
pub fn parse_json(text: &str) -> Result<JsonModel, CnnError> {
    let root: Value = serde_json::from_str(text).map_err(|e| err("json", e.to_string()))?;
    let m = as_map(&root, "model")?;
    check_keys(m, &["name", "input", "nodes", "outputs"], "model")?;
    let name = as_str(
        root.get("name")
            .ok_or_else(|| err("model", "missing name"))?,
        "name",
    )?;

    let input = root
        .get("input")
        .ok_or_else(|| err("model", "missing input"))?;
    let im = as_map(input, "input")?;
    check_keys(im, &["name", "shape"], "input")?;
    let input_name = match input.get("name") {
        Some(v) => as_str(v, "input.name")?.to_string(),
        None => "input".to_string(),
    };
    let input_shape = as_shape(
        input
            .get("shape")
            .ok_or_else(|| err("input", "missing shape"))?,
        "input.shape",
    )?;

    let Some(Value::Seq(raw_nodes)) = root.get("nodes") else {
        return Err(err("model", "missing nodes array"));
    };
    let mut nodes = Vec::with_capacity(raw_nodes.len());
    for (i, rn) in raw_nodes.iter().enumerate() {
        let loc = format!("nodes[{i}]");
        let nm = as_map(rn, &loc)?;
        check_keys(nm, &["name", "op", "inputs", "attrs", "shape"], &loc)?;
        let get = |k: &str| rn.get(k).ok_or_else(|| err(&loc, format!("missing {k}")));
        let mut attrs: Vec<(String, u32)> = match rn.get("attrs") {
            None => Vec::new(),
            Some(a) => as_map(a, &format!("{loc}.attrs"))?
                .iter()
                .map(|(k, v)| Ok((k.clone(), as_u32(v, &format!("{loc}.attrs.{k}"))?)))
                .collect::<Result<_, CnnError>>()?,
        };
        attrs.sort_by(|(a, _), (b, _)| a.cmp(b));
        nodes.push(JsonNode {
            name: as_str(get("name")?, &format!("{loc}.name"))?.to_string(),
            op: as_str(get("op")?, &format!("{loc}.op"))?.to_string(),
            inputs: as_str_list(get("inputs")?, &format!("{loc}.inputs"))?,
            attrs,
            shape: match rn.get("shape") {
                None => None,
                Some(s) => Some(as_shape(s, &format!("{loc}.shape"))?),
            },
        });
    }

    let outputs = as_str_list(
        root.get("outputs")
            .ok_or_else(|| err("model", "missing outputs"))?,
        "outputs",
    )?;

    Ok(JsonModel {
        name: name.to_string(),
        input_name,
        input_shape,
        nodes,
        outputs,
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn shape_list(s: Shape) -> String {
    format!("[{}, {}, {}]", s.channels, s.height, s.width)
}

/// Canonical writer: fixed key order, attrs sorted, two-space indent.
/// `render_json(parse_json(render_json(m)))` is byte-identical.
pub fn render_json(model: &JsonModel) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{}\",\n", escape(&model.name)));
    out.push_str(&format!(
        "  \"input\": {{\"name\": \"{}\", \"shape\": {}}},\n",
        escape(&model.input_name),
        shape_list(model.input_shape)
    ));
    out.push_str("  \"nodes\": [\n");
    for (i, n) in model.nodes.iter().enumerate() {
        let inputs = n
            .inputs
            .iter()
            .map(|s| format!("\"{}\"", escape(s)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"op\": \"{}\", \"inputs\": [{inputs}]",
            escape(&n.name),
            escape(&n.op)
        ));
        if !n.attrs.is_empty() {
            let attrs = n
                .attrs
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", escape(k)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(", \"attrs\": {{{attrs}}}"));
        }
        if let Some(s) = n.shape {
            out.push_str(&format!(", \"shape\": {}", shape_list(s)));
        }
        out.push('}');
        if i + 1 < model.nodes.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let outputs = model
        .outputs
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("  \"outputs\": [{outputs}]\n"));
    out.push_str("}\n");
    out
}

/// Normalize the declared graph into a flow [`Network`]:
/// `BatchNormalization` folds into its producing conv, `Flatten`
/// dissolves into a rewire, `GlobalAveragePool` resolves against the
/// propagated shape, and declared shapes are cross-checked.
pub(crate) fn to_network(
    model: &JsonModel,
    ctx: &mut Ctx,
) -> Result<(Network, Vec<(String, String)>), CnnError> {
    // Name table (the input participates).
    let mut index: HashMap<&str, usize> = HashMap::new();
    if model.nodes.iter().any(|n| n.name == model.input_name) {
        return Err(ctx.fatal(
            crate::MODEL_MALFORMED,
            "nodes",
            format!("node name {:?} collides with the input", model.input_name),
        ));
    }
    for (i, n) in model.nodes.iter().enumerate() {
        if index.insert(n.name.as_str(), i).is_some() {
            return Err(ctx.fatal(
                crate::MODEL_MALFORMED,
                format!("nodes[{i}].name"),
                format!("duplicate node name {:?}", n.name),
            ));
        }
    }

    // Resolve edges; a reference to a name that exists nowhere is a
    // dangling edge.
    let mut preds: Vec<Vec<Option<usize>>> = Vec::with_capacity(model.nodes.len());
    for (i, n) in model.nodes.iter().enumerate() {
        if n.inputs.is_empty() {
            return Err(ctx.fatal(
                crate::MODEL_MALFORMED,
                format!("nodes[{i}].inputs"),
                format!("node {:?} has no inputs", n.name),
            ));
        }
        let mut row = Vec::with_capacity(n.inputs.len());
        for (j, inp) in n.inputs.iter().enumerate() {
            if *inp == model.input_name {
                row.push(None); // the graph input
            } else if let Some(&p) = index.get(inp.as_str()) {
                row.push(Some(p));
            } else {
                return Err(ctx.fatal(
                    crate::MODEL_MALFORMED,
                    format!("nodes[{i}].inputs[{j}]"),
                    format!("dangling edge: {:?} is not a declared node", inp),
                ));
            }
        }
        preds.push(row);
    }

    // Deterministic Kahn order over the descriptor graph; leftovers are
    // trapped in a cycle.
    let mut indeg: Vec<usize> = preds
        .iter()
        .map(|row| row.iter().filter(|p| p.is_some()).count())
        .collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); model.nodes.len()];
    for (i, row) in preds.iter().enumerate() {
        for p in row.iter().flatten() {
            succs[*p].push(i);
        }
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i))
        .collect();
    let mut order = Vec::with_capacity(model.nodes.len());
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        order.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(std::cmp::Reverse(s));
            }
        }
    }
    if order.len() != model.nodes.len() {
        let trapped = (0..model.nodes.len())
            .find(|i| !order.contains(i))
            .expect("some node is trapped");
        return Err(ctx.fatal(
            "PL0203",
            format!("nodes[{trapped}]"),
            format!(
                "node {:?} is trapped in a dependency cycle",
                model.nodes[trapped].name
            ),
        ));
    }

    // How many declared consumers each node has (for the fold-safety
    // check: a BN may only fold into a conv it exclusively consumes).
    let mut consumers = vec![0usize; model.nodes.len()];
    for row in &preds {
        for p in row.iter().flatten() {
            consumers[*p] += 1;
        }
    }

    let mut network = Network::new(&model.name);
    let input_id = network.add_node(&model.input_name, Layer::Input(model.input_shape));
    // Descriptor node -> surviving network node (folded nodes alias
    // their producer) and its computed output shape.
    let mut mapped: Vec<Option<(NodeId, Shape)>> = vec![None; model.nodes.len()];
    let resolve = |mapped: &Vec<Option<(NodeId, Shape)>>, p: &Option<usize>| match p {
        None => (input_id, model.input_shape),
        Some(i) => mapped[*i].expect("topological order visits producers first"),
    };

    for &i in &order {
        let n = &model.nodes[i];
        let loc = format!("nodes[{i}]");
        let ins: Vec<(NodeId, Shape)> = preds[i].iter().map(|p| resolve(&mapped, p)).collect();
        let single = |ctx: &mut Ctx| -> Result<(NodeId, Shape), CnnError> {
            if ins.len() == 1 {
                Ok(ins[0])
            } else {
                Err(ctx.fatal(
                    crate::MODEL_MALFORMED,
                    format!("{loc}.inputs"),
                    format!("{} takes exactly 1 input, got {}", n.op, ins.len()),
                ))
            }
        };

        // Attribute access with located errors; unknown keys rejected.
        let allowed: &[&str] = match n.op.as_str() {
            "Conv" => &["kernel", "out", "pad", "stride"],
            "MaxPool" | "AveragePool" => &["stride", "window"],
            "Gemm" => &["out"],
            _ => &[],
        };
        for (k, _) in &n.attrs {
            if !allowed.contains(&k.as_str()) {
                return Err(ctx.fatal(
                    crate::MODEL_MALFORMED,
                    format!("{loc}.attrs.{k}"),
                    format!("unknown attribute for {}", n.op),
                ));
            }
        }
        let attr = |k: &str| n.attrs.iter().find(|(a, _)| a == k).map(|(_, v)| *v);
        let require = |ctx: &mut Ctx, k: &str| {
            attr(k).ok_or_else(|| {
                ctx.fatal(
                    crate::MODEL_MALFORMED,
                    format!("{loc}.attrs.{k}"),
                    format!("missing required attribute {k}= for {}", n.op),
                )
            })
        };

        let layer = match n.op.as_str() {
            "Conv" => {
                let (_, _) = single(ctx)?;
                Some(Layer::Conv(ConvParams {
                    kernel: require(ctx, "kernel")?,
                    stride: attr("stride").unwrap_or(1),
                    padding: attr("pad").unwrap_or(0),
                    out_channels: require(ctx, "out")?,
                }))
            }
            "MaxPool" | "AveragePool" => {
                let (_, _) = single(ctx)?;
                let window = require(ctx, "window")?;
                let stride = attr("stride").unwrap_or(window);
                Some(Layer::Pool(if n.op == "MaxPool" {
                    PoolParams::max(window, stride)
                } else {
                    PoolParams::average(window, stride)
                }))
            }
            "GlobalAveragePool" => {
                let (_, shape) = single(ctx)?;
                if shape.height != shape.width {
                    return Err(ctx.fatal(
                        "PL0201",
                        loc.clone(),
                        format!(
                            "GlobalAveragePool needs a square input, got {}x{}",
                            shape.height, shape.width
                        ),
                    ));
                }
                Some(Layer::Pool(PoolParams::average(shape.height, shape.height)))
            }
            "Gemm" => {
                let (_, _) = single(ctx)?;
                Some(Layer::Fc(FcParams {
                    out_features: require(ctx, "out")?,
                }))
            }
            "Relu" => {
                let (_, _) = single(ctx)?;
                Some(Layer::Relu)
            }
            "Add" | "Mul" => {
                if ins.len() != 2 {
                    return Err(ctx.fatal(
                        crate::MODEL_MALFORMED,
                        format!("{loc}.inputs"),
                        format!("{} joins exactly 2 streams, got {}", n.op, ins.len()),
                    ));
                }
                if ins[0].0 == ins[1].0 {
                    return Err(ctx.fatal(
                        crate::MODEL_MALFORMED,
                        format!("{loc}.inputs"),
                        "join operands must be distinct streams".to_string(),
                    ));
                }
                let (a, b) = (ins[0].1, ins[1].1);
                if a.channels != b.channels {
                    return Err(ctx.fatal(
                        crate::JOIN_CHANNEL_MISMATCH,
                        format!("{loc}.inputs"),
                        format!(
                            "join {:?} merges {} channels with {} channels",
                            n.name, a.channels, b.channels
                        ),
                    ));
                }
                if a != b {
                    return Err(ctx.fatal(
                        "PL0201",
                        format!("{loc}.inputs"),
                        format!("join {:?} operand shapes disagree: {a} vs {b}", n.name),
                    ));
                }
                Some(Layer::Eltwise(if n.op == "Add" {
                    EltwiseOp::Add
                } else {
                    EltwiseOp::Mul
                }))
            }
            "BatchNormalization" => {
                let (pid, shape) = single(ctx)?;
                // Foldable iff the producer is a conv this BN exclusively
                // consumes — then the affine transform folds into the conv
                // weights offline and the node dissolves.
                let foldable = preds[i][0]
                    .map(|p| model.nodes[p].op == "Conv" && consumers[p] == 1)
                    .unwrap_or(false);
                if !foldable {
                    ctx.warn(
                        crate::UNFOLDABLE_BATCHNORM,
                        loc.clone(),
                        format!(
                            "BatchNormalization {:?} does not exclusively follow a Conv; \
                             treated as identity instead of folding into conv weights",
                            n.name
                        ),
                    );
                }
                mapped[i] = Some((pid, shape));
                None
            }
            "Flatten" => {
                let (pid, shape) = single(ctx)?;
                // Streaming layouts have no materialized flatten; the FC
                // engine consumes any shape (kernel = input size).
                mapped[i] = Some((pid, shape));
                None
            }
            other => {
                let hint = match crate::suggest(other, SUPPORTED_OPS) {
                    Some(s) => format!(" (did you mean {s:?}?)"),
                    None => String::new(),
                };
                return Err(ctx.fatal(
                    crate::UNSUPPORTED_OP,
                    format!("{loc}.op"),
                    format!("unsupported operator {other:?}{hint}"),
                ));
            }
        };

        if let Some(layer) = layer {
            let out = layer
                .output_shape(ins[0].1)
                .map_err(|e| ctx.fatal("PL0201", loc.clone(), e.to_string()))?;
            if let Some(declared) = n.shape {
                if declared != out {
                    return Err(ctx.fatal(
                        "PL0201",
                        format!("{loc}.shape"),
                        format!("declared shape {declared} disagrees with propagated {out}"),
                    ));
                }
            }
            let id = network.add_node(&n.name, layer);
            for (pid, _) in &ins {
                network.add_edge(*pid, id);
            }
            mapped[i] = Some((id, out));
        }
    }

    if model.outputs.is_empty() {
        return Err(ctx.fatal(
            crate::MODEL_MALFORMED,
            "outputs",
            "a model declares at least one output".to_string(),
        ));
    }
    for (j, o) in model.outputs.iter().enumerate() {
        if *o != model.input_name && !index.contains_key(o.as_str()) {
            return Err(ctx.fatal(
                crate::MODEL_MALFORMED,
                format!("outputs[{j}]"),
                format!("output {o:?} is not a declared node"),
            ));
        }
    }

    Ok((network, Vec::new()))
}

/// The inverse mapping: render an in-memory network as a canonical JSON
/// descriptor (declared shapes included, so re-importing exercises the
/// shape cross-check). This is how the bundled `models/*.json` files are
/// generated and kept in sync with [`pi_cnn::models`].
pub fn to_json_descriptor(network: &Network) -> Result<String, CnnError> {
    let shapes = network.input_shapes()?;
    let input = network.input()?;
    let mut nodes = Vec::new();
    for (i, node) in network.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        if id == input {
            continue;
        }
        let a = |k: &str, v: u32| (k.to_string(), v);
        let (op, attrs) = match &node.layer {
            Layer::Conv(p) => (
                "Conv",
                vec![
                    a("kernel", p.kernel),
                    a("out", p.out_channels),
                    a("pad", p.padding),
                    a("stride", p.stride),
                ],
            ),
            Layer::Pool(p) => (
                match p.kind {
                    pi_cnn::PoolKind::Max => "MaxPool",
                    pi_cnn::PoolKind::Average => "AveragePool",
                },
                vec![a("stride", p.stride), a("window", p.window)],
            ),
            Layer::Relu => ("Relu", Vec::new()),
            Layer::Fc(p) => ("Gemm", vec![a("out", p.out_features)]),
            Layer::Eltwise(EltwiseOp::Add) => ("Add", Vec::new()),
            Layer::Eltwise(EltwiseOp::Mul) => ("Mul", Vec::new()),
            Layer::Input(_) => {
                return Err(CnnError::BadGraph(format!(
                    "secondary input layer {:?} has no descriptor form",
                    node.name
                )))
            }
        };
        let mut attrs = attrs;
        attrs.sort_by(|(x, _), (y, _)| x.cmp(y));
        nodes.push(JsonNode {
            name: node.name.clone(),
            op: op.to_string(),
            inputs: network
                .predecessors(id)
                .map(|p| network.node(p).name.clone())
                .collect(),
            attrs,
            shape: Some(node.layer.output_shape(shapes[i])?),
        });
    }
    let outputs = network
        .nodes()
        .iter()
        .enumerate()
        .filter(|(i, _)| network.successors(NodeId(*i as u32)).next().is_none())
        .map(|(_, n)| n.name.clone())
        .collect();
    let input_node = network.node(input);
    let Layer::Input(input_shape) = input_node.layer else {
        unreachable!("Network::input returns the input layer")
    };
    Ok(render_json(&JsonModel {
        name: network.name.clone(),
        input_name: input_node.name.clone(),
        input_shape,
        nodes,
        outputs,
    }))
}

/// Convenience: import the canonical rendering of `network` (round-trip
/// helper for tests and the bundled-descriptor regeneration).
pub fn reimport(network: &Network) -> Result<Import, CnnError> {
    crate::import(&to_json_descriptor(network)?, ModelFormat::Json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;

    #[test]
    fn builtin_models_round_trip_through_descriptors() {
        for net in [
            models::lenet5(),
            models::alexnet_like(),
            models::cifar10_quick(),
            models::resnet_small(),
        ] {
            let text = to_json_descriptor(&net).unwrap();
            // Canonical writer is parse-stable.
            let model = parse_json(&text).unwrap();
            assert_eq!(render_json(&model), text, "{} not canonical", net.name);
            // And the re-imported network is the same architecture.
            let imp = crate::import(&text, ModelFormat::Json).unwrap();
            assert_eq!(
                pi_cnn::archdef::to_archdef(&imp.network),
                pi_cnn::archdef::to_archdef(&net),
                "{} drifted",
                net.name
            );
            assert!(imp.findings.is_empty(), "{}: {:?}", net.name, imp.findings);
        }
    }

    #[test]
    fn batchnorm_folds_into_exclusive_conv() {
        let text = r#"{
  "name": "bn",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "c", "op": "Conv", "inputs": ["input"], "attrs": {"kernel": 3, "out": 4, "pad": 1}},
    {"name": "bn", "op": "BatchNormalization", "inputs": ["c"]},
    {"name": "r", "op": "Relu", "inputs": ["bn"]},
    {"name": "f", "op": "Gemm", "inputs": ["r"], "attrs": {"out": 10}}
  ],
  "outputs": ["f"]
}"#;
        let imp = crate::import(text, ModelFormat::Json).unwrap();
        // BN dissolved: input, conv, relu, fc.
        assert_eq!(imp.network.nodes().len(), 4);
        assert!(imp.findings.is_empty());
    }

    #[test]
    fn unfoldable_batchnorm_is_reported_not_fatal() {
        // BN after a Relu (not a conv) cannot fold into conv weights.
        let text = r#"{
  "name": "bn",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "r", "op": "Relu", "inputs": ["input"]},
    {"name": "bn", "op": "BatchNormalization", "inputs": ["r"]},
    {"name": "f", "op": "Gemm", "inputs": ["bn"], "attrs": {"out": 10}}
  ],
  "outputs": ["f"]
}"#;
        let imp = crate::import(text, ModelFormat::Json).unwrap();
        assert_eq!(imp.findings.len(), 1);
        assert_eq!(imp.findings[0].code, crate::UNFOLDABLE_BATCHNORM);
    }

    #[test]
    fn unknown_op_errors_with_suggestion() {
        let text = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [{"name": "c", "op": "Convolution", "inputs": ["input"]}],
  "outputs": ["c"]
}"#;
        let e = crate::import(text, ModelFormat::Json).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("nodes[0].op"), "{msg}");
        assert!(msg.contains("did you mean \"Conv\""), "{msg}");
        let (net, findings) = crate::import_lenient(text, ModelFormat::Json);
        assert!(net.is_none());
        assert_eq!(findings.last().unwrap().code, crate::UNSUPPORTED_OP);
    }

    #[test]
    fn join_channel_mismatch_is_located() {
        let text = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [3, 8, 8]},
  "nodes": [
    {"name": "a", "op": "Conv", "inputs": ["input"], "attrs": {"kernel": 1, "out": 4}},
    {"name": "b", "op": "Conv", "inputs": ["input"], "attrs": {"kernel": 1, "out": 8}},
    {"name": "j", "op": "Add", "inputs": ["a", "b"]}
  ],
  "outputs": ["j"]
}"#;
        let e = crate::import(text, ModelFormat::Json).unwrap_err();
        assert!(e.to_string().contains("4 channels with 8 channels"), "{e}");
        let (_, findings) = crate::import_lenient(text, ModelFormat::Json);
        assert_eq!(findings.last().unwrap().code, crate::JOIN_CHANNEL_MISMATCH);
    }

    #[test]
    fn cycles_and_dangling_edges_are_located_errors() {
        let cycle = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "a", "op": "Relu", "inputs": ["b"]},
    {"name": "b", "op": "Relu", "inputs": ["a"]}
  ],
  "outputs": ["b"]
}"#;
        let e = crate::import(cycle, ModelFormat::Json).unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");

        let dangling = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [{"name": "a", "op": "Relu", "inputs": ["ghost"]}],
  "outputs": ["a"]
}"#;
        let e = crate::import(dangling, ModelFormat::Json).unwrap_err();
        assert!(
            e.to_string().contains("nodes[0].inputs[0]") && e.to_string().contains("dangling"),
            "{e}"
        );
    }

    #[test]
    fn global_average_pool_resolves_to_window_pool() {
        let text = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [4, 6, 6]},
  "nodes": [
    {"name": "g", "op": "GlobalAveragePool", "inputs": ["input"]},
    {"name": "f", "op": "Gemm", "inputs": ["g"], "attrs": {"out": 10}}
  ],
  "outputs": ["f"]
}"#;
        let imp = crate::import(text, ModelFormat::Json).unwrap();
        let pool = &imp.network.nodes()[1];
        assert_eq!(
            pool.layer,
            Layer::Pool(PoolParams::average(6, 6)),
            "GAP must span the propagated window"
        );
        assert_eq!(imp.network.output_shape().unwrap(), Shape::new(10, 1, 1));
    }
}
