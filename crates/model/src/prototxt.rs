//! fpgaConvNet-style prototxt layer configs.
//!
//! The dialect describes a *linear* CNN as per-layer blocks, each naming
//! an engine config plus the folding factors the HLS flow would unroll
//! by:
//!
//! ```text
//! name: "cifar10_quick"
//! frequency: 100
//!
//! layer {
//!     input_height: 32
//!     input_width: 32
//!     num_inputs: 3
//!     num_outputs: 32
//!     conv: {
//!         kernel_size: 5
//!         pad: 2
//!         worker_factor: 3
//!     }
//! }
//! layer {
//!     pool: { type: Max dim: 3 stride: 2 }
//!     activation: Relu
//! }
//! ```
//!
//! Folding factors (`*_factor` keys) do not change the architecture the
//! flow builds — component sizing is the synthesizer's job here — so the
//! importer retains them as metadata instead of dropping them. Errors
//! carry `line N` locations. Layer names are generated per kind
//! (`conv1`, `pool1`, `relu1`, `fc1`, ...), matching the naming the
//! bundled [`pi_cnn::models`] constructors use.

use crate::Ctx;
use pi_cnn::{CnnError, ConvParams, FcParams, Layer, Network, PoolKind, PoolParams, Shape};

/// One engine config inside a `layer { ... }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoOp {
    Conv {
        kernel: u32,
        pad: u32,
        stride: u32,
    },
    Pool {
        kind: PoolKind,
        dim: u32,
        stride: u32,
    },
    Fc,
}

/// One declared layer block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoLayer {
    /// `(num_inputs, input_height, input_width)` — first block only.
    pub input: Option<(u32, u32, u32)>,
    pub num_outputs: Option<u32>,
    pub op: ProtoOp,
    /// `*_factor` keys, sorted, retained as metadata.
    pub folding: Vec<(String, u32)>,
    /// `activation: Relu` — appends a ReLU after the engine.
    pub relu: bool,
}

/// A parsed prototxt descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoModel {
    pub name: Option<String>,
    /// Header scalars in declaration order (nested header blocks are
    /// flattened to dotted keys: `default_precision.integer_bits`).
    pub header: Vec<(String, String)>,
    pub layers: Vec<ProtoLayer>,
}

fn err(line: usize, msg: impl Into<String>) -> CnnError {
    CnnError::Import {
        loc: format!("line {line}"),
        msg: msg.into(),
    }
}

/// Line-oriented token stream: `key:`, `value`, `{`, `}` with the line
/// number each token came from.
struct Tokens {
    toks: Vec<(usize, String)>,
    pos: usize,
}

impl Tokens {
    fn new(text: &str) -> Tokens {
        let mut toks = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("");
            // Make braces standalone tokens regardless of spacing.
            let spaced = line.replace('{', " { ").replace('}', " } ");
            for w in spaced.split_whitespace() {
                toks.push((i + 1, w.to_string()));
            }
        }
        Tokens { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&(usize, String)> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, String)> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(1)
    }

    fn expect(&mut self, want: &str) -> Result<usize, CnnError> {
        match self.next() {
            Some((l, t)) if t == want => Ok(l),
            Some((l, t)) => Err(err(l, format!("expected {want:?}, got {t:?}"))),
            None => Err(err(
                self.line(),
                format!("expected {want:?}, got end of file"),
            )),
        }
    }
}

fn parse_u32(line: usize, v: &str, key: &str) -> Result<u32, CnnError> {
    v.parse().map_err(|_| {
        err(
            line,
            format!("{key} expects a non-negative integer, got {v:?}"),
        )
    })
}

/// Parse descriptor text into the declared-form AST. Errors carry
/// `line N` locations.
pub fn parse_prototxt(text: &str) -> Result<ProtoModel, CnnError> {
    let mut t = Tokens::new(text);
    let mut model = ProtoModel {
        name: None,
        header: Vec::new(),
        layers: Vec::new(),
    };
    while let Some((line, tok)) = t.next() {
        if tok == "layer" {
            t.expect("{")?;
            model.layers.push(parse_layer(&mut t, line)?);
        } else if let Some(key) = tok.strip_suffix(':') {
            let key = key.to_string();
            match t.peek() {
                Some((_, open)) if open == "{" => {
                    // Nested header block — flatten to dotted keys.
                    t.next();
                    loop {
                        match t.next() {
                            Some((_, close)) if close == "}" => break,
                            Some((l, sub)) => {
                                let sub = sub.strip_suffix(':').ok_or_else(|| {
                                    err(l, format!("expected key: inside {key}, got {sub:?}"))
                                })?;
                                let (vl, val) = t
                                    .next()
                                    .ok_or_else(|| err(l, format!("{sub}: missing value")))?;
                                if val == "{" || val == "}" {
                                    return Err(err(vl, format!("{sub}: missing value")));
                                }
                                model.header.push((format!("{key}.{sub}"), val));
                            }
                            None => return Err(err(line, format!("unterminated {key} block"))),
                        }
                    }
                }
                _ => {
                    let (vl, val) = t
                        .next()
                        .ok_or_else(|| err(line, format!("{key}: missing value")))?;
                    if val == "{" || val == "}" {
                        return Err(err(vl, format!("{key}: missing value")));
                    }
                    if key == "name" {
                        model.name = Some(val.trim_matches('"').to_string());
                    } else {
                        model.header.push((key, val));
                    }
                }
            }
        } else {
            return Err(err(
                line,
                format!("expected `layer {{` or `key: value`, got {tok:?}"),
            ));
        }
    }
    Ok(model)
}

fn parse_layer(t: &mut Tokens, open_line: usize) -> Result<ProtoLayer, CnnError> {
    let mut input_height = None;
    let mut input_width = None;
    let mut num_inputs = None;
    let mut num_outputs = None;
    let mut op: Option<ProtoOp> = None;
    let mut folding: Vec<(String, u32)> = Vec::new();
    let mut relu = false;
    loop {
        match t.next() {
            Some((_, close)) if close == "}" => break,
            Some((line, tok)) => {
                let key = tok.strip_suffix(':').ok_or_else(|| {
                    err(line, format!("expected key: in layer block, got {tok:?}"))
                })?;
                match key {
                    "conv" | "pool" | "fc" => {
                        if op.is_some() {
                            return Err(err(line, "a layer block declares exactly one engine"));
                        }
                        t.expect("{")?;
                        op = Some(parse_engine(t, key, line, &mut folding)?);
                    }
                    "activation" => {
                        let (vl, val) = t
                            .next()
                            .ok_or_else(|| err(line, "activation: missing value"))?;
                        if val != "Relu" {
                            let hint = match crate::suggest(&val, &["Relu"]) {
                                Some(s) => format!(" (did you mean {s}?)"),
                                None => String::new(),
                            };
                            return Err(CnnError::Import {
                                loc: format!("line {vl}"),
                                msg: format!("unsupported activation {val:?}{hint}"),
                            });
                        }
                        relu = true;
                    }
                    "input_height" | "input_width" | "num_inputs" | "num_outputs" => {
                        let (vl, val) = t
                            .next()
                            .ok_or_else(|| err(line, format!("{key}: missing value")))?;
                        let n = parse_u32(vl, &val, key)?;
                        match key {
                            "input_height" => input_height = Some(n),
                            "input_width" => input_width = Some(n),
                            "num_inputs" => num_inputs = Some(n),
                            _ => num_outputs = Some(n),
                        }
                    }
                    other => {
                        let hint = match crate::suggest(
                            other,
                            &["conv", "pool", "fc", "activation", "num_outputs"],
                        ) {
                            Some(s) => format!(" (did you mean {s}?)"),
                            None => String::new(),
                        };
                        return Err(err(line, format!("unknown layer field {other:?}{hint}")));
                    }
                }
            }
            None => return Err(err(open_line, "unterminated layer block")),
        }
    }
    let input = match (num_inputs, input_height, input_width) {
        (Some(c), Some(h), Some(w)) => Some((c, h, w)),
        (None, None, None) => None,
        _ => {
            return Err(err(
                open_line,
                "input_height, input_width and num_inputs must appear together",
            ))
        }
    };
    folding.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok(ProtoLayer {
        input,
        num_outputs,
        op: op.ok_or_else(|| err(open_line, "layer block declares no conv/pool/fc engine"))?,
        folding,
        relu,
    })
}

fn parse_engine(
    t: &mut Tokens,
    kind: &str,
    open_line: usize,
    folding: &mut Vec<(String, u32)>,
) -> Result<ProtoOp, CnnError> {
    let mut kv: Vec<(usize, String, String)> = Vec::new();
    loop {
        match t.next() {
            Some((_, close)) if close == "}" => break,
            Some((line, tok)) => {
                let key = tok.strip_suffix(':').ok_or_else(|| {
                    err(line, format!("expected key: in {kind} block, got {tok:?}"))
                })?;
                let (vl, val) = t
                    .next()
                    .ok_or_else(|| err(line, format!("{key}: missing value")))?;
                kv.push((vl, key.to_string(), val));
            }
            None => return Err(err(open_line, format!("unterminated {kind} block"))),
        }
    }
    let get = |key: &str| -> Result<Option<u32>, CnnError> {
        match kv.iter().find(|(_, k, _)| k == key) {
            Some((l, k, v)) => parse_u32(*l, v, k).map(Some),
            None => Ok(None),
        }
    };
    let require = |v: Option<u32>, key: &str| {
        v.ok_or_else(|| err(open_line, format!("{kind} block is missing {key}:")))
    };
    // Folding factors ride along as metadata; the importer neither
    // drops nor interprets them.
    for (l, k, v) in &kv {
        if k.ends_with("_factor") {
            folding.push((k.clone(), parse_u32(*l, v, k)?));
        }
    }
    let known = |extra: &[&str]| -> Result<(), CnnError> {
        for (l, k, _) in &kv {
            if !k.ends_with("_factor") && !extra.contains(&k.as_str()) {
                return Err(err(*l, format!("unknown {kind} field {k:?}")));
            }
        }
        Ok(())
    };
    match kind {
        "conv" => {
            known(&["kernel_size", "pad", "stride"])?;
            Ok(ProtoOp::Conv {
                kernel: require(get("kernel_size")?, "kernel_size")?,
                pad: get("pad")?.unwrap_or(0),
                stride: get("stride")?.unwrap_or(1),
            })
        }
        "pool" => {
            known(&["type", "dim", "stride"])?;
            let kind = match kv.iter().find(|(_, k, _)| k == "type") {
                None => PoolKind::Max,
                Some((_, _, v)) if v == "Max" => PoolKind::Max,
                Some((_, _, v)) if v == "Average" => PoolKind::Average,
                Some((l, _, v)) => {
                    return Err(err(
                        *l,
                        format!("pool type must be Max or Average, got {v:?}"),
                    ))
                }
            };
            let dim = require(get("dim")?, "dim")?;
            Ok(ProtoOp::Pool {
                kind,
                dim,
                stride: get("stride")?.unwrap_or(dim),
            })
        }
        "fc" => {
            known(&[])?;
            Ok(ProtoOp::Fc)
        }
        _ => unreachable!("caller dispatches on conv/pool/fc"),
    }
}

/// Canonical writer: fixed field order, folding keys sorted, four-space
/// indent — `parse → render` is byte-stable.
pub fn render_prototxt(model: &ProtoModel) -> String {
    let mut out = String::new();
    if let Some(name) = &model.name {
        out.push_str(&format!("name: \"{name}\"\n"));
    }
    for (k, v) in &model.header {
        out.push_str(&format!("{k}: {v}\n"));
    }
    for layer in &model.layers {
        out.push_str("\nlayer {\n");
        if let Some((c, h, w)) = layer.input {
            out.push_str(&format!("    input_height: {h}\n"));
            out.push_str(&format!("    input_width: {w}\n"));
            out.push_str(&format!("    num_inputs: {c}\n"));
        }
        if let Some(n) = layer.num_outputs {
            out.push_str(&format!("    num_outputs: {n}\n"));
        }
        match &layer.op {
            ProtoOp::Conv {
                kernel,
                pad,
                stride,
            } => {
                out.push_str("    conv: {\n");
                out.push_str(&format!("        kernel_size: {kernel}\n"));
                out.push_str(&format!("        pad: {pad}\n"));
                out.push_str(&format!("        stride: {stride}\n"));
                for (k, v) in &layer.folding {
                    out.push_str(&format!("        {k}: {v}\n"));
                }
                out.push_str("    }\n");
            }
            ProtoOp::Pool { kind, dim, stride } => {
                out.push_str("    pool: {\n");
                out.push_str(&format!(
                    "        type: {}\n",
                    match kind {
                        PoolKind::Max => "Max",
                        PoolKind::Average => "Average",
                    }
                ));
                out.push_str(&format!("        dim: {dim}\n"));
                out.push_str(&format!("        stride: {stride}\n"));
                for (k, v) in &layer.folding {
                    out.push_str(&format!("        {k}: {v}\n"));
                }
                out.push_str("    }\n");
            }
            ProtoOp::Fc => {
                out.push_str("    fc: {\n");
                for (k, v) in &layer.folding {
                    out.push_str(&format!("        {k}: {v}\n"));
                }
                out.push_str("    }\n");
            }
        }
        if layer.relu {
            out.push_str("    activation: Relu\n");
        }
        out.push_str("}\n");
    }
    out
}

/// Lower the linear block list into a flow [`Network`]. Layer names are
/// generated per kind; folding factors and header knobs come back as
/// metadata.
pub(crate) fn to_network(
    model: &ProtoModel,
    ctx: &mut Ctx,
) -> Result<(Network, Vec<(String, String)>), CnnError> {
    let name = model.name.clone().unwrap_or_else(|| "model".to_string());
    let mut network = Network::new(&name);
    let mut metadata: Vec<(String, String)> = model
        .header
        .iter()
        .map(|(k, v)| (format!("header.{k}"), v.clone()))
        .collect();
    let mut counters = std::collections::HashMap::new();
    let mut fresh = |kind: &str| {
        let n = counters.entry(kind.to_string()).or_insert(0u32);
        *n += 1;
        format!("{kind}{n}")
    };
    if model.layers.is_empty() {
        return Err(ctx.fatal(
            crate::MODEL_MALFORMED,
            "line 1",
            "descriptor declares no layer blocks".to_string(),
        ));
    }
    for (i, layer) in model.layers.iter().enumerate() {
        let loc = format!("layer {}", i + 1);
        match (i, layer.input) {
            (0, Some((c, h, w))) => {
                network.push_layer("input", Layer::Input(Shape::new(c, h, w)));
            }
            (0, None) => {
                return Err(ctx.fatal(
                    crate::MODEL_MALFORMED,
                    loc.clone(),
                    "the first layer block must declare input_height/input_width/num_inputs"
                        .to_string(),
                ))
            }
            (_, Some(_)) => {
                return Err(ctx.fatal(
                    crate::MODEL_MALFORMED,
                    loc.clone(),
                    "only the first layer block declares the input".to_string(),
                ))
            }
            _ => {}
        }
        let lname = match &layer.op {
            ProtoOp::Conv {
                kernel,
                pad,
                stride,
            } => {
                let out = layer.num_outputs.ok_or_else(|| {
                    ctx.fatal(
                        crate::MODEL_MALFORMED,
                        loc.clone(),
                        "conv layer is missing num_outputs".to_string(),
                    )
                })?;
                let n = fresh("conv");
                network.push_layer(
                    &n,
                    Layer::Conv(ConvParams {
                        kernel: *kernel,
                        stride: *stride,
                        padding: *pad,
                        out_channels: out,
                    }),
                );
                n
            }
            ProtoOp::Pool { kind, dim, stride } => {
                let n = fresh("pool");
                network.push_layer(
                    &n,
                    Layer::Pool(PoolParams {
                        window: *dim,
                        stride: *stride,
                        kind: *kind,
                    }),
                );
                n
            }
            ProtoOp::Fc => {
                let out = layer.num_outputs.ok_or_else(|| {
                    ctx.fatal(
                        crate::MODEL_MALFORMED,
                        loc.clone(),
                        "fc layer is missing num_outputs".to_string(),
                    )
                })?;
                let n = fresh("fc");
                network.push_layer(&n, Layer::Fc(FcParams { out_features: out }));
                n
            }
        };
        if layer.relu {
            network.push_layer(fresh("relu"), Layer::Relu);
        }
        for (k, v) in &layer.folding {
            metadata.push((format!("{lname}.{k}"), v.to_string()));
        }
    }
    Ok((network, metadata))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelFormat;

    const CIFAR: &str = r#"
name: "cifar10_quick"
frequency: 100
default_precision: {
    integer_bits: 8
    fractional_bits: 8
}

layer {
    input_height: 32
    input_width: 32
    num_inputs: 3
    num_outputs: 32
    conv: {
        kernel_size: 5
        pad: 2
        worker_factor: 3
    }
}
layer {
    pool: { type: Max dim: 3 stride: 2 }
    activation: Relu
}
"#;

    #[test]
    fn parses_the_snippet_dialect() {
        let model = parse_prototxt(CIFAR).unwrap();
        assert_eq!(model.name.as_deref(), Some("cifar10_quick"));
        assert_eq!(model.layers.len(), 2);
        assert!(model
            .header
            .iter()
            .any(|(k, v)| k == "default_precision.integer_bits" && v == "8"));
        let imp = crate::import(CIFAR, ModelFormat::Prototxt).unwrap();
        let names: Vec<&str> = imp
            .network
            .nodes()
            .iter()
            .map(|n| n.name.as_str())
            .collect();
        assert_eq!(names, ["input", "conv1", "pool1", "relu1"]);
        assert!(imp
            .metadata
            .iter()
            .any(|(k, v)| k == "conv1.worker_factor" && v == "3"));
    }

    #[test]
    fn rendering_is_parse_stable() {
        let model = parse_prototxt(CIFAR).unwrap();
        let text = render_prototxt(&model);
        let back = parse_prototxt(&text).unwrap();
        assert_eq!(back, model);
        assert_eq!(render_prototxt(&back), text);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "layer {\n    conv: {\n        kernel_size: five\n    }\n}\n";
        let e = parse_prototxt(bad).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");

        let unknown = "layer {\n    pool: { type: Median dim: 2 }\n}\n";
        let e = parse_prototxt(unknown).unwrap_err();
        assert!(
            e.to_string().contains("line 2") && e.to_string().contains("Median"),
            "{e}"
        );

        let typo = "layer {\n    convolution: { kernel_size: 3 }\n}\n";
        let e = parse_prototxt(typo).unwrap_err();
        assert!(e.to_string().contains("did you mean conv"), "{e}");
    }

    #[test]
    fn missing_input_block_is_fatal_with_code() {
        let text = "layer {\n    num_outputs: 4\n    conv: { kernel_size: 3 }\n}\n";
        let (net, findings) = crate::import_lenient(text, ModelFormat::Prototxt);
        assert!(net.is_none());
        assert_eq!(findings.last().unwrap().code, crate::MODEL_MALFORMED);
    }
}
