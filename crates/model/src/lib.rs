//! Model ingestion frontend: parse external CNN descriptors into
//! [`pi_cnn::Network`]s the pre-implemented flow can consume.
//!
//! Two descriptor dialects are supported next to the repo's own archdef
//! text (paper §IV-B1):
//!
//! * **ONNX-style JSON op graphs** ([`json`]) — a named node list with
//!   explicit edges, the subset of ONNX operators CNN streaming
//!   accelerators use (`Conv`, `BatchNormalization`, `MaxPool`,
//!   `AveragePool`, `GlobalAveragePool`, `Gemm`, `Relu`, `Add`, `Mul`,
//!   `Flatten`). Non-linear topologies (ResNet skips, branches) are first
//!   class: a node lists any earlier nodes as inputs.
//! * **prototxt layer configs** ([`prototxt`]) — the fpgaConvNet-style
//!   per-layer block format (`layer { conv: { ... } activation: Relu }`)
//!   with folding factors, which the importer retains as metadata.
//!
//! Importing normalizes the descriptor into the flow's layer vocabulary:
//! `BatchNormalization` folds into the adjacent convolution (it is an
//! affine per-channel transform the conv weights absorb offline),
//! `Flatten` dissolves into a rewire (the streaming data layout has no
//! materialized flatten), and `GlobalAveragePool` resolves to an average
//! pool spanning the propagated input window. Anything the flow cannot
//! express is reported as an [`ImportFinding`] with a stable `PL015x`
//! code so `pi-lint` can render it alongside the graph lints.

pub mod json;
pub mod prototxt;

use pi_cnn::{CnnError, Network};
use std::path::Path;

/// Unsupported operator (with a nearest-supported suggestion).
pub const UNSUPPORTED_OP: &str = "PL0150";
/// A `BatchNormalization` that cannot fold into a producing convolution.
pub const UNFOLDABLE_BATCHNORM: &str = "PL0151";
/// An element-wise join whose operand channel counts disagree.
pub const JOIN_CHANNEL_MISMATCH: &str = "PL0152";
/// Any other malformed-descriptor defect (syntax, dangling edge,
/// missing attribute, duplicate name).
pub const MODEL_MALFORMED: &str = "PL0153";

/// Which descriptor dialect a file speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFormat {
    /// The repo's own archdef text (`network` / `conv` / ... directives).
    Archdef,
    /// ONNX-style JSON op graph.
    Json,
    /// fpgaConvNet-style prototxt layer blocks.
    Prototxt,
}

impl ModelFormat {
    /// Infer the dialect from a file extension. `.json` → JSON graph,
    /// `.prototxt`/`.pbtxt` → prototxt, `.cnn`/`.archdef`/`.txt` →
    /// archdef.
    pub fn from_path(path: impl AsRef<Path>) -> Option<ModelFormat> {
        match path.as_ref().extension()?.to_str()? {
            "json" => Some(ModelFormat::Json),
            "prototxt" | "pbtxt" => Some(ModelFormat::Prototxt),
            "cnn" | "archdef" | "txt" => Some(ModelFormat::Archdef),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ModelFormat::Archdef => "archdef",
            ModelFormat::Json => "json",
            ModelFormat::Prototxt => "prototxt",
        }
    }

    pub fn parse(s: &str) -> Option<ModelFormat> {
        match s {
            "archdef" => Some(ModelFormat::Archdef),
            "json" => Some(ModelFormat::Json),
            "prototxt" => Some(ModelFormat::Prototxt),
            _ => None,
        }
    }
}

/// One importer finding: a normalization the user should know about or
/// (for the fatal ones) the reason the import stopped. `code` is always
/// a registered `pi-lint` code so findings render as diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportFinding {
    /// Stable lint code (`PL0150`–`PL0153`, or a `PL02xx` graph code for
    /// structural defects the graph passes also know about).
    pub code: &'static str,
    /// Where in the descriptor: a field path (`nodes[3].attrs.kernel`)
    /// or `line N`.
    pub origin: String,
    pub message: String,
}

/// A successful import: the normalized network, the non-fatal findings
/// the normalization produced, and descriptor metadata the flow has no
/// field for (prototxt folding factors, header knobs).
#[derive(Debug, Clone)]
pub struct Import {
    pub network: Network,
    pub findings: Vec<ImportFinding>,
    /// `(key, value)` pairs, e.g. `("layer1.conv.worker_factor", "3")`.
    pub metadata: Vec<(String, String)>,
}

/// Import context threaded through the format frontends: accumulates
/// findings, and stamps fatal defects with their lint code before
/// surfacing them as [`CnnError::Import`].
#[derive(Debug, Default)]
pub(crate) struct Ctx {
    pub findings: Vec<ImportFinding>,
}

impl Ctx {
    pub fn warn(&mut self, code: &'static str, origin: impl Into<String>, msg: impl Into<String>) {
        self.findings.push(ImportFinding {
            code,
            origin: origin.into(),
            message: msg.into(),
        });
    }

    /// Record a fatal finding and build the error that carries it out.
    pub fn fatal(
        &mut self,
        code: &'static str,
        loc: impl Into<String>,
        msg: impl Into<String>,
    ) -> CnnError {
        let loc = loc.into();
        let msg = msg.into();
        self.findings.push(ImportFinding {
            code,
            origin: loc.clone(),
            message: msg.clone(),
        });
        CnnError::Import { loc, msg }
    }
}

/// Strict import: parse, normalize, propagate shapes, and validate. The
/// returned network has passed the same structural/geometric checks
/// `parse_archdef` applies, so it can enter the flow directly. Non-fatal
/// normalization findings ride along in [`Import::findings`].
pub fn import(text: &str, format: ModelFormat) -> Result<Import, CnnError> {
    let mut ctx = Ctx::default();
    let result = import_inner(text, format, &mut ctx);
    result.map(|(network, metadata)| Import {
        network,
        findings: ctx.findings,
        metadata,
    })
}

/// Lenient import for the linter: never errors. On failure the fatal
/// defect is the last finding; the network slot is `None`. On success
/// the network comes back *without* eager validation so the graph lints
/// can report every defect themselves.
pub fn import_lenient(text: &str, format: ModelFormat) -> (Option<Import>, Vec<ImportFinding>) {
    let mut ctx = Ctx::default();
    match import_inner(text, format, &mut ctx) {
        Ok((network, metadata)) => {
            let findings = ctx.findings.clone();
            (
                Some(Import {
                    network,
                    findings: ctx.findings,
                    metadata,
                }),
                findings,
            )
        }
        Err(e) => {
            // Frontends stamp their own fatal findings; errors that
            // bubbled up from pi-cnn validation arrive unstamped.
            if ctx.findings.is_empty() {
                ctx.warn(MODEL_MALFORMED, "model", e.to_string());
            }
            (None, ctx.findings)
        }
    }
}

/// Read and import a descriptor file, inferring the dialect from its
/// extension (unknown extensions parse as JSON).
pub fn import_path(path: impl AsRef<Path>) -> Result<Import, CnnError> {
    let path = path.as_ref();
    let format = ModelFormat::from_path(path).unwrap_or(ModelFormat::Json);
    let text = std::fs::read_to_string(path).map_err(|e| CnnError::Import {
        loc: path.display().to_string(),
        msg: e.to_string(),
    })?;
    import(&text, format)
}

fn import_inner(
    text: &str,
    format: ModelFormat,
    ctx: &mut Ctx,
) -> Result<(Network, Vec<(String, String)>), CnnError> {
    let (network, metadata) = match format {
        ModelFormat::Archdef => (pi_cnn::parse_archdef(text)?, Vec::new()),
        ModelFormat::Json => {
            let model = json::parse_json(text)?;
            json::to_network(&model, ctx)?
        }
        ModelFormat::Prototxt => {
            let model = prototxt::parse_prototxt(text)?;
            prototxt::to_network(&model, ctx)?
        }
    };
    // The pi-lint shape-propagation gate: structural validation plus a
    // full shape walk, before the network may enter the flow.
    network.validate()?;
    network.input_shapes()?;
    Ok((network, metadata))
}

/// Edit distance (Levenshtein) for the "did you mean" suggestions on
/// unknown operators.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The nearest supported spelling for an unknown operator, matched
/// case-insensitively so `CONV`/`conv` still suggest `Conv`.
pub(crate) fn suggest<'a>(unknown: &str, supported: &[&'a str]) -> Option<&'a str> {
    let lower = unknown.to_lowercase();
    supported
        .iter()
        .map(|s| {
            let cand = s.to_lowercase();
            // A prefix relation (`Convolution`/`Conv`, `relu6`/`Relu`) is
            // a better signal than raw edit distance.
            let d = if lower.starts_with(&cand) || cand.starts_with(&lower) {
                0
            } else {
                edit_distance(&lower, &cand)
            };
            (d, *s)
        })
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 2)
        .map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection_follows_extension() {
        assert_eq!(
            ModelFormat::from_path("models/lenet.json"),
            Some(ModelFormat::Json)
        );
        assert_eq!(
            ModelFormat::from_path("m/cifar10_quick.prototxt"),
            Some(ModelFormat::Prototxt)
        );
        assert_eq!(
            ModelFormat::from_path("nets/lenet.cnn"),
            Some(ModelFormat::Archdef)
        );
        assert_eq!(ModelFormat::from_path("weights.bin"), None);
        assert_eq!(ModelFormat::from_path("noext"), None);
    }

    #[test]
    fn suggestions_pick_the_nearest_op() {
        let ops = ["Conv", "MaxPool", "AveragePool", "Gemm", "Relu"];
        assert_eq!(suggest("Convolution", &ops), Some("Conv"));
        assert_eq!(suggest("relu6", &ops), Some("Relu"));
        assert_eq!(suggest("MaxPooling", &ops), Some("MaxPool"));
        assert_eq!(suggest("Transformer", &ops), None);
    }

    #[test]
    fn archdef_passthrough_imports() {
        let text = "network t\ninput 1x8x8\nconv c kernel=3 pad=1 out=4\nfc f out=10\n";
        let imp = import(text, ModelFormat::Archdef).unwrap();
        assert_eq!(imp.network.nodes().len(), 3);
        assert!(imp.findings.is_empty());
    }
}
