//! Latency modeling and flow-vs-flow comparison — the numbers every table
//! and figure of the evaluation prints.

use crate::FlowError;
use pi_cnn::cycles;
use pi_cnn::graph::{Granularity, Network};
use pi_netlist::Module;
use pi_stitch::ComponentDb;
use pi_synth::component::component_dsp_estimate;
use serde::Serialize;
use std::time::Duration;

/// Latency of one component at the system clock.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentLatency {
    pub name: String,
    /// Pipeline fill depth, cycles.
    pub depth_cycles: u64,
    /// Cycles to stream one frame through this component's engines.
    pub frame_cycles: u64,
    /// MAC units serving this component.
    pub dsps: u64,
}

/// The latency model outputs for a full accelerator.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyReport {
    pub per_component: Vec<ComponentLatency>,
    /// Σ pipeline depths — the Table III "latency" figure.
    pub pipeline_cycles: u64,
    pub pipeline_ns: f64,
    /// Frame latency of the streaming pipeline: the bottleneck stage plus
    /// the fill — the Fig. 7 / Table IV figure.
    pub frame_cycles: u64,
    pub frame_ms: f64,
    /// Clock everything runs at.
    pub fmax_mhz: f64,
}

impl LatencyReport {
    fn build(
        network: &Network,
        granularity: Granularity,
        fmax_mhz: f64,
        extra_pipeline_cycles: u64,
        dsps_of: impl Fn(&str, usize) -> u64,
    ) -> Result<LatencyReport, FlowError> {
        let components = network.components(granularity)?;
        let mut per_component = Vec::with_capacity(components.len());
        for (i, comp) in components.iter().enumerate() {
            let depth = cycles::component_pipeline_depth(network, comp)?;
            let macs = cycles::component_macs(network, comp)?;
            let elements = comp.output_shape.elements();
            let dsps = dsps_of(&comp.signature(network), i);
            per_component.push(ComponentLatency {
                name: comp.name.clone(),
                depth_cycles: depth,
                frame_cycles: cycles::frame_cycles(macs, elements, dsps),
                dsps,
            });
        }
        let pipeline_cycles: u64 =
            per_component.iter().map(|c| c.depth_cycles).sum::<u64>() + extra_pipeline_cycles;
        let bottleneck = per_component
            .iter()
            .map(|c| c.frame_cycles)
            .max()
            .unwrap_or(0);
        let frame_cycles = bottleneck + pipeline_cycles;
        Ok(LatencyReport {
            per_component,
            pipeline_cycles,
            pipeline_ns: cycles::latency_ns(pipeline_cycles, fmax_mhz),
            frame_cycles,
            frame_ms: cycles::latency_ms(frame_cycles, fmax_mhz),
            fmax_mhz,
        })
    }

    /// Latency of an assembled design: engine widths come from the
    /// checkpoints actually used.
    pub fn for_assembled(
        network: &Network,
        granularity: Granularity,
        db: &ComponentDb,
        fmax_mhz: f64,
        extra_pipeline_cycles: u64,
    ) -> Result<LatencyReport, FlowError> {
        Self::build(
            network,
            granularity,
            fmax_mhz,
            extra_pipeline_cycles,
            |sig, _| db.get(sig).map(|cp| cp.meta.resources.dsps).unwrap_or(1),
        )
    }

    /// Latency of the monolithic design: same engines (the generators are
    /// shared), so the analytic estimate applies; the flat module's total
    /// DSP count cross-checks it.
    pub fn for_monolithic(
        network: &Network,
        granularity: Granularity,
        _module: &Module,
        fmax_mhz: f64,
    ) -> Result<LatencyReport, FlowError> {
        let components = network.components(granularity)?;
        let estimates: Vec<u64> = components
            .iter()
            .map(|c| component_dsp_estimate(network, c))
            .collect::<Result<_, _>>()?;
        Self::build(network, granularity, fmax_mhz, 0, |_, i| estimates[i])
    }
}

/// Side-by-side comparison of the two flows on the same network — the
/// digest Table II / Fig. 6 / Table III-level summaries are printed from.
#[derive(Debug, Clone, Serialize)]
pub struct FlowComparison {
    pub network: String,
    pub baseline_fmax_mhz: f64,
    pub preimpl_fmax_mhz: f64,
    pub fmax_ratio: f64,
    pub baseline_time_s: f64,
    pub preimpl_time_s: f64,
    /// The paper's headline: 1 − preimpl/baseline.
    pub productivity_gain: f64,
    pub baseline_latency_ms: f64,
    pub preimpl_latency_ms: f64,
    pub baseline_power_mw: f64,
    pub preimpl_power_mw: f64,
}

/// Clock at which the two flows' power is compared. Comparing each design
/// at its own Fmax would charge the faster design for its headroom; the
/// paper's "lower power" claim is about the same function at the same rate,
/// which is what a fixed operating clock captures.
pub const POWER_COMPARISON_MHZ: f64 = 200.0;

impl FlowComparison {
    pub fn new(
        network: &str,
        baseline: &crate::baseline::BaselineReport,
        preimpl: &crate::arch_opt::PreImplReport,
    ) -> FlowComparison {
        let bt = baseline.total_time();
        let pt = preimpl.total_time();
        let power_at = |report: &pi_pnr::CompileReport| {
            pi_pnr::power::estimate(
                &report.resources,
                report.total_wirelength,
                POWER_COMPARISON_MHZ,
            )
            .total_mw()
        };
        FlowComparison {
            network: network.to_string(),
            baseline_fmax_mhz: baseline.compile.timing.fmax_mhz,
            preimpl_fmax_mhz: preimpl.compile.timing.fmax_mhz,
            fmax_ratio: preimpl.compile.timing.fmax_mhz / baseline.compile.timing.fmax_mhz,
            baseline_time_s: bt.as_secs_f64(),
            preimpl_time_s: pt.as_secs_f64(),
            productivity_gain: productivity_gain(bt, pt),
            baseline_latency_ms: baseline.latency.frame_ms,
            preimpl_latency_ms: preimpl.latency.frame_ms,
            baseline_power_mw: power_at(&baseline.compile),
            preimpl_power_mw: power_at(&preimpl.compile),
        }
    }
}

/// Productivity improvement, as the paper quotes it (69 % for LeNet).
pub fn productivity_gain(baseline: Duration, preimpl: Duration) -> f64 {
    let b = baseline.as_secs_f64();
    if b == 0.0 {
        return 0.0;
    }
    1.0 - preimpl.as_secs_f64() / b
}

impl std::fmt::Display for FlowComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "network: {}", self.network)?;
        writeln!(
            f,
            "  Fmax       baseline {:7.1} MHz | pre-impl {:7.1} MHz ({:.2}x)",
            self.baseline_fmax_mhz, self.preimpl_fmax_mhz, self.fmax_ratio
        )?;
        writeln!(
            f,
            "  gen time   baseline {:7.2} s   | pre-impl {:7.2} s   ({:.0}% productivity gain)",
            self.baseline_time_s,
            self.preimpl_time_s,
            self.productivity_gain * 100.0
        )?;
        writeln!(
            f,
            "  latency    baseline {:7.2} ms  | pre-impl {:7.2} ms",
            self.baseline_latency_ms, self.preimpl_latency_ms
        )?;
        write!(
            f,
            "  power      baseline {:7.0} mW  | pre-impl {:7.0} mW",
            self.baseline_power_mw, self.preimpl_power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn productivity_gain_matches_definition() {
        let g = productivity_gain(Duration::from_secs(100), Duration::from_secs(31));
        assert!((g - 0.69).abs() < 1e-9);
        assert_eq!(
            productivity_gain(Duration::ZERO, Duration::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn monolithic_latency_for_lenet() {
        let network = pi_cnn::models::lenet5();
        let m = pi_synth::synth_network_flat(
            &network,
            Granularity::Layer,
            &pi_synth::SynthOptions::lenet_like(),
        )
        .unwrap();
        let r = LatencyReport::for_monolithic(&network, Granularity::Layer, &m, 400.0).unwrap();
        assert_eq!(r.per_component.len(), 6);
        // Pipeline latency in the hundreds-of-ns band of Table III.
        assert!(
            (100.0..2000.0).contains(&r.pipeline_ns),
            "pipeline {} ns",
            r.pipeline_ns
        );
        // Frame latency well under a millisecond for LeNet.
        assert!(r.frame_ms < 5.0);
    }

    #[test]
    fn vgg_frame_latency_in_paper_band() {
        let network = pi_cnn::models::vgg16();
        let m = pi_synth::synth_network_flat(
            &network,
            Granularity::Block,
            &pi_synth::SynthOptions::vgg_like(),
        )
        .unwrap();
        let r = LatencyReport::for_monolithic(&network, Granularity::Block, &m, 200.0).unwrap();
        // Paper Fig. 7: baseline VGG 55 ms at 200 MHz. Same order here.
        assert!(
            (20.0..150.0).contains(&r.frame_ms),
            "frame {} ms",
            r.frame_ms
        );
    }
}
