//! Function optimization: pre-implement every component once, as well as it
//! will go, and save the result.
//!
//! Per component (paper §IV-A):
//! * **granularity** comes from the network's fusion rule (conv / pool+relu
//!   / fc, or conv blocks for VGG),
//! * **strategic floorplanning**: [`size_pblock`] picks the smallest column
//!   group × row span whose capacity covers the component at the requested
//!   utilization — small pblocks maximize relocatability,
//! * **performance exploration**: a seed sweep over placement (rayon-
//!   parallel), keeping the best-Fmax implementation, stopping early when a
//!   target is met,
//! * **strategic port planning**: [`plan_partpins`] commits each port to a
//!   boundary interconnect tile next to the logic it feeds,
//! * **clock routing**: the checkpoint records a partially routed clock so
//!   OOC timing analysis is meaningful,
//! * **logic locking**: placement and routing are frozen before the DCP is
//!   written to the database.

use crate::config::FlowConfig;
use crate::FlowError;
use pi_cnn::graph::{Component, Granularity, Network};
use pi_fabric::{Device, Pblock, ResourceCount, TileCoord};
use pi_netlist::{Checkpoint, CheckpointMeta, Endpoint, Module};
use pi_obs::Obs;
use pi_pnr::{place_module_obs, route_module_obs, sta_module, PlaceOptions, RouteOptions};
use pi_stitch::{cache_key, CacheLookup, ComponentDb, DbCache};
use pi_synth::{synth_component, SynthOptions};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// One seed's evaluation result paired with the telemetry it buffered.
type BufferedEval = (Result<(f64, Module), FlowError>, pi_obs::BufferedObs);

/// Options for the function-optimization phase.
#[derive(Debug, Clone)]
pub struct FunctionOptOptions {
    pub synth: SynthOptions,
    pub granularity: Granularity,
    /// Placement seeds to explore per component (the DSE axis).
    pub seeds: Vec<u64>,
    /// Stop the sweep once a component reaches this Fmax.
    pub target_fmax_mhz: Option<f64>,
    /// Fraction of pblock capacity the component may use (paper: tight
    /// pblocks force area optimization; <1.0 leaves routing slack).
    pub pblock_utilization: f64,
    /// Placement effort multiplier (components are small; effort is cheap).
    pub effort: f64,
    /// Disable partition-pin planning (ablation A1: the paper warns this
    /// costs performance and productivity).
    pub plan_partpins: bool,
    pub route: RouteOptions,
}

impl Default for FunctionOptOptions {
    fn default() -> Self {
        FunctionOptOptions {
            synth: SynthOptions::default(),
            granularity: Granularity::Layer,
            seeds: vec![1, 2, 3],
            target_fmax_mhz: None,
            pblock_utilization: 0.7,
            effort: 2.0,
            plan_partpins: true,
            route: RouteOptions::default(),
        }
    }
}

/// Per-component report from the build.
#[derive(Debug, Clone)]
pub struct ComponentBuildReport {
    pub name: String,
    pub signature: String,
    pub fmax_mhz: f64,
    pub resources: ResourceCount,
    pub pblock: Pblock,
    pub seeds_tried: usize,
    pub latency_cycles: u64,
    pub build_time: Duration,
}

/// Size the smallest pblock (anchored just right of the left I/O column)
/// whose capacity covers `need` at the requested utilization. Grows in
/// whole column groups (the device's repeating template) horizontally and
/// rows vertically — whole-group widths keep the pblock maximally
/// relocatable.
pub fn size_pblock(
    need: &ResourceCount,
    device: &Device,
    utilization: f64,
) -> Result<Pblock, FlowError> {
    // Column group width on our devices: 16 columns (7 CLB + DSP + 7 CLB +
    // BRAM), starting at column 1.
    const GROUP: u16 = 16;
    let max_groups = (device.cols() - 1) / GROUP;
    // Widths that stay within one contiguous fabric region (no I/O column
    // crossing) keep the component relocatable; wider is a last resort.
    let mut groups_in_region = 0u16;
    for g in 0..max_groups {
        let span_end = 1 + (g + 1) * GROUP - 1;
        let crosses = (1..=span_end).any(|c| {
            device
                .column_kind(c)
                .map(|k| k.is_discontinuity())
                .unwrap_or(true)
        });
        if crosses {
            break;
        }
        groups_in_region = g + 1;
    }
    let groups_in_region = groups_in_region.max(1);
    // Cap pblock height at half the device: flatter pblocks tile the chip in
    // halves, which is what lets an 80%-full VGG pack its rigid components.
    let height_cap = (device.rows() / 2).max(8);
    // On a nearly full device the requested headroom may be unpackable:
    // tighten utilization progressively before giving up, like a
    // floorplanner under pressure.
    let base_util = utilization.clamp(0.05, 1.0);
    let mut utils = vec![base_util];
    for u in [0.85, 0.95, 1.0] {
        if u > base_util {
            utils.push(u);
        }
    }
    // Shape preference dominates utilization: a tighter half-height pblock
    // packs, a sprawling full-height one fragments the chip.
    for (cap_rows, group_cap) in [
        (height_cap, groups_in_region),
        (device.rows(), groups_in_region),
        (device.rows(), max_groups),
    ] {
        for &util in &utils {
            let scaled = need.scale_ceil((100.0 / util) as u64, 100);
            // Wide-flat shapes first: components then stack like shelves,
            // which is what makes an 80%-full assembled design packable.
            for groups in (1..=group_cap).rev() {
                let col_hi = 1 + groups * GROUP - 1;
                // Find the minimal height for this width.
                let mut rows = 8u16;
                while rows <= cap_rows {
                    let pb = Pblock::new(1, col_hi, 0, rows - 1);
                    let cap = device.pblock_capacity(&pb)?;
                    if scaled.fits_in(&cap) {
                        return Ok(pb);
                    }
                    rows += 8;
                }
            }
        }
    }
    Err(FlowError::ComponentUnsatisfiable {
        component: "<pblock sizing>".to_string(),
        reason: format!(
            "demand {need:?} exceeds device capacity {:?}",
            device.totals()
        ),
    })
}

/// Strategic port planning: put each port's partition pin on the pblock
/// boundary tile nearest the centroid of the cells it connects to. Badly
/// planned ports (the ablation's alternative) land wherever, and the
/// stitched design pays in boundary wire length.
pub fn plan_partpins(module: &mut Module, pblock: &Pblock) -> Result<(), FlowError> {
    // Centroid of connected placed cells, per port.
    let mut targets: Vec<Option<TileCoord>> = vec![None; module.ports().len()];
    for (pi, _) in module.ports().iter().enumerate() {
        let mut sum = (0u64, 0u64);
        let mut n = 0u64;
        for net in module.nets() {
            let touches = net
                .endpoints()
                .any(|e| matches!(e, Endpoint::Port(p) if p.index() == pi));
            if !touches {
                continue;
            }
            for e in net.endpoints() {
                if let Endpoint::Cell(c) = e {
                    if let Some(at) = module.cells()[c.index()].placement {
                        sum.0 += u64::from(at.col);
                        sum.1 += u64::from(at.row);
                        n += 1;
                    }
                }
            }
        }
        if let (Some(c), Some(r)) = (sum.0.checked_div(n), sum.1.checked_div(n)) {
            targets[pi] = Some(TileCoord::new(c as u16, r as u16));
        }
    }
    let ports = module.ports_mut()?;
    for (pi, port) in ports.iter_mut().enumerate() {
        let centroid = targets[pi].unwrap_or_else(|| pblock.center());
        // Streaming convention: data and control *enter* through the bottom
        // edge and *leave* through the top edge, at the column nearest the
        // logic they feed. Components stacked in schedule order then connect
        // across short boundary wires — this is what "strategic port
        // planning" buys, and the un-planned ablation shows what it costs.
        let col = centroid.col.clamp(pblock.col_lo, pblock.col_hi);
        let row = match port.role {
            pi_netlist::StreamRole::Sink => pblock.row_hi,
            _ => pblock.row_lo,
        };
        port.partpin = Some(TileCoord::new(col, row));
    }
    Ok(())
}

/// The un-planned alternative (ablation A1): the OOC tool placed the ports
/// "anywhere in the p-block" (paper §IV-A) — modeled as a deterministic
/// hash-scatter over the pblock interior. The stitched design then pays for
/// boundary wires that start deep inside the components.
pub fn scatter_partpins(module: &mut Module, pblock: &Pblock) -> Result<(), FlowError> {
    let ports = module.ports_mut()?;
    for (pi, port) in ports.iter_mut().enumerate() {
        // FNV-ish hash of the port name + index for a stable pseudo-random
        // interior position.
        let mut h = 0xcbf29ce484222325u64;
        for b in port.name.bytes().chain([pi as u8]) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        let col = pblock.col_lo + (h % u64::from(pblock.width())) as u16;
        let row = pblock.row_lo + ((h >> 32) % u64::from(pblock.height())) as u16;
        port.partpin = Some(pi_fabric::TileCoord::new(col, row));
    }
    Ok(())
}

/// Pre-implement one component: synthesize OOC, size a pblock, sweep
/// placement seeds, plan ports, route, lock, and wrap as a checkpoint.
pub fn build_component(
    network: &Network,
    component: &Component,
    device: &Device,
    opts: &FunctionOptOptions,
) -> Result<(Checkpoint, ComponentBuildReport), FlowError> {
    build_component_obs(network, component, device, opts, &Obs::null())
}

/// [`build_component`] with telemetry: the DSE sweep reports each seed's
/// outcome (`flow::function_opt` / `dse_seed`) and the accepted
/// implementation (`component_built`); the engines below report under
/// `pnr::place` / `pnr::route`.
pub fn build_component_obs(
    network: &Network,
    component: &Component,
    device: &Device,
    opts: &FunctionOptOptions,
    obs: &Obs,
) -> Result<(Checkpoint, ComponentBuildReport), FlowError> {
    let dse = obs.scoped("flow::function_opt");
    let t0 = Instant::now();
    let proto = synth_component(network, component, &opts.synth)?;
    let need = proto.resources();
    let pblock = size_pblock(&need, device, opts.pblock_utilization)?;

    // Performance exploration: independent placements per seed, best Fmax
    // wins. Each evaluation is deterministic in its seed. The closure only
    // emits through the telemetry handle it is *given* — in the parallel
    // sweep that is a per-seed buffer, so the stream stays deterministic
    // at every thread count.
    let evaluate = |s: u64, obs: &Obs| -> Result<(f64, Module), FlowError> {
        let mut m = proto.clone();
        m.pblock = Some(pblock);
        // Partition pins act as fixed anchors during placement: planning
        // them *first* pulls each interface's logic toward its pblock edge,
        // so the boundary paths the stitched design will pay for stay
        // short. A refinement pass afterwards snaps the pin columns to the
        // placed logic.
        if opts.plan_partpins {
            plan_partpins(&mut m, &pblock)?;
        } else {
            scatter_partpins(&mut m, &pblock)?;
        }
        place_module_obs(
            &mut m,
            device,
            &PlaceOptions {
                seed: s,
                effort: opts.effort,
                region: Some(pblock),
            },
            obs,
        )?;
        if opts.plan_partpins {
            plan_partpins(&mut m, &pblock)?;
        }
        let (_, congestion) = route_module_obs(&mut m, device, &opts.route, &obs.with_seed(s))?;
        let timing = sta_module(&m, device, Some(&congestion))?;
        let dse = obs.scoped("flow::function_opt");
        if dse.enabled() {
            dse.with_seed(s).point(
                "dse_seed",
                &[
                    ("component", component.name.as_str().into()),
                    ("seed", s.into()),
                    ("fmax_mhz", timing.fmax_mhz.into()),
                ],
            );
        }
        Ok((timing.fmax_mhz, m))
    };

    let mut best: Option<(f64, Module)> = None;
    let mut seeds_tried = 0usize;
    if opts.target_fmax_mhz.is_none() {
        // No target: sweep every seed, embarrassingly parallel. Each seed
        // buffers its telemetry; the buffers flush in seed index order
        // after the join, so the stream is identical at any PI_THREADS.
        let items: Vec<(u64, pi_obs::BufferedObs)> =
            opts.seeds.iter().map(|&s| (s, obs.buffered())).collect();
        let evaluated: Vec<BufferedEval> = items
            .into_par_iter()
            .map(|(s, buf)| {
                let r = evaluate(s, buf.obs());
                (r, buf)
            })
            .collect();
        let mut candidates: Vec<Result<(f64, Module), FlowError>> =
            Vec::with_capacity(evaluated.len());
        for (r, buf) in evaluated {
            buf.flush_into(obs);
            candidates.push(r);
        }
        let candidates: Vec<(f64, Module)> = candidates.into_iter().collect::<Result<_, _>>()?;
        seeds_tried = opts.seeds.len();
        for (fmax, m) in candidates {
            if best.as_ref().map(|(b, _)| fmax > *b).unwrap_or(true) {
                best = Some((fmax, m));
            }
        }
    } else {
        // Targeted: evaluate sequentially and stop as soon as it is met.
        for &seed in &opts.seeds {
            seeds_tried += 1;
            let (fmax, m) = evaluate(seed, obs)?;
            if best.as_ref().map(|(b, _)| fmax > *b).unwrap_or(true) {
                best = Some((fmax, m));
            }
            if let (Some(target), Some((got, _))) = (opts.target_fmax_mhz, best.as_ref()) {
                if *got >= target {
                    break;
                }
            }
        }
    }
    let (fmax, mut module) = best.ok_or_else(|| FlowError::ComponentUnsatisfiable {
        component: component.name.clone(),
        reason: "no placement seeds supplied".to_string(),
    })?;

    // Clock pre-route marker + logic locking, then checkpoint.
    module.clock_prerouted = true;
    module.lock();
    let latency_cycles = pi_cnn::cycles::component_pipeline_depth(network, component)?;
    let signature = component.signature(network);
    let meta = CheckpointMeta {
        signature: signature.clone(),
        fmax_mhz: fmax,
        resources: need,
        pblock,
        device: device.name().to_string(),
        latency_cycles,
    };
    let report = ComponentBuildReport {
        name: component.name.clone(),
        signature,
        fmax_mhz: fmax,
        resources: need,
        pblock,
        seeds_tried,
        latency_cycles,
        build_time: t0.elapsed(),
    };
    if dse.enabled() {
        dse.point(
            "component_built",
            &[
                ("component", report.name.as_str().into()),
                ("signature", report.signature.as_str().into()),
                ("fmax_mhz", report.fmax_mhz.into()),
                ("seeds_tried", report.seeds_tried.into()),
                ("luts", need.luts.into()),
                ("dsps", need.dsps.into()),
                ("brams", need.brams.into()),
                ("pblock_w", pblock.width().into()),
                ("pblock_h", pblock.height().into()),
                ("latency_cycles", report.latency_cycles.into()),
                ("wallclock_build_s", t0.elapsed().as_secs_f64().into()),
            ],
        );
    }
    Ok((Checkpoint { meta, module }, report))
}

/// Pre-stage lint gate: when `cfg.lint` is set, run the graph-family
/// passes *and* the `PL04xx` dataflow analysis on the network before
/// spending any implementation effort. Under `cfg.fifo_autosize` the
/// dataflow pass lints against the depths stitch will actually install,
/// so an autosized flow cannot gate on `PL0400`/`PL0401`. Waivers are
/// audited here, on the merged report, so a waiver consumed by either
/// pass counts as used.
pub(crate) fn lint_gate_network(network: &Network, cfg: &FlowConfig) -> Result<(), FlowError> {
    let Some(lc) = &cfg.lint else { return Ok(()) };
    let engine = pi_lint::LintEngine::new(lc.clone());
    let mut report = engine.lint_network(network, cfg.granularity, cfg.obs());
    report.merge(engine.lint_dataflow(network, cfg.granularity, cfg.fifo_autosize, cfg.obs()));
    report.audit_waivers(lc);
    if report.gate(lc.deny_warnings) {
        return Err(FlowError::LintFailed(report));
    }
    Ok(())
}

/// Post-stage lint gate: when `cfg.lint` is set, verify every checkpoint
/// the function-optimization stage produced (or loaded) honours its
/// envelope contracts and covers the network.
fn lint_gate_db(
    db: &ComponentDb,
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<(), FlowError> {
    let Some(lc) = &cfg.lint else { return Ok(()) };
    let engine = pi_lint::LintEngine::new(lc.clone());
    let report = engine.lint_db_for_network(network, cfg.granularity, db, Some(device), cfg.obs());
    if report.gate(lc.deny_warnings) {
        return Err(FlowError::LintFailed(report));
    }
    Ok(())
}

/// Build only the components a network needs that are *not* already in the
/// database — the incremental path for extending a library with a new
/// design ("the saved netlists may serve in multiple designs").
pub fn extend_component_db(
    db: &mut ComponentDb,
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<Vec<ComponentBuildReport>, FlowError> {
    cfg.apply_parallelism();
    lint_gate_network(network, cfg)?;
    let opts = cfg.function_opt_options();
    let obs = cfg.obs();
    let dse = obs.scoped("flow::function_opt");
    let components = network.components(opts.granularity)?;
    let mut missing = Vec::new();
    let mut hits = 0u64;
    for c in &components {
        let sig = c.signature(network);
        let hit = db.get(&sig).is_some();
        if dse.enabled() {
            dse.point(
                "db_lookup",
                &[("signature", sig.as_str().into()), ("hit", hit.into())],
            );
        }
        if hit {
            hits += 1;
        } else {
            missing.push(c);
        }
    }
    if dse.enabled() {
        dse.counter("db_hits", hits);
        dse.counter("db_misses", missing.len() as u64);
    }
    let results = build_components_parallel(&missing, network, device, &opts, obs)?;
    let mut reports = Vec::with_capacity(results.len());
    for (cp, report) in results {
        db.insert(cp);
        reports.push(report);
    }
    lint_gate_db(db, network, device, cfg)?;
    Ok(reports)
}

/// Build a set of components in parallel, buffering each component's
/// telemetry and flushing the buffers in component index order — the
/// pi-obs determinism contract for parallel regions (see
/// [`pi_obs::BufferedObs`]).
fn build_components_parallel(
    components: &[&Component],
    network: &Network,
    device: &Device,
    opts: &FunctionOptOptions,
    obs: &Obs,
) -> Result<Vec<(Checkpoint, ComponentBuildReport)>, FlowError> {
    type Built = Result<(Checkpoint, ComponentBuildReport), FlowError>;
    let items: Vec<(&Component, pi_obs::BufferedObs)> =
        components.iter().map(|&c| (c, obs.buffered())).collect();
    let built: Vec<(Built, pi_obs::BufferedObs)> = items
        .into_par_iter()
        .map(|(c, buf)| {
            let r = build_component_obs(network, c, device, opts, buf.obs());
            (r, buf)
        })
        .collect();
    let mut results: Vec<Built> = Vec::with_capacity(built.len());
    for (r, buf) in built {
        buf.flush_into(obs);
        results.push(r);
    }
    results.into_iter().collect()
}

/// The paper's stated future work: "the frequency of the pre-implemented
/// network is bounded by the slowest component of the design. We are
/// planning to investigate optimization approaches to improve the
/// performance of components during the function optimization stage."
///
/// Each round finds the slowest of this network's components and re-runs
/// its performance exploration with fresh seeds and doubled effort,
/// replacing the checkpoint when the new implementation is faster. Returns
/// one report per improvement made; stops early when a round fails to
/// improve.
pub fn improve_slowest(
    db: &mut ComponentDb,
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
    rounds: usize,
) -> Result<Vec<ComponentBuildReport>, FlowError> {
    cfg.apply_parallelism();
    let opts = cfg.function_opt_options();
    let dse = cfg.obs().scoped("flow::function_opt");
    let components = network.components(opts.granularity)?;
    let mut improvements = Vec::new();
    for round in 0..rounds {
        // Slowest checkpoint among this network's components.
        let (slowest_idx, old_fmax) = components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                db.get(&c.signature(network))
                    .map(|cp| (i, cp.meta.fmax_mhz))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or_else(|| FlowError::ComponentUnsatisfiable {
                component: network.name.clone(),
                reason: "no checkpoints for this network in the database".to_string(),
            })?;
        // Fresh seeds per round so reruns explore new placements, plus
        // doubled effort: a deeper dive on the one component that matters.
        let base = 1000 + (round as u64) * 16;
        let retry_opts = FunctionOptOptions {
            seeds: (base..base + opts.seeds.len().max(4) as u64).collect(),
            effort: opts.effort * 2.0,
            target_fmax_mhz: None,
            ..opts.clone()
        };
        let (cp, report) = build_component_obs(
            network,
            &components[slowest_idx],
            device,
            &retry_opts,
            cfg.obs(),
        )?;
        let improved = report.fmax_mhz > old_fmax;
        if dse.enabled() {
            dse.point(
                "improve_round",
                &[
                    ("round", round.into()),
                    ("component", report.name.as_str().into()),
                    ("old_fmax_mhz", old_fmax.into()),
                    ("new_fmax_mhz", report.fmax_mhz.into()),
                    ("improved", improved.into()),
                ],
            );
        }
        if improved {
            db.insert(cp);
            improvements.push(report);
        } else {
            break;
        }
    }
    Ok(improvements)
}

/// Build the whole component database for a network. Components build in
/// parallel (rayon) — the "performed exactly once" investment of the paper.
pub fn build_component_db(
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<(ComponentDb, Vec<ComponentBuildReport>), FlowError> {
    cfg.apply_parallelism();
    lint_gate_network(network, cfg)?;
    let opts = cfg.function_opt_options();
    let obs = cfg.obs();
    let components = network.components(opts.granularity)?;
    let span = obs.scoped("flow::function_opt").span_with(
        "build_component_db",
        &[("components", components.len().into())],
    );
    let refs: Vec<&Component> = components.iter().collect();
    let results = build_components_parallel(&refs, network, device, &opts, obs)?;
    span.end();
    let mut db = ComponentDb::new();
    let mut reports = Vec::with_capacity(results.len());
    for (cp, report) in results {
        db.insert(cp);
        reports.push(report);
    }
    lint_gate_db(&db, network, device, cfg)?;
    Ok((db, reports))
}

/// Cache interaction summary from [`build_component_db_cached`]: how much
/// of the database came off disk versus was pre-implemented this run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbCacheStats {
    /// Components served from the persistent cache.
    pub hits: usize,
    /// Components absent from the cache (pre-implemented this run).
    pub misses: usize,
    /// Cached entries that failed verification (truncated, stale version,
    /// hash mismatch, missing file) and were quarantined + rebuilt.
    pub invalidations: usize,
    /// Serialized checkpoint bytes loaded on hits.
    pub bytes_loaded: u64,
    /// Entries evicted to honor `FlowConfig::db_budget_bytes` while this
    /// run's inserts were persisted.
    pub evictions: u64,
}

impl DbCacheStats {
    /// True when every component came off disk — the warm-cache guarantee
    /// the productivity numbers depend on.
    pub fn all_hits(&self) -> bool {
        self.misses == 0 && self.invalidations == 0
    }
}

/// [`build_component_db`] backed by the persistent content-addressed cache
/// at `cfg.db_dir`: every component's cache key — a stable hash of
/// (signature, device part, implementation knobs, see
/// [`FlowConfig::cache_fingerprint`]) — is consulted *before*
/// pre-implementing. A verified hit loads the checkpoint (relocation
/// happens at composition, as always); a miss builds the component and
/// persists it atomically, so the next run with the same knobs performs
/// zero pre-implementations. Corrupted or stale entries are quarantined
/// and rebuilt — never a crash (see [`pi_stitch::DbCache`]).
///
/// With no `db_dir` configured this degrades to [`build_component_db`]
/// (every component a miss, nothing persisted).
///
/// Telemetry: per-entry events under `stitch::db_cache`, plus a `db_cache`
/// span and `cache_hits` / `cache_misses` / `cache_invalidations` /
/// `cache_bytes_loaded` counters under `flow::function_opt`.
pub fn build_component_db_cached(
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<(ComponentDb, Vec<ComponentBuildReport>, DbCacheStats), FlowError> {
    let Some(dir) = cfg.db_dir.clone() else {
        let (db, reports) = build_component_db(network, device, cfg)?;
        let stats = DbCacheStats {
            misses: reports.len(),
            ..DbCacheStats::default()
        };
        return Ok((db, reports, stats));
    };
    cfg.apply_parallelism();
    lint_gate_network(network, cfg)?;
    let opts = cfg.function_opt_options();
    let obs = cfg.obs();
    let dse = obs.scoped("flow::function_opt");
    let fingerprint = cfg.cache_fingerprint();
    let components = network.components(opts.granularity)?;
    let span = dse.span_with("db_cache", &[("components", components.len().into())]);

    let mut cache =
        DbCache::open_with_budget(dir, cfg.db_budget_bytes, obs).map_err(FlowError::Stitch)?;
    let mut db = ComponentDb::new();
    let mut stats = DbCacheStats::default();
    let mut missing: Vec<(&Component, String)> = Vec::new();
    for c in &components {
        let sig = c.signature(network);
        let key = cache_key(&sig, device.name(), fingerprint);
        match cache.lookup(&key, obs) {
            CacheLookup::Hit { checkpoint, bytes } => {
                stats.hits += 1;
                stats.bytes_loaded += bytes;
                db.insert(*checkpoint);
            }
            CacheLookup::Miss => {
                stats.misses += 1;
                missing.push((c, key));
            }
            CacheLookup::Invalidated { .. } => {
                stats.misses += 1;
                stats.invalidations += 1;
                missing.push((c, key));
            }
        }
    }

    let refs: Vec<&Component> = missing.iter().map(|(c, _)| *c).collect();
    let results = build_components_parallel(&refs, network, device, &opts, obs)?;
    let mut reports = Vec::with_capacity(results.len());
    for ((cp, report), (_, key)) in results.into_iter().zip(&missing) {
        cache.insert(key, &cp, obs).map_err(FlowError::Stitch)?;
        db.insert(cp);
        reports.push(report);
    }
    stats.evictions = cache.budget_evictions();

    if dse.enabled() {
        dse.counter("cache_hits", stats.hits as u64);
        dse.counter("cache_misses", stats.misses as u64);
        dse.counter("cache_invalidations", stats.invalidations as u64);
        dse.counter("cache_bytes_loaded", stats.bytes_loaded);
        dse.counter("cache_evictions", stats.evictions);
    }
    span.end();
    lint_gate_db(&db, network, device, cfg)?;
    Ok((db, reports, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;

    #[test]
    fn pblock_sizing_is_minimal_and_sufficient() {
        let device = Device::xcku5p_like();
        let need = ResourceCount {
            luts: 4000,
            ffs: 6000,
            brams: 10,
            dsps: 30,
            urams: 0,
            ios: 0,
        };
        let pb = size_pblock(&need, &device, 0.7).unwrap();
        let cap = device.pblock_capacity(&pb).unwrap();
        assert!(need.fits_in(&cap));
        // Tight: half the rows would not fit the scaled demand.
        let smaller = Pblock::new(pb.col_lo, pb.col_hi, 0, pb.height() / 2);
        let cap2 = device.pblock_capacity(&smaller).unwrap();
        let scaled = need.scale_ceil(100 * 10 / 7, 100);
        assert!(!scaled.fits_in(&cap2));
    }

    #[test]
    fn pblock_sizing_rejects_impossible_demand() {
        let device = Device::test_part();
        let need = ResourceCount {
            dsps: 1_000_000,
            ..ResourceCount::ZERO
        };
        assert!(matches!(
            size_pblock(&need, &device, 0.7),
            Err(FlowError::ComponentUnsatisfiable { .. })
        ));
    }

    #[test]
    fn builds_toy_component_with_partpins_on_boundary() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let comps = network.components(Granularity::Layer).unwrap();
        let opts = FunctionOptOptions {
            seeds: vec![1, 2],
            ..Default::default()
        };
        let (cp, report) = build_component(&network, &comps[0], &device, &opts).unwrap();
        assert!(cp.module.locked);
        assert!(cp.module.fully_placed());
        assert!(report.fmax_mhz > 100.0, "fmax {}", report.fmax_mhz);
        assert_eq!(report.seeds_tried, 2);
        let pb = cp.meta.pblock;
        for port in cp.module.ports() {
            let pin = port.partpin.expect("planned");
            let on_edge = pin.col == pb.col_lo
                || pin.col == pb.col_hi
                || pin.row == pb.row_lo
                || pin.row == pb.row_hi;
            assert!(on_edge, "partpin {pin} not on pblock edge {pb}");
        }
    }

    #[test]
    fn seed_sweep_never_worse_than_single_seed() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let comps = network.components(Granularity::Layer).unwrap();
        let single = FunctionOptOptions {
            seeds: vec![1],
            ..Default::default()
        };
        let sweep = FunctionOptOptions {
            seeds: vec![1, 2, 3],
            ..Default::default()
        };
        let (_, r1) = build_component(&network, &comps[1], &device, &single).unwrap();
        let (_, r3) = build_component(&network, &comps[1], &device, &sweep).unwrap();
        assert!(r3.fmax_mhz >= r1.fmax_mhz);
    }

    #[test]
    fn full_db_for_toy_network() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let cfg = FlowConfig::new().with_seeds([1]);
        let (db, reports) = build_component_db(&network, &device, &cfg).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(reports.len(), 3);
        for c in network.components(Granularity::Layer).unwrap() {
            assert!(db.get(&c.signature(&network)).is_some());
        }
    }

    #[test]
    fn scattered_partpins_land_inside_the_pblock_deterministically() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let comps = network.components(Granularity::Layer).unwrap();
        let opts = FunctionOptOptions {
            seeds: vec![1],
            plan_partpins: false,
            ..Default::default()
        };
        let (cp1, _) = build_component(&network, &comps[0], &device, &opts).unwrap();
        let (cp2, _) = build_component(&network, &comps[0], &device, &opts).unwrap();
        for (p1, p2) in cp1.module.ports().iter().zip(cp2.module.ports()) {
            let pin = p1.partpin.expect("scattered");
            assert!(cp1.meta.pblock.contains(pin), "{pin} outside pblock");
            assert_eq!(p1.partpin, p2.partpin, "scatter must be deterministic");
        }
        // At least one scattered pin sits off the pblock boundary — that is
        // the point of the un-planned model.
        let pb = cp1.meta.pblock;
        let interior = cp1.module.ports().iter().any(|p| {
            let pin = p.partpin.expect("scattered");
            pin.col != pb.col_lo
                && pin.col != pb.col_hi
                && pin.row != pb.row_lo
                && pin.row != pb.row_hi
        });
        assert!(interior, "scatter produced only boundary pins");
    }

    #[test]
    fn planned_partpins_follow_the_streaming_convention() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let comps = network.components(Granularity::Layer).unwrap();
        let opts = FunctionOptOptions {
            seeds: vec![1],
            ..Default::default()
        };
        let (cp, _) = build_component(&network, &comps[0], &device, &opts).unwrap();
        let pb = cp.meta.pblock;
        for port in cp.module.ports() {
            let pin = port.partpin.expect("planned");
            match port.role {
                pi_netlist::StreamRole::Sink => assert_eq!(pin.row, pb.row_hi, "{}", port.name),
                _ => assert_eq!(pin.row, pb.row_lo, "{}", port.name),
            }
        }
    }

    #[test]
    fn extend_builds_only_missing_components() {
        let device = Device::xcku5p_like();
        let toy = models::toy();
        let cfg = FlowConfig::new().with_seeds([1]);
        let (mut db, _) = build_component_db(&toy, &device, &cfg).unwrap();
        let before = db.len();
        // Extending with the same network builds nothing.
        let again = extend_component_db(&mut db, &toy, &device, &cfg).unwrap();
        assert!(again.is_empty());
        assert_eq!(db.len(), before);
        // A new network sharing no components adds exactly its own.
        let other =
            pi_cnn::parse_archdef("network o\ninput 1x12x12\nconv c kernel=3 out=3\nfc f out=5\n")
                .unwrap();
        let built = extend_component_db(&mut db, &other, &device, &cfg).unwrap();
        assert_eq!(built.len(), 2);
        assert_eq!(db.len(), before + 2);
    }

    #[test]
    fn improve_slowest_never_regresses_the_floor() {
        let device = Device::xcku5p_like();
        let toy = models::toy();
        let cfg = FlowConfig::new().with_seeds([1]);
        let (mut db, reports) = build_component_db(&toy, &device, &cfg).unwrap();
        let floor_before = reports
            .iter()
            .map(|r| r.fmax_mhz)
            .fold(f64::INFINITY, f64::min);
        let improvements = improve_slowest(&mut db, &toy, &device, &cfg, 2).unwrap();
        let floor_after = toy
            .components(Granularity::Layer)
            .unwrap()
            .iter()
            .map(|c| db.get(&c.signature(&toy)).unwrap().meta.fmax_mhz)
            .fold(f64::INFINITY, f64::min);
        assert!(
            floor_after >= floor_before,
            "floor regressed: {floor_before} -> {floor_after}"
        );
        for imp in &improvements {
            assert!(imp.fmax_mhz > floor_before);
        }
    }

    #[test]
    fn improve_slowest_errors_on_unknown_network() {
        let device = Device::xcku5p_like();
        let toy = models::toy();
        let mut empty = ComponentDb::new();
        let cfg = FlowConfig::new().with_seeds([1]);
        assert!(matches!(
            improve_slowest(&mut empty, &toy, &device, &cfg, 1),
            Err(FlowError::ComponentUnsatisfiable { .. })
        ));
    }

    #[test]
    fn target_fmax_short_circuits_the_sweep() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let comps = network.components(Granularity::Layer).unwrap();
        let opts = FunctionOptOptions {
            seeds: vec![1, 2, 3, 4, 5],
            target_fmax_mhz: Some(1.0), // trivially met by the first seed
            ..Default::default()
        };
        let (_, report) = build_component(&network, &comps[1], &device, &opts).unwrap();
        assert_eq!(report.seeds_tried, 1);
    }

    #[test]
    fn cached_build_misses_cold_and_hits_warm() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let dir = std::env::temp_dir().join(format!(
            "pi-flow-dbcache-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FlowConfig::new().with_seeds([1]).with_db_dir(&dir);
        let n = network.components(Granularity::Layer).unwrap().len();

        let (db_cold, reports, cold) = build_component_db_cached(&network, &device, &cfg).unwrap();
        assert_eq!((cold.hits, cold.misses, cold.invalidations), (0, n, 0));
        assert_eq!(reports.len(), n);

        let (db_warm, reports, warm) = build_component_db_cached(&network, &device, &cfg).unwrap();
        assert!(warm.all_hits(), "warm run not all hits: {warm:?}");
        assert_eq!(warm.hits, n);
        assert!(warm.bytes_loaded > 0);
        assert!(reports.is_empty(), "warm run pre-implemented components");
        for c in network.components(Granularity::Layer).unwrap() {
            let sig = c.signature(&network);
            assert_eq!(
                db_cold.get(&sig).unwrap().to_json().unwrap(),
                db_warm.get(&sig).unwrap().to_json().unwrap(),
                "cached checkpoint for '{sig}' differs from the built one"
            );
        }

        // Different implementation knobs must not reuse these entries.
        let other = FlowConfig::new().with_seeds([2]).with_db_dir(&dir);
        let (_, _, stats) = build_component_db_cached(&network, &device, &other).unwrap();
        assert_eq!(stats.hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_build_without_db_dir_degrades_to_plain_build() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let cfg = FlowConfig::new().with_seeds([1]);
        let (db, reports, stats) = build_component_db_cached(&network, &device, &cfg).unwrap();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, reports.len());
        assert_eq!(db.len(), reports.len());
    }
}
