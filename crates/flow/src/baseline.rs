//! The traditional flow: monolithic synthesis of the whole network, then
//! full placement, physical optimization and routing — the comparison
//! baseline of every experiment.

use crate::config::FlowConfig;
use crate::report::LatencyReport;
use crate::FlowError;
use pi_cnn::graph::{Granularity, Network};
use pi_fabric::Device;
use pi_netlist::{Design, Module};
use pi_pnr::{compile_flat_obs, CompileReport};
use pi_synth::{synth_network_flat, SynthOptions};
use std::time::Duration;

/// Options for the baseline flow.
#[derive(Debug, Clone, Copy)]
pub struct BaselineOptions {
    pub synth: SynthOptions,
    pub granularity: Granularity,
    pub seed: u64,
    /// Placement effort (default vendor effort).
    pub effort: f64,
    pub route: pi_pnr::RouteOptions,
    pub phys_opt_passes: usize,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            synth: SynthOptions::default().monolithic(),
            granularity: Granularity::Layer,
            seed: 1,
            effort: 6.0,
            route: pi_pnr::RouteOptions::default(),
            phys_opt_passes: 4,
        }
    }
}

/// Report from the baseline flow.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub compile: CompileReport,
    pub latency: LatencyReport,
}

impl BaselineReport {
    /// Total implementation time: the sum of Vivado's opt/place/phys-opt/
    /// route phases, exactly the measure the paper uses for the baseline.
    pub fn total_time(&self) -> Duration {
        self.compile.phases.total()
    }
}

/// Run the full baseline: monolithic synthesis + full implementation.
/// Returns the implemented design (wrapped flat) and its report. The
/// backend phases report under `pnr::compile` / `pnr::place` /
/// `pnr::route`, plus a `flow::baseline` summary, through the sink the
/// config carries.
pub fn run_baseline_flow(
    network: &Network,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<(Design, BaselineReport), FlowError> {
    cfg.apply_parallelism();
    let opts = cfg.baseline_options();
    let base = cfg.obs().scoped("flow::baseline");
    let mut module: Module = synth_network_flat(network, opts.granularity, &opts.synth)?;
    let compile_opts = pi_pnr::compile::CompileOptions {
        place: pi_pnr::PlaceOptions {
            seed: opts.seed,
            effort: opts.effort,
            region: None,
        },
        route: opts.route,
        phys_opt_passes: opts.phys_opt_passes,
    };
    let span = base.with_seed(opts.seed).span("baseline");
    let compile = compile_flat_obs(&mut module, device, &compile_opts, cfg.obs())?;
    span.end();
    let latency =
        LatencyReport::for_monolithic(network, opts.granularity, &module, compile.timing.fmax_mhz)?;
    if base.enabled() {
        base.with_seed(opts.seed).point(
            "baseline_done",
            &[
                ("fmax_mhz", compile.timing.fmax_mhz.into()),
                ("overused_tiles", compile.route_stats.overused_tiles.into()),
                (
                    "wallclock_total_s",
                    compile.phases.total().as_secs_f64().into(),
                ),
            ],
        );
    }
    let design = Design::flat(format!("{}_baseline", network.name), device.name(), module);
    Ok((design, BaselineReport { compile, latency }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;

    #[test]
    fn baseline_implements_toy_network() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let (design, report) = run_baseline_flow(&network, &device, &FlowConfig::new()).unwrap();
        assert!(design.instances()[0].module.fully_placed());
        assert!(report.compile.timing.fmax_mhz > 50.0);
        assert!(report.compile.route_stats.overused_tiles == 0);
        assert!(report.total_time() > Duration::ZERO);
        // Monolithic synthesis inserted I/O buffers.
        assert_eq!(report.compile.resources.ios, 2);
    }
}
