//! The paper's contribution: the **layer-based pre-implemented flow** for
//! mapping CNNs onto FPGAs, plus the traditional monolithic baseline it is
//! evaluated against.
//!
//! The flow has the paper's two phases (Fig. 3):
//!
//! 1. **Function optimization** ([`function_opt`]) — semi-manual, done
//!    once: every fused component is synthesized out-of-context, floorplanned
//!    into a tight pblock, placed and routed under a seed-sweeping design
//!    space exploration, its ports committed to partition pins, the result
//!    locked and stored as a checkpoint in the component database.
//! 2. **Architecture optimization** ([`arch_opt`]) — fully automated: parse
//!    the CNN architecture definition, extract and match components, place
//!    them with the Eq. 1–3 cost model, stitch the inter-component nets and
//!    hand the design to the backend for inter-component routing only.
//!
//! [`baseline`] implements the traditional flow (monolithic synthesis +
//! full placement and routing), and [`report`] computes the latency /
//! Fmax / resources / productivity comparisons every experiment prints.

pub mod arch_opt;
pub mod baseline;
pub mod config;
pub mod config_json;
pub mod function_opt;
pub mod report;

pub use arch_opt::{pipeline_top_nets, run_pre_implemented_flow, ArchOptOptions, PreImplReport};
pub use baseline::{run_baseline_flow, BaselineOptions, BaselineReport};
pub use config::FlowConfig;
pub use function_opt::{
    build_component_db, build_component_db_cached, extend_component_db, improve_slowest,
    plan_partpins, size_pblock, ComponentBuildReport, DbCacheStats, FunctionOptOptions,
};
pub use report::{FlowComparison, LatencyReport};

/// Errors from the flow layer.
#[derive(Debug)]
pub enum FlowError {
    Synth(pi_synth::SynthError),
    Stitch(pi_stitch::StitchError),
    Pnr(pi_pnr::PnrError),
    Cnn(pi_cnn::CnnError),
    Netlist(pi_netlist::NetlistError),
    Fabric(pi_fabric::FabricError),
    /// A component could not reach a satisfiable implementation (pblock
    /// sizing or DSE failed).
    ComponentUnsatisfiable {
        component: String,
        reason: String,
    },
    /// The assembled design failed design-rule checking — a flow bug, never
    /// an input error.
    DrcFailed(Vec<pi_stitch::Violation>),
    /// A stage-boundary lint gate tripped (`FlowConfig::lint` was set and
    /// the report has errors, or warnings under `deny_warnings`). The
    /// report carries every finding for rendering.
    LintFailed(pi_lint::LintReport),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Synth(e) => write!(f, "flow/synthesis: {e}"),
            FlowError::Stitch(e) => write!(f, "flow/stitch: {e}"),
            FlowError::Pnr(e) => write!(f, "flow/backend: {e}"),
            FlowError::Cnn(e) => write!(f, "flow/cnn: {e}"),
            FlowError::Netlist(e) => write!(f, "flow/netlist: {e}"),
            FlowError::Fabric(e) => write!(f, "flow/fabric: {e}"),
            FlowError::ComponentUnsatisfiable { component, reason } => {
                write!(f, "component '{component}' unsatisfiable: {reason}")
            }
            FlowError::DrcFailed(violations) => {
                write!(
                    f,
                    "assembled design failed DRC ({} violations",
                    violations.len()
                )?;
                if let Some(first) = violations.first() {
                    write!(f, "; first: {first}")?;
                }
                write!(f, ")")
            }
            FlowError::LintFailed(report) => {
                write!(
                    f,
                    "lint gate tripped: {} errors, {} warnings",
                    report.errors(),
                    report.warnings()
                )?;
                if let Some(first) = report.diagnostics.first() {
                    write!(
                        f,
                        "; first: {}[{}] {}",
                        first.severity, first.code, first.message
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for FlowError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for FlowError {
            fn from(e: $ty) -> Self {
                FlowError::$variant(e)
            }
        }
    };
}

from_err!(Synth, pi_synth::SynthError);
from_err!(Stitch, pi_stitch::StitchError);
from_err!(Pnr, pi_pnr::PnrError);
from_err!(Cnn, pi_cnn::CnnError);
from_err!(Netlist, pi_netlist::NetlistError);
from_err!(Fabric, pi_fabric::FabricError);
