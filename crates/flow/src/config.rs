//! The unified flow configuration.
//!
//! [`FlowConfig`] is the single knob surface for both flows: one
//! builder-style struct carries everything the function-optimization,
//! architecture-optimization and baseline phases need, plus the telemetry
//! handle every engine below them reports through. Callers build one
//! config and hand it to [`crate::build_component_db`],
//! [`crate::run_pre_implemented_flow`] and [`crate::run_baseline_flow`];
//! the per-phase option structs ([`FunctionOptOptions`],
//! [`crate::ArchOptOptions`], [`crate::BaselineOptions`]) are an internal
//! concern of this crate.

use crate::arch_opt::ArchOptOptions;
use crate::baseline::BaselineOptions;
use crate::function_opt::FunctionOptOptions;
use pi_cnn::graph::Granularity;
use pi_netlist::StableHasher;
use pi_obs::agg::RunReport;
use pi_obs::{EventSink, FanoutSink, MemorySink, Obs};
use pi_pnr::RouteOptions;
use pi_stitch::ComponentPlacerOptions;
use pi_synth::{SynthMode, SynthOptions};
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration for the whole flow (both phases and the baseline), plus
/// the telemetry sink. Build one with the `with_*` methods:
///
/// ```
/// use pi_flow::FlowConfig;
/// use pi_cnn::graph::Granularity;
///
/// let cfg = FlowConfig::new()
///     .with_granularity(Granularity::Layer)
///     .with_seeds([1, 2, 3]);
/// assert_eq!(cfg.seeds, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Synthesis options for component (OOC) synthesis. The baseline flow
    /// derives its monolithic variant from this automatically.
    pub synth: SynthOptions,
    pub granularity: Granularity,
    /// Placement seeds explored per component (the DSE axis); the first
    /// seed also seeds the baseline's placement.
    pub seeds: Vec<u64>,
    /// Stop a component's seed sweep once this Fmax is reached.
    pub target_fmax_mhz: Option<f64>,
    /// Fraction of pblock capacity a component may use.
    pub pblock_utilization: f64,
    /// Placement effort for component (OOC) placement.
    pub effort: f64,
    /// Strategic partition-pin planning (ablation A1 turns this off).
    pub plan_partpins: bool,
    pub route: RouteOptions,
    /// Eq. 1–3 component-placer options for the architecture phase.
    pub placer: ComponentPlacerOptions,
    /// phys_opt passes in the baseline flow.
    pub phys_opt_passes: usize,
    /// Placement effort for the monolithic baseline (vendor default
    /// effort; higher than the per-component effort because the whole
    /// design is placed at once).
    pub baseline_effort: f64,
    /// Worker threads for the parallel regions (component builds, seed
    /// sweeps, reference inference). `None` defers to the process default:
    /// the `PI_THREADS` environment variable if set, else
    /// `std::thread::available_parallelism()`. `Some(1)` forces the
    /// sequential path. Results and telemetry streams are identical at
    /// every value — only wall-clock time changes.
    pub threads: Option<usize>,
    /// Root of the persistent component-database cache. When set,
    /// [`crate::build_component_db_cached`] consults it before
    /// pre-implementing anything and persists what it builds, making the
    /// paper's "one-time" function optimization real across runs. `None`
    /// keeps everything in memory.
    pub db_dir: Option<PathBuf>,
    /// Size budget (serialized bytes) for the persistent cache; inserts
    /// beyond it evict least-recently-used entries. `None` = unbounded.
    ///
    /// Deliberately excluded from [`FlowConfig::cache_fingerprint`]: the
    /// budget decides which entries *stay cached*, never what a checkpoint
    /// contains.
    pub db_budget_bytes: Option<u64>,
    /// Static-analysis policy. When set, the flow entry points run the
    /// relevant `pi-lint` passes at stage boundaries (network before
    /// function optimization, database after it, composed design instead
    /// of the raw DRC) and fail with [`crate::FlowError::LintFailed`]
    /// when the gate trips. `None` (the default) runs no lints — the
    /// ablation flows legitimately violate contracts the linter enforces
    /// (e.g. scattered partition pins).
    ///
    /// Deliberately excluded from [`FlowConfig::cache_fingerprint`]:
    /// linting observes checkpoints, it never changes what they contain.
    pub lint: Option<pi_lint::LintConfig>,
    /// Feed the `pi-lint` dataflow analysis back into stitching: size
    /// every inter-component link FIFO to its computed minimum occupancy
    /// bound instead of the standard depth, so reconvergent skews
    /// (ResNet skips) can never deadlock. Also evaluated by the lint
    /// gate: with autosizing on, `PL0400`/`PL0401` are checked against
    /// the autosized capacities and cannot fire.
    ///
    /// Deliberately excluded from [`FlowConfig::cache_fingerprint`]:
    /// autosizing resizes the *assembled* design's link FIFOs, never the
    /// contents of a pre-implemented checkpoint.
    pub fifo_autosize: bool,
    obs: Obs,
    /// In-process event capture installed by
    /// [`FlowConfig::with_report_capture`]; feeds
    /// [`FlowConfig::run_report`].
    capture: Option<Arc<MemorySink>>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            synth: SynthOptions::default(),
            granularity: Granularity::Layer,
            seeds: vec![1, 2, 3],
            target_fmax_mhz: None,
            pblock_utilization: 0.7,
            effort: 2.0,
            plan_partpins: true,
            route: RouteOptions::default(),
            placer: ComponentPlacerOptions::default(),
            phys_opt_passes: 4,
            baseline_effort: 6.0,
            threads: None,
            db_dir: None,
            db_budget_bytes: None,
            lint: None,
            fifo_autosize: false,
            obs: Obs::null(),
            capture: None,
        }
    }
}

impl FlowConfig {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_synth(mut self, synth: SynthOptions) -> Self {
        self.synth = synth;
        self
    }

    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    pub fn with_target_fmax(mut self, mhz: f64) -> Self {
        self.target_fmax_mhz = Some(mhz);
        self
    }

    pub fn with_pblock_utilization(mut self, utilization: f64) -> Self {
        self.pblock_utilization = utilization;
        self
    }

    pub fn with_effort(mut self, effort: f64) -> Self {
        self.effort = effort;
        self
    }

    pub fn with_plan_partpins(mut self, plan: bool) -> Self {
        self.plan_partpins = plan;
        self
    }

    pub fn with_route(mut self, route: RouteOptions) -> Self {
        self.route = route;
        self
    }

    pub fn with_placer(mut self, placer: ComponentPlacerOptions) -> Self {
        self.placer = placer;
        self
    }

    pub fn with_phys_opt_passes(mut self, passes: usize) -> Self {
        self.phys_opt_passes = passes;
        self
    }

    pub fn with_baseline_effort(mut self, effort: f64) -> Self {
        self.baseline_effort = effort;
        self
    }

    /// Pin the number of worker threads the parallel regions use.
    /// `with_threads(1)` forces fully sequential execution. Never changes
    /// results or telemetry content — determinism is by construction.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Apply the `threads` knob to the process-global scheduler. A `None`
    /// knob leaves the ambient default (the `PI_THREADS` environment
    /// variable, else `available_parallelism()`) untouched. Flow entry
    /// points call this before their first parallel region.
    pub fn apply_parallelism(&self) {
        if let Some(threads) = self.threads {
            rayon::set_num_threads(threads);
        }
    }

    /// Root directory of the persistent component-database cache.
    pub fn with_db_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.db_dir = Some(dir.into());
        self
    }

    /// Byte budget for the persistent cache (LRU eviction beyond it).
    pub fn with_db_budget_bytes(mut self, bytes: u64) -> Self {
        self.db_budget_bytes = Some(bytes);
        self
    }

    /// Enable stage-boundary linting under the given policy (see the
    /// `lint` field).
    pub fn with_lint(mut self, lint: pi_lint::LintConfig) -> Self {
        self.lint = Some(lint);
        self
    }

    /// Size stitched link FIFOs from the dataflow analysis (see the
    /// `fifo_autosize` field).
    pub fn with_fifo_autosize(mut self, autosize: bool) -> Self {
        self.fifo_autosize = autosize;
        self
    }

    /// Stable fingerprint of every knob that affects what a pre-implemented
    /// checkpoint *is*: synthesis options, granularity, the seed sweep, the
    /// Fmax target, pblock utilization, placement effort, port planning and
    /// routing options. Combined with the component signature and device
    /// part by [`pi_stitch::cache_key`], it keys the persistent cache —
    /// change any of these knobs and every lookup misses cleanly instead of
    /// serving a checkpoint built under different rules.
    ///
    /// Deliberately excluded: `threads` (scheduling never changes results),
    /// the telemetry sink, `db_dir` itself, and the architecture-phase /
    /// baseline knobs (`placer`, `phys_opt_passes`, `baseline_effort`,
    /// `fifo_autosize`), none of which influence the checkpoint artifact.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(match self.synth.mode {
            SynthMode::Ooc => "ooc",
            SynthMode::Monolithic => "monolithic",
        });
        h.write_u16(self.synth.data_width);
        h.write_bool(self.synth.weights_on_chip);
        h.write_str(match self.granularity {
            Granularity::Layer => "layer",
            Granularity::Block => "block",
        });
        h.write_usize(self.seeds.len());
        for &s in &self.seeds {
            h.write_u64(s);
        }
        h.write_opt_f64(self.target_fmax_mhz);
        h.write_f64(self.pblock_utilization);
        h.write_f64(self.effort);
        h.write_bool(self.plan_partpins);
        h.write_usize(self.route.max_iters);
        h.write_u16(self.route.capacity);
        h.write_bool(self.route.steiner);
        h.write_bool(self.route.slack_order);
        h.finish()
    }

    /// Route telemetry into `sink`. Every engine the flow calls (annealer,
    /// router, phys-opt, component placer) reports through it. Replaces
    /// any capture installed by [`FlowConfig::with_report_capture`] — when
    /// combining the two, install the capture last.
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.obs = Obs::new(sink);
        self.capture = None;
        self
    }

    /// Use an existing telemetry handle (shares its sequence counter —
    /// useful when several flows must interleave into one stream). Replaces
    /// any capture installed by [`FlowConfig::with_report_capture`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self.capture = None;
        self
    }

    /// The telemetry handle this config carries.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Capture every event of the runs this config drives into an
    /// in-process buffer, so [`FlowConfig::run_report`] can fold them into
    /// a [`RunReport`] afterwards. Composes with an already-installed sink
    /// (the stream is teed, preserving one shared sequence counter), so
    /// `--trace` recording and report capture see the identical stream.
    /// Call this *after* `with_sink`/`with_obs`; installing either later
    /// replaces the capture.
    pub fn with_report_capture(mut self) -> Self {
        let capture = Arc::new(MemorySink::new());
        self.obs = if self.obs.enabled() {
            Obs::new(Arc::new(FanoutSink::new(vec![
                self.obs.sink_handle(),
                capture.clone(),
            ])))
        } else {
            Obs::new(capture.clone())
        };
        self.capture = Some(capture);
        self
    }

    /// Events captured so far (empty without
    /// [`FlowConfig::with_report_capture`]).
    pub fn captured_events(&self) -> Vec<pi_obs::Event> {
        self.capture
            .as_ref()
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Fold everything captured so far into a [`RunReport`]. `None`
    /// without [`FlowConfig::with_report_capture`].
    pub fn run_report(&self) -> Option<RunReport> {
        self.capture
            .as_ref()
            .map(|c| RunReport::from_events(&c.snapshot()))
    }

    pub(crate) fn function_opt_options(&self) -> FunctionOptOptions {
        FunctionOptOptions {
            synth: self.synth,
            granularity: self.granularity,
            seeds: self.seeds.clone(),
            target_fmax_mhz: self.target_fmax_mhz,
            pblock_utilization: self.pblock_utilization,
            effort: self.effort,
            plan_partpins: self.plan_partpins,
            route: self.route,
        }
    }

    pub(crate) fn arch_opt_options(&self) -> ArchOptOptions {
        ArchOptOptions {
            granularity: self.granularity,
            placer: self.placer,
            route: self.route,
        }
    }

    pub(crate) fn baseline_options(&self) -> BaselineOptions {
        BaselineOptions {
            synth: self.synth.monolithic(),
            granularity: self.granularity,
            seed: self.seeds.first().copied().unwrap_or(1),
            effort: self.baseline_effort,
            route: self.route,
            phys_opt_passes: self.phys_opt_passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_obs::MemorySink;

    #[test]
    fn builder_round_trips_into_phase_options() {
        let cfg = FlowConfig::new()
            .with_granularity(Granularity::Block)
            .with_seeds([7, 8])
            .with_target_fmax(400.0)
            .with_pblock_utilization(0.5)
            .with_effort(3.0)
            .with_plan_partpins(false)
            .with_phys_opt_passes(2)
            .with_baseline_effort(9.0);
        let f = cfg.function_opt_options();
        assert_eq!(f.granularity, Granularity::Block);
        assert_eq!(f.seeds, vec![7, 8]);
        assert_eq!(f.target_fmax_mhz, Some(400.0));
        assert_eq!(f.pblock_utilization, 0.5);
        assert_eq!(f.effort, 3.0);
        assert!(!f.plan_partpins);
        let a = cfg.arch_opt_options();
        assert_eq!(a.granularity, Granularity::Block);
        let b = cfg.baseline_options();
        assert_eq!(b.seed, 7);
        assert_eq!(b.effort, 9.0);
        assert_eq!(b.phys_opt_passes, 2);
    }

    #[test]
    fn threads_knob_defaults_to_ambient() {
        // `None` must leave the process default alone; `apply_parallelism`
        // on the default config is therefore a no-op (important: flow entry
        // points call it unconditionally).
        let cfg = FlowConfig::new();
        assert_eq!(cfg.threads, None);
        cfg.apply_parallelism();
        assert_eq!(FlowConfig::new().with_threads(3).threads, Some(3));
    }

    #[test]
    fn fingerprint_tracks_implementation_knobs_only() {
        let base = FlowConfig::new();
        let fp = base.cache_fingerprint();
        // Stable across calls and across equivalent configs.
        assert_eq!(fp, FlowConfig::new().cache_fingerprint());
        // Every implementation knob moves it.
        assert_ne!(fp, base.clone().with_seeds([1, 2]).cache_fingerprint());
        assert_ne!(fp, base.clone().with_target_fmax(400.0).cache_fingerprint());
        assert_ne!(
            fp,
            base.clone()
                .with_pblock_utilization(0.8)
                .cache_fingerprint()
        );
        assert_ne!(fp, base.clone().with_effort(3.0).cache_fingerprint());
        assert_ne!(
            fp,
            base.clone().with_plan_partpins(false).cache_fingerprint()
        );
        assert_ne!(
            fp,
            base.clone()
                .with_granularity(Granularity::Block)
                .cache_fingerprint()
        );
        assert_ne!(
            fp,
            base.clone()
                .with_synth(pi_synth::SynthOptions::vgg_like())
                .cache_fingerprint()
        );
        let mut route = base.route;
        route.capacity += 1;
        assert_ne!(fp, base.clone().with_route(route).cache_fingerprint());
        // The Steiner/slack router knobs change routed checkpoints, so the
        // cache must miss when they flip.
        let mut route = base.route;
        route.steiner = !route.steiner;
        assert_ne!(fp, base.clone().with_route(route).cache_fingerprint());
        let mut route = base.route;
        route.slack_order = !route.slack_order;
        assert_ne!(fp, base.clone().with_route(route).cache_fingerprint());
        // Scheduling, telemetry and the cache location itself do not.
        assert_eq!(fp, base.clone().with_threads(4).cache_fingerprint());
        assert_eq!(fp, base.clone().with_db_dir("/tmp/x").cache_fingerprint());
        assert_eq!(
            fp,
            base.clone()
                .with_sink(Arc::new(MemorySink::new()))
                .cache_fingerprint()
        );
    }

    #[test]
    fn default_config_is_silent() {
        assert!(!FlowConfig::new().obs().enabled());
    }

    #[test]
    fn sink_enables_telemetry() {
        let sink = Arc::new(MemorySink::new());
        let cfg = FlowConfig::new().with_sink(sink.clone());
        assert!(cfg.obs().enabled());
        cfg.obs().point("p", &[]);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn report_capture_tees_and_folds() {
        let sink = Arc::new(MemorySink::new());
        let cfg = FlowConfig::new()
            .with_sink(sink.clone())
            .with_report_capture();
        cfg.obs().scoped("x").counter("c", 2);
        assert_eq!(sink.len(), 1, "original sink still sees events");
        let report = cfg.run_report().expect("capture installed");
        assert_eq!(report.events, 1);
        assert_eq!(report.counters["x:c"].sum, 2);
        assert_eq!(cfg.captured_events().len(), 1);
    }

    #[test]
    fn report_capture_works_without_a_sink() {
        let cfg = FlowConfig::new().with_report_capture();
        assert!(cfg.obs().enabled());
        cfg.obs().scoped("x").gauge("g", 1.5);
        assert_eq!(cfg.run_report().expect("capture installed").events, 1);
    }

    #[test]
    fn later_sink_replaces_the_capture() {
        assert!(FlowConfig::new().run_report().is_none());
        let cfg = FlowConfig::new()
            .with_report_capture()
            .with_sink(Arc::new(MemorySink::new()));
        assert!(cfg.run_report().is_none(), "capture no longer wired");
        assert!(cfg.captured_events().is_empty());
    }
}
