//! The [`FlowConfig`] wire format.
//!
//! `pi-serve` compile jobs carry their whole configuration as JSON: a
//! client serializes its config with [`FlowConfig::to_json`], the daemon
//! reconstructs it with [`FlowConfig::from_json`] and runs the flow under
//! it. The format covers **every builder knob** — synthesis options,
//! granularity, the seed sweep, Fmax target, pblock utilization, efforts,
//! partition-pin planning, route and component-placer options, phys-opt
//! passes, threads, the cache directory and byte budget, and the full lint
//! policy — so `from_json(to_json(c))` reproduces `c` exactly, including
//! its [`FlowConfig::cache_fingerprint`] (property-tested in
//! `tests/config_roundtrip.rs`).
//!
//! Two things deliberately do not cross the wire: the telemetry sink and
//! the report capture. They are process-local plumbing — each side
//! installs its own — and serializing them would make identical jobs hash
//! differently. Unknown keys are rejected (a typo in a job must fail
//! loudly, not silently run under defaults); missing keys take the
//! documented defaults so old clients keep working when knobs are added.

use crate::config::FlowConfig;
use pi_cnn::graph::Granularity;
use pi_lint::{Level, LintConfig, Waiver};
use pi_pnr::RouteOptions;
use pi_stitch::ComponentPlacerOptions;
use pi_synth::{SynthMode, SynthOptions};
use serde_json::Value;
use std::path::PathBuf;

/// Keys accepted at the top level (everything else is an error).
const TOP_KEYS: &[&str] = &[
    "synth",
    "granularity",
    "seeds",
    "target_fmax_mhz",
    "pblock_utilization",
    "effort",
    "plan_partpins",
    "route",
    "placer",
    "phys_opt_passes",
    "baseline_effort",
    "threads",
    "db_dir",
    "db_budget_bytes",
    "lint",
    "fifo_autosize",
];

impl FlowConfig {
    /// Serialize every builder knob as a JSON object (see module docs for
    /// what is deliberately excluded). Key order is fixed, so equal
    /// configs serialize byte-identically — the property `pi-serve` job
    /// IDs rely on.
    pub fn to_json_value(&self) -> Value {
        let mut m = Value::Map(Vec::new());
        m["synth"] = Value::Map(vec![
            (
                "mode".into(),
                Value::Str(
                    match self.synth.mode {
                        SynthMode::Ooc => "ooc",
                        SynthMode::Monolithic => "monolithic",
                    }
                    .into(),
                ),
            ),
            (
                "data_width".into(),
                Value::U64(u64::from(self.synth.data_width)),
            ),
            (
                "weights_on_chip".into(),
                Value::Bool(self.synth.weights_on_chip),
            ),
        ]);
        m["granularity"] = Value::Str(
            match self.granularity {
                Granularity::Layer => "layer",
                Granularity::Block => "block",
            }
            .into(),
        );
        m["seeds"] = Value::Seq(self.seeds.iter().map(|&s| Value::U64(s)).collect());
        m["target_fmax_mhz"] = opt_f64(self.target_fmax_mhz);
        m["pblock_utilization"] = Value::F64(self.pblock_utilization);
        m["effort"] = Value::F64(self.effort);
        m["plan_partpins"] = Value::Bool(self.plan_partpins);
        m["route"] = Value::Map(vec![
            ("max_iters".into(), Value::U64(self.route.max_iters as u64)),
            (
                "capacity".into(),
                Value::U64(u64::from(self.route.capacity)),
            ),
            ("steiner".into(), Value::Bool(self.route.steiner)),
            ("slack_order".into(), Value::Bool(self.route.slack_order)),
        ]);
        m["placer"] = Value::Map(vec![
            (
                "timing_threshold".into(),
                Value::F64(self.placer.timing_threshold),
            ),
            (
                "congestion_weight".into(),
                Value::F64(self.placer.congestion_weight),
            ),
            (
                "crowding_margin".into(),
                Value::U64(u64::from(self.placer.crowding_margin)),
            ),
            (
                "max_retries".into(),
                Value::U64(self.placer.max_retries as u64),
            ),
        ]);
        m["phys_opt_passes"] = Value::U64(self.phys_opt_passes as u64);
        m["baseline_effort"] = Value::F64(self.baseline_effort);
        m["threads"] = match self.threads {
            Some(n) => Value::U64(n as u64),
            None => Value::Null,
        };
        m["db_dir"] = match &self.db_dir {
            Some(p) => Value::Str(p.to_string_lossy().into_owned()),
            None => Value::Null,
        };
        m["db_budget_bytes"] = match self.db_budget_bytes {
            Some(b) => Value::U64(b),
            None => Value::Null,
        };
        m["lint"] = match &self.lint {
            Some(lint) => lint_to_json(lint),
            None => Value::Null,
        };
        m["fifo_autosize"] = Value::Bool(self.fifo_autosize);
        m
    }

    /// Compact JSON string of [`FlowConfig::to_json_value`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_json_value()).expect("config serializes")
    }

    /// Rebuild a config from [`FlowConfig::to_json`] output. The result
    /// carries no telemetry sink (install one with
    /// [`FlowConfig::with_sink`] / [`FlowConfig::with_report_capture`]
    /// after deserializing).
    pub fn from_json(text: &str) -> Result<FlowConfig, String> {
        let value = serde_json::from_str::<Value>(text).map_err(|e| format!("config: {e}"))?;
        Self::from_json_value(&value)
    }

    /// [`FlowConfig::from_json`] over an already-parsed JSON tree.
    pub fn from_json_value(value: &Value) -> Result<FlowConfig, String> {
        let map = as_map(value, "config")?;
        for (k, _) in map {
            if !TOP_KEYS.contains(&k.as_str()) {
                return Err(format!("config: unknown key {k:?}"));
            }
        }
        let mut cfg = FlowConfig::new();
        if let Some(v) = get(map, "synth") {
            cfg.synth = synth_from_json(v)?;
        }
        if let Some(v) = get(map, "granularity") {
            cfg.granularity = match as_str(v, "granularity")? {
                "layer" => Granularity::Layer,
                "block" => Granularity::Block,
                other => return Err(format!("granularity: unknown value {other:?}")),
            };
        }
        if let Some(v) = get(map, "seeds") {
            let Value::Seq(xs) = v else {
                return Err("seeds: expected an array".into());
            };
            cfg.seeds = xs
                .iter()
                .map(|x| as_u64(x, "seeds[]"))
                .collect::<Result<Vec<_>, _>>()?;
        }
        if let Some(v) = get(map, "target_fmax_mhz") {
            cfg.target_fmax_mhz = as_opt_f64(v, "target_fmax_mhz")?;
        }
        if let Some(v) = get(map, "pblock_utilization") {
            cfg.pblock_utilization = as_f64(v, "pblock_utilization")?;
        }
        if let Some(v) = get(map, "effort") {
            cfg.effort = as_f64(v, "effort")?;
        }
        if let Some(v) = get(map, "plan_partpins") {
            cfg.plan_partpins = as_bool(v, "plan_partpins")?;
        }
        if let Some(v) = get(map, "route") {
            cfg.route = route_from_json(v)?;
        }
        if let Some(v) = get(map, "placer") {
            cfg.placer = placer_from_json(v)?;
        }
        if let Some(v) = get(map, "phys_opt_passes") {
            cfg.phys_opt_passes = as_u64(v, "phys_opt_passes")? as usize;
        }
        if let Some(v) = get(map, "baseline_effort") {
            cfg.baseline_effort = as_f64(v, "baseline_effort")?;
        }
        if let Some(v) = get(map, "threads") {
            cfg.threads = match v {
                Value::Null => None,
                other => {
                    let n = as_u64(other, "threads")? as usize;
                    if n == 0 {
                        return Err("threads: must be at least 1".into());
                    }
                    Some(n)
                }
            };
        }
        if let Some(v) = get(map, "db_dir") {
            cfg.db_dir = match v {
                Value::Null => None,
                other => Some(PathBuf::from(as_str(other, "db_dir")?)),
            };
        }
        if let Some(v) = get(map, "db_budget_bytes") {
            cfg.db_budget_bytes = match v {
                Value::Null => None,
                other => Some(as_u64(other, "db_budget_bytes")?),
            };
        }
        if let Some(v) = get(map, "lint") {
            cfg.lint = match v {
                Value::Null => None,
                other => Some(lint_from_json(other)?),
            };
        }
        if let Some(v) = get(map, "fifo_autosize") {
            cfg.fifo_autosize = as_bool(v, "fifo_autosize")?;
        }
        Ok(cfg)
    }
}

fn lint_to_json(lint: &LintConfig) -> Value {
    let mut m = Value::Map(Vec::new());
    m["levels"] = Value::Map(
        lint.levels
            .iter()
            .map(|(code, level)| (code.clone(), Value::Str(level_str(*level).into())))
            .collect(),
    );
    m["waivers"] = Value::Seq(
        lint.waivers
            .iter()
            .map(|w| {
                Value::Map(vec![
                    ("code".into(), Value::Str(w.code.clone())),
                    ("origin_prefix".into(), Value::Str(w.origin_prefix.clone())),
                ])
            })
            .collect(),
    );
    m["fanout_threshold"] = Value::U64(lint.fanout_threshold as u64);
    m["frame_cycle_budget"] = Value::U64(lint.frame_cycle_budget);
    m["link_fifo_depth"] = Value::U64(lint.link_fifo_depth);
    m["deny_warnings"] = Value::Bool(lint.deny_warnings);
    m
}

fn lint_from_json(value: &Value) -> Result<LintConfig, String> {
    let map = as_map(value, "lint")?;
    for (k, _) in map {
        if ![
            "levels",
            "waivers",
            "fanout_threshold",
            "frame_cycle_budget",
            "link_fifo_depth",
            "deny_warnings",
        ]
        .contains(&k.as_str())
        {
            return Err(format!("lint: unknown key {k:?}"));
        }
    }
    let mut lint = LintConfig::new();
    if let Some(v) = get(map, "levels") {
        for (code, level) in as_map(v, "lint.levels")? {
            let level = Level::parse(as_str(level, "lint.levels[]")?)
                .ok_or_else(|| format!("lint.levels[{code}]: unknown level"))?;
            lint = lint.with_level(code.clone(), level);
        }
    }
    if let Some(v) = get(map, "waivers") {
        let Value::Seq(xs) = v else {
            return Err("lint.waivers: expected an array".into());
        };
        let mut waivers = Vec::with_capacity(xs.len());
        for x in xs {
            let wm = as_map(x, "lint.waivers[]")?;
            waivers.push(Waiver {
                code: as_str(
                    get(wm, "code").ok_or("lint.waivers[]: missing code")?,
                    "lint.waivers[].code",
                )?
                .to_string(),
                origin_prefix: as_str(
                    get(wm, "origin_prefix").ok_or("lint.waivers[]: missing origin_prefix")?,
                    "lint.waivers[].origin_prefix",
                )?
                .to_string(),
            });
        }
        lint = lint.with_waivers(waivers);
    }
    if let Some(v) = get(map, "fanout_threshold") {
        lint = lint.with_fanout_threshold(as_u64(v, "lint.fanout_threshold")? as usize);
    }
    if let Some(v) = get(map, "frame_cycle_budget") {
        lint = lint.with_frame_cycle_budget(as_u64(v, "lint.frame_cycle_budget")?);
    }
    if let Some(v) = get(map, "link_fifo_depth") {
        lint = lint.with_link_fifo_depth(as_u64(v, "lint.link_fifo_depth")?);
    }
    if let Some(v) = get(map, "deny_warnings") {
        lint = lint.with_deny_warnings(as_bool(v, "lint.deny_warnings")?);
    }
    Ok(lint)
}

fn synth_from_json(value: &Value) -> Result<SynthOptions, String> {
    let map = as_map(value, "synth")?;
    for (k, _) in map {
        if !["mode", "data_width", "weights_on_chip"].contains(&k.as_str()) {
            return Err(format!("synth: unknown key {k:?}"));
        }
    }
    let mut synth = SynthOptions::default();
    if let Some(v) = get(map, "mode") {
        synth.mode = match as_str(v, "synth.mode")? {
            "ooc" => SynthMode::Ooc,
            "monolithic" => SynthMode::Monolithic,
            other => return Err(format!("synth.mode: unknown value {other:?}")),
        };
    }
    if let Some(v) = get(map, "data_width") {
        synth.data_width = as_u64(v, "synth.data_width")? as u16;
    }
    if let Some(v) = get(map, "weights_on_chip") {
        synth.weights_on_chip = as_bool(v, "synth.weights_on_chip")?;
    }
    Ok(synth)
}

fn route_from_json(value: &Value) -> Result<RouteOptions, String> {
    let map = as_map(value, "route")?;
    for (k, _) in map {
        if !["max_iters", "capacity", "steiner", "slack_order"].contains(&k.as_str()) {
            return Err(format!("route: unknown key {k:?}"));
        }
    }
    let mut route = RouteOptions::default();
    if let Some(v) = get(map, "max_iters") {
        route.max_iters = as_u64(v, "route.max_iters")? as usize;
    }
    if let Some(v) = get(map, "capacity") {
        route.capacity = as_u64(v, "route.capacity")? as u16;
    }
    if let Some(v) = get(map, "steiner") {
        route.steiner = as_bool(v, "route.steiner")?;
    }
    if let Some(v) = get(map, "slack_order") {
        route.slack_order = as_bool(v, "route.slack_order")?;
    }
    Ok(route)
}

fn placer_from_json(value: &Value) -> Result<ComponentPlacerOptions, String> {
    let map = as_map(value, "placer")?;
    for (k, _) in map {
        if ![
            "timing_threshold",
            "congestion_weight",
            "crowding_margin",
            "max_retries",
        ]
        .contains(&k.as_str())
        {
            return Err(format!("placer: unknown key {k:?}"));
        }
    }
    let mut placer = ComponentPlacerOptions::default();
    if let Some(v) = get(map, "timing_threshold") {
        placer.timing_threshold = as_f64(v, "placer.timing_threshold")?;
    }
    if let Some(v) = get(map, "congestion_weight") {
        placer.congestion_weight = as_f64(v, "placer.congestion_weight")?;
    }
    if let Some(v) = get(map, "crowding_margin") {
        placer.crowding_margin = as_u64(v, "placer.crowding_margin")? as u16;
    }
    if let Some(v) = get(map, "max_retries") {
        placer.max_retries = as_u64(v, "placer.max_retries")? as usize;
    }
    Ok(placer)
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Allow => "allow",
        Level::Warn => "warn",
        Level::Deny => "deny",
    }
}

// ---- small JSON accessors ----------------------------------------------

fn as_map<'v>(v: &'v Value, what: &str) -> Result<&'v Vec<(String, Value)>, String> {
    match v {
        Value::Map(m) => Ok(m),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str<'v>(v: &'v Value, what: &str) -> Result<&'v str, String> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(format!("{what}: expected a string")),
    }
}

fn as_bool(v: &Value, what: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{what}: expected a boolean")),
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(format!("{what}: expected an unsigned integer")),
    }
}

fn as_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        _ => Err(format!("{what}: expected a number")),
    }
}

fn as_opt_f64(v: &Value, what: &str) -> Result<Option<f64>, String> {
    match v {
        Value::Null => Ok(None),
        other => as_f64(other, what).map(Some),
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::F64(x),
        None => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_round_trips() {
        let cfg = FlowConfig::new();
        let back = FlowConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.cache_fingerprint(), cfg.cache_fingerprint());
        assert_eq!(back.seeds, cfg.seeds);
        assert_eq!(back.threads, None);
        assert!(back.lint.is_none());
    }

    #[test]
    fn every_knob_round_trips() {
        let lint = LintConfig::new()
            .deny("PL0107")
            .allow("PL0206")
            .with_waivers(vec![Waiver {
                code: "PL0101".into(),
                origin_prefix: "net:top_*".into(),
            }])
            .with_fanout_threshold(17)
            .with_frame_cycle_budget(12345)
            .with_link_fifo_depth(96)
            .with_deny_warnings(true);
        let cfg = FlowConfig::new()
            .with_synth(SynthOptions::vgg_like())
            .with_granularity(Granularity::Block)
            .with_seeds([9, 4, 7])
            .with_target_fmax(433.25)
            .with_pblock_utilization(0.55)
            .with_effort(3.5)
            .with_plan_partpins(false)
            .with_route(RouteOptions {
                max_iters: 11,
                capacity: 48,
                steiner: false,
                slack_order: false,
            })
            .with_placer(ComponentPlacerOptions {
                timing_threshold: 123.5,
                congestion_weight: 7.25,
                crowding_margin: 5,
                max_retries: 9,
            })
            .with_phys_opt_passes(6)
            .with_baseline_effort(8.5)
            .with_threads(3)
            .with_db_dir("/tmp/pi-db")
            .with_db_budget_bytes(1 << 20)
            .with_lint(lint)
            .with_fifo_autosize(true);
        let back = FlowConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.cache_fingerprint(), cfg.cache_fingerprint());
        assert_eq!(back.synth.data_width, cfg.synth.data_width);
        assert_eq!(back.seeds, vec![9, 4, 7]);
        assert_eq!(back.target_fmax_mhz, Some(433.25));
        assert_eq!(back.threads, Some(3));
        assert_eq!(back.db_dir, Some(PathBuf::from("/tmp/pi-db")));
        assert_eq!(back.db_budget_bytes, Some(1 << 20));
        let back_lint = back.lint.as_ref().unwrap();
        assert_eq!(back_lint.levels, cfg.lint.as_ref().unwrap().levels);
        assert_eq!(back_lint.waivers, cfg.lint.as_ref().unwrap().waivers);
        assert_eq!(back_lint.fanout_threshold, 17);
        assert_eq!(back_lint.frame_cycle_budget, 12345);
        assert_eq!(back_lint.link_fifo_depth, 96);
        assert!(back_lint.deny_warnings);
        assert!(back.fifo_autosize);
        // Equal configs serialize byte-identically (job IDs hash this).
        assert_eq!(cfg.to_json(), back.to_json());
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        assert!(FlowConfig::from_json("{\"sedes\":[1]}")
            .unwrap_err()
            .contains("unknown key"));
        assert!(FlowConfig::from_json("{\"route\":{\"max_iter\":3}}")
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn missing_keys_take_defaults() {
        let cfg = FlowConfig::from_json("{\"seeds\":[5]}").unwrap();
        assert_eq!(cfg.seeds, vec![5]);
        assert_eq!(cfg.effort, FlowConfig::new().effort);
    }
}
