//! Architecture optimization: the fully automated half of the flow.
//!
//! Takes the user's network (usually parsed from a CNN architecture
//! definition) plus the pre-built component database, and produces a fully
//! implemented accelerator: component extraction/matching/placement/
//! stitching (the RapidWright-analog [`pi_stitch::compose`]) followed by
//! inter-component routing in the backend. Stitching time and routing time
//! are reported separately — the paper's Fig. 6 shows stitching is only
//! 5–9 % of the pre-implemented flow's total.

use crate::config::FlowConfig;
use crate::report::LatencyReport;
use crate::FlowError;
use pi_cnn::graph::{Granularity, Network};
use pi_fabric::Device;
use pi_netlist::Design;
use pi_pnr::{route_assembled_obs, CompileReport, RouteOptions};
use pi_stitch::{
    compose_sized_obs, ComponentDb, ComponentPlacerOptions, ComposeOptions, ComposeReport,
};
use std::time::{Duration, Instant};

/// Wire length (tiles) each pipeline segment of a long inter-component net
/// may span. The stitcher inserts a register stage per segment — the
/// paper's "inserting pipeline elements such as FFs on the critical path
/// improves the timing performance, while increasing the overall latency".
pub const WIRE_PIPELINE_SPACING: u32 = 64;

/// Pipeline long inter-component wires: the component flow knows every
/// boundary is a registered FIFO interface, so it can break long hops into
/// register-to-register segments — the monolithic flow cannot. Returns the
/// total pipeline registers inserted (extra latency cycles).
pub fn pipeline_top_nets(design: &mut Design) -> u64 {
    let mut extra = 0u64;
    for ni in 0..design.top_nets().len() {
        let net = &design.top_nets()[ni];
        let a = design.top_endpoint_coord(net.source);
        let b = net
            .sinks
            .first()
            .and_then(|&s| design.top_endpoint_coord(s));
        if let (Some(a), Some(b)) = (a, b) {
            let stages = (a.manhattan(&b).div_ceil(WIRE_PIPELINE_SPACING)).max(1);
            design.top_nets_mut()[ni].pipeline_stages = stages;
            extra += u64::from(stages - 1);
        }
    }
    extra
}

/// Options for the architecture-optimization phase.
#[derive(Debug, Clone, Copy)]
pub struct ArchOptOptions {
    pub granularity: Granularity,
    pub placer: ComponentPlacerOptions,
    pub route: RouteOptions,
}

impl Default for ArchOptOptions {
    fn default() -> Self {
        ArchOptOptions {
            granularity: Granularity::Layer,
            placer: ComponentPlacerOptions::default(),
            route: RouteOptions::default(),
        }
    }
}

/// Report from the pre-implemented flow.
#[derive(Debug, Clone)]
pub struct PreImplReport {
    /// Composition details (component signatures, placement costs).
    pub compose: ComposeReport,
    /// Backend report for the final inter-component routing.
    pub compile: CompileReport,
    /// Wall-clock spent stitching with the RapidWright analog.
    pub stitch_time: Duration,
    /// Wall-clock spent on inter-component routing + analysis.
    pub route_time: Duration,
    /// Latency model outputs for the assembled accelerator.
    pub latency: LatencyReport,
    /// Aggregated telemetry of this run — present when the config was
    /// built with [`FlowConfig::with_report_capture`]. Folded from the
    /// captured event stream *after* the flow's own `flow_done` point, so
    /// it covers the whole run.
    pub run_report: Option<pi_obs::agg::RunReport>,
    /// Lint report over the composed design — present when the config
    /// carries a lint policy ([`FlowConfig::with_lint`]). A gate-tripping
    /// report never lands here: the flow fails with
    /// [`crate::FlowError::LintFailed`] instead.
    pub lint: Option<pi_lint::LintReport>,
}

impl PreImplReport {
    /// Total generation time (the paper's Fig. 6 bar).
    pub fn total_time(&self) -> Duration {
        self.stitch_time + self.route_time
    }

    /// Fraction of total time spent in stitching (paper: 5 % for LeNet,
    /// 9 % for VGG).
    pub fn stitch_share(&self) -> f64 {
        let total = self.total_time().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.stitch_time.as_secs_f64() / total
        }
    }

    /// Deterministic projection of this report as JSON: every field a
    /// re-run with the same config must reproduce byte-for-byte, and
    /// nothing wall-clock (stitch/route durations, phase times, and power —
    /// which feeds off phase activity — are excluded). The cache
    /// determinism tests and the warm/cold CI smoke compare these strings
    /// to assert a warm-cache run assembles the identical accelerator.
    pub fn deterministic_summary(&self) -> String {
        use serde_json::Value;
        let anchors: Vec<Value> = self
            .compose
            .placement
            .anchors
            .iter()
            .map(|a| Value::Seq(vec![Value::U64(a.col as u64), Value::U64(a.row as u64)]))
            .collect();
        let signatures: Vec<Value> = self
            .compose
            .component_signatures
            .iter()
            .map(|s| Value::Str(s.clone()))
            .collect();
        let compose = Value::Map(vec![
            ("component_signatures".into(), Value::Seq(signatures)),
            ("anchors".into(), Value::Seq(anchors)),
            (
                "timing_cost".into(),
                Value::F64(self.compose.placement.timing_cost),
            ),
            (
                "congestion_cost".into(),
                Value::F64(self.compose.placement.congestion_cost),
            ),
            (
                "retries".into(),
                Value::U64(self.compose.placement.retries as u64),
            ),
            (
                "stitched_nets".into(),
                Value::U64(self.compose.stitched_nets as u64),
            ),
        ]);
        let c = &self.compile;
        let compile = Value::Map(vec![
            ("design_name".into(), Value::Str(c.design_name.clone())),
            ("device_name".into(), Value::Str(c.device_name.clone())),
            (
                "critical_path_ps".into(),
                Value::F64(c.timing.critical_path_ps),
            ),
            ("fmax_mhz".into(), Value::F64(c.timing.fmax_mhz)),
            ("resources".into(), serde_json::to_value(&c.resources)),
            (
                "route_stats".into(),
                Value::Map(vec![
                    (
                        "routed_nets".into(),
                        Value::U64(c.route_stats.routed_nets as u64),
                    ),
                    (
                        "trivial_nets".into(),
                        Value::U64(c.route_stats.trivial_nets as u64),
                    ),
                    ("wirelength".into(), Value::U64(c.route_stats.wirelength)),
                    (
                        "overused_tiles".into(),
                        Value::U64(c.route_stats.overused_tiles as u64),
                    ),
                    (
                        "iterations".into(),
                        Value::U64(c.route_stats.iterations as u64),
                    ),
                ]),
            ),
            ("total_wirelength".into(), Value::U64(c.total_wirelength)),
        ]);
        let latency = Value::Map(vec![
            (
                "pipeline_cycles".into(),
                Value::U64(self.latency.pipeline_cycles),
            ),
            ("pipeline_ns".into(), Value::F64(self.latency.pipeline_ns)),
            ("frame_cycles".into(), Value::U64(self.latency.frame_cycles)),
            ("frame_ms".into(), Value::F64(self.latency.frame_ms)),
            ("fmax_mhz".into(), Value::F64(self.latency.fmax_mhz)),
        ]);
        let mut root = vec![
            ("compose".into(), compose),
            ("compile".into(), compile),
            ("latency".into(), latency),
        ];
        // Only present when a lint policy ran — summaries of lint-less
        // runs (the warm/cold CI smoke, cache determinism tests) are
        // unchanged by the lint subsystem existing.
        if let Some(lint) = &self.lint {
            let by_code: Vec<Value> = lint
                .by_code()
                .into_iter()
                .map(|(code, n)| {
                    Value::Map(vec![
                        ("code".into(), Value::Str(code.to_string())),
                        ("count".into(), Value::U64(n as u64)),
                    ])
                })
                .collect();
            root.push((
                "lint".into(),
                Value::Map(vec![
                    ("errors".into(), Value::U64(lint.errors() as u64)),
                    ("warnings".into(), Value::U64(lint.warnings() as u64)),
                    ("waived".into(), Value::U64(lint.waived as u64)),
                    ("allowed".into(), Value::U64(lint.allowed as u64)),
                    ("by_code".into(), Value::Seq(by_code)),
                ]),
            ));
        }
        serde_json::to_string_pretty(&Value::Map(root)).expect("summary serializes")
    }
}

/// Run the architecture-optimization phase: compose from the database, then
/// route the inter-component nets. Telemetry goes to the sink the config
/// carries: `stitch::placer` / `stitch::compose` during composition,
/// `pnr::route` during final routing, and a `flow::arch_opt` summary.
pub fn run_pre_implemented_flow(
    network: &Network,
    db: &ComponentDb,
    device: &Device,
    cfg: &FlowConfig,
) -> Result<(Design, PreImplReport), FlowError> {
    cfg.apply_parallelism();
    crate::function_opt::lint_gate_network(network, cfg)?;
    let opts = cfg.arch_opt_options();
    let obs = cfg.obs();
    let arch = obs.scoped("flow::arch_opt");

    let t0 = Instant::now();
    let stitch_span = arch.span("stitch");
    // FIFO auto-sizing: re-run the dataflow analysis (the same one the
    // lint gate consulted) and hand its per-edge minimum depths to the
    // stitcher, which installs them on the link nets it creates. Without
    // the knob every link keeps `DEFAULT_LINK_FIFO_DEPTH`.
    let edge_depths = if cfg.fifo_autosize {
        let analysis = pi_lint::analyze_dataflow(network, opts.granularity);
        let depths = analysis.depth_map();
        if arch.enabled() {
            arch.counter("autosized_links", depths.len() as u64);
            arch.counter("autosized_max_depth", analysis.max_min_depth());
        }
        Some(depths)
    } else {
        None
    };
    let (mut design, compose_report) = compose_sized_obs(
        network,
        db,
        device,
        &ComposeOptions {
            granularity: opts.granularity,
            placer: opts.placer,
        },
        edge_depths.as_ref(),
        obs,
    )?;
    let extra_pipeline_cycles = pipeline_top_nets(&mut design);
    stitch_span.end();
    let stitch_time = t0.elapsed();

    let t1 = Instant::now();
    let route_span = arch.span("route");
    let compile = route_assembled_obs(&mut design, device, &opts.route, obs)?;
    route_span.end();
    let route_time = t1.elapsed();

    // Design-rule and structural checking. With a lint policy configured
    // the full design pass runs (structure + per-instance netlist lints +
    // the physical DRC folded into PL031x diagnostics) and gates via
    // `LintFailed`; without one, the raw physical DRC runs exactly as it
    // always has and aborts via `DrcFailed`. Any violation of either kind
    // on a composed design is a flow bug, never an input error.
    let lint = if let Some(lc) = &cfg.lint {
        let engine = pi_lint::LintEngine::new(lc.clone());
        let report = engine.lint_design(&design, device, obs);
        if report.gate(lc.deny_warnings) {
            return Err(crate::FlowError::LintFailed(report));
        }
        Some(report)
    } else {
        let violations = pi_stitch::check_design(&design, device)?;
        if !violations.is_empty() {
            return Err(crate::FlowError::DrcFailed(violations));
        }
        None
    };

    let latency = LatencyReport::for_assembled(
        network,
        opts.granularity,
        db,
        compile.timing.fmax_mhz,
        extra_pipeline_cycles,
    )?;

    let mut report = PreImplReport {
        compose: compose_report,
        compile,
        stitch_time,
        route_time,
        latency,
        run_report: None,
        lint,
    };
    if arch.enabled() {
        arch.point(
            "flow_done",
            &[
                (
                    "components",
                    report.compose.component_signatures.len().into(),
                ),
                ("stitched_nets", report.compose.stitched_nets.into()),
                ("fmax_mhz", report.compile.timing.fmax_mhz.into()),
                ("pipeline_cycles", report.latency.pipeline_cycles.into()),
                // Wall-clock-derived: present in the trace, stripped from
                // the determinism comparison form.
                ("wallclock_stitch_s", stitch_time.as_secs_f64().into()),
                ("wallclock_route_s", route_time.as_secs_f64().into()),
                ("wallclock_stitch_share", report.stitch_share().into()),
            ],
        );
    }
    report.run_report = cfg.run_report();
    Ok((design, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function_opt::build_component_db;
    use pi_cnn::models;

    fn toy_setup() -> (Device, Network, ComponentDb) {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let cfg = FlowConfig::new().with_seeds([1]);
        let (db, _) = build_component_db(&network, &device, &cfg).unwrap();
        (device, network, db)
    }

    use pi_cnn::Network;

    #[test]
    fn flow_produces_routed_design() {
        let (device, network, db) = toy_setup();
        let (design, report) =
            run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new()).unwrap();
        assert!(design.fully_routed());
        assert!(report.compile.timing.fmax_mhz > 100.0);
        assert_eq!(report.compose.stitched_nets, 2);
        assert!(report.latency.pipeline_ns > 0.0);
        assert!(report.total_time() > Duration::ZERO);
        assert!(report.stitch_share() > 0.0 && report.stitch_share() < 1.0);
    }

    #[test]
    fn long_top_nets_get_pipeline_stages() {
        let (device, network, db) = toy_setup();
        let (design, report) =
            run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new()).unwrap();
        let mut expected_extra = 0u64;
        for net in design.top_nets() {
            let a = design.top_endpoint_coord(net.source).expect("planned");
            let b = design.top_endpoint_coord(net.sinks[0]).expect("planned");
            let stages = a.manhattan(&b).div_ceil(WIRE_PIPELINE_SPACING).max(1);
            assert_eq!(net.pipeline_stages, stages, "net {}", net.name);
            expected_extra += u64::from(stages - 1);
        }
        // The latency model charges exactly the inserted registers.
        let base: u64 = report
            .latency
            .per_component
            .iter()
            .map(|c| c.depth_cycles)
            .sum();
        assert_eq!(report.latency.pipeline_cycles, base + expected_extra);
    }

    #[test]
    fn flow_populates_run_report_under_capture() {
        let (device, network, db) = toy_setup();
        let cfg = FlowConfig::new().with_report_capture();
        let (_, report) = run_pre_implemented_flow(&network, &db, &device, &cfg).unwrap();
        let rr = report.run_report.as_ref().expect("capture installed");
        assert!(rr.events > 0);
        assert!(rr.spans.contains_key("flow::arch_opt:stitch"));
        assert!(
            rr.spans.contains_key(
                "flow::arch_opt:route/pnr::compile:route_design/pnr::route:pathfinder"
            ),
            "router span nests under the backend's route_design span: {:?}",
            rr.spans.keys().collect::<Vec<_>>()
        );
        assert!(!rr.route.is_empty(), "pathfinder trace captured");
        // The flow_done point itself is in the report.
        assert_eq!(rr.points["flow::arch_opt:flow_done"].count, 1);
        // Without capture there is no report.
        let (_, report) =
            run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new()).unwrap();
        assert!(report.run_report.is_none());
    }

    #[test]
    fn flow_with_lint_enabled_passes_clean_and_reports() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let cfg = FlowConfig::new()
            .with_seeds([1])
            .with_lint(pi_lint::LintConfig::new().with_deny_warnings(true));
        // Both stage gates run: network + db during function optimization,
        // the full design pass during architecture optimization.
        let (db, _) = build_component_db(&network, &device, &cfg).unwrap();
        let (design, report) = run_pre_implemented_flow(&network, &db, &device, &cfg).unwrap();
        assert!(design.fully_routed());
        let lint = report.lint.as_ref().expect("lint policy ran");
        assert!(lint.is_clean(), "{}", lint.render_text());
        assert!(
            report.deterministic_summary().contains("\"lint\""),
            "summary gains a lint section when lint ran"
        );
        // Without a policy the summary is unchanged.
        let (_, plain) =
            run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new().with_seeds([1]))
                .unwrap();
        assert!(plain.lint.is_none());
        assert!(!plain.deterministic_summary().contains("\"lint\""));
    }

    #[test]
    fn lint_gate_trips_on_contract_break() {
        let (device, network, db) = toy_setup();
        // Corrupt one checkpoint through the serde envelope (the in-memory
        // module is locked): unlock it, which breaks PL0302 and PL0317.
        let mut broken = ComponentDb::new();
        for cp in db.checkpoints() {
            let mut json = serde_json::to_value(cp);
            json["module"]["locked"] = serde_json::Value::Bool(false);
            broken.insert(serde_json::from_value(json).expect("checkpoint round-trips"));
        }
        let cfg = FlowConfig::new()
            .with_seeds([1])
            .with_lint(pi_lint::LintConfig::new());
        let err = crate::function_opt::extend_component_db(&mut broken, &network, &device, &cfg)
            .unwrap_err();
        match err {
            crate::FlowError::LintFailed(report) => {
                assert!(
                    report.diagnostics.iter().any(|d| d.code == "PL0302"),
                    "{report:?}"
                );
            }
            other => panic!("expected LintFailed, got {other}"),
        }
    }

    #[test]
    fn assembled_fmax_tracks_slowest_component() {
        let (device, network, db) = toy_setup();
        let (_, report) =
            run_pre_implemented_flow(&network, &db, &device, &FlowConfig::new()).unwrap();
        let slowest = db
            .checkpoints()
            .map(|cp| cp.meta.fmax_mhz)
            .fold(f64::INFINITY, f64::min);
        // The paper: "the frequency of the pre-built design is upper
        // bounded by the slowest component". Inter-component wires may only
        // push it below that bound.
        assert!(
            report.compile.timing.fmax_mhz <= slowest * 1.001,
            "assembled {} > slowest component {}",
            report.compile.timing.fmax_mhz,
            slowest
        );
    }
}
