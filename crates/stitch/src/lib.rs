//! The RapidWright-analog layer: everything the paper's hardware generator
//! does between "pre-built checkpoints exist" and "Vivado routes the
//! stitched design".
//!
//! * [`db`] — the database of pre-built checkpoints, keyed by component
//!   signature, with a directory-backed persistent form (a folder of DCPs).
//! * [`relocate`] — replicate/relocate a locked placed-and-routed module to
//!   another chip location, validating columnar compatibility.
//! * [`placer`] — congestion-aware timing-driven placement of whole
//!   components (Eq. 1–3 of the paper, with the unplace-and-retry loop).
//! * [`compose`] — Algorithm 1: BFS the network DFG, pull matching
//!   checkpoints, place them, and stitch inter-component nets between
//!   partition pins.

pub mod cache;
pub mod compose;
pub mod db;
pub mod lock;
pub mod placer;
pub mod relocate;
pub mod verify;

pub use cache::{cache_key, CacheLookup, DbCache, CACHE_SCOPE, MANIFEST_FILE, MANIFEST_VERSION};
pub use compose::{compose, compose_obs, compose_sized_obs, ComposeOptions, ComposeReport};
pub use db::ComponentDb;
pub use lock::{LockFile, DEFAULT_LOCK_TIMEOUT, LOCK_FILE};
pub use placer::{
    place_components, place_components_obs, ComponentPlacerOptions, PlacementOutcome,
};
pub use relocate::{relocate_to, valid_anchor_columns};
pub use verify::{check_design, Violation};

/// Errors from stitching.
#[derive(Debug)]
pub enum StitchError {
    /// The database has no checkpoint for a required component signature.
    MissingComponent(String),
    /// No legal, threshold-satisfying location for a component.
    NoValidLocation {
        component: String,
        tried: usize,
    },
    /// The requested relocation target violates columnar compatibility.
    IncompatibleRelocation {
        component: String,
        dcol: i32,
    },
    /// A checkpoint targets a different device than the composition.
    DeviceMismatch {
        checkpoint: String,
        want: String,
    },
    /// The cache-manifest advisory lock stayed held by a live process for
    /// the whole acquisition window (see [`lock::LockFile`]).
    LockTimeout {
        path: std::path::PathBuf,
        holder: String,
    },
    Netlist(pi_netlist::NetlistError),
    Fabric(pi_fabric::FabricError),
    Cnn(pi_cnn::CnnError),
    Io(std::io::Error),
}

impl std::fmt::Display for StitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StitchError::MissingComponent(sig) => {
                write!(f, "component database has no checkpoint for '{sig}'")
            }
            StitchError::NoValidLocation { component, tried } => write!(
                f,
                "no valid location for component '{component}' after {tried} candidates"
            ),
            StitchError::IncompatibleRelocation { component, dcol } => write!(
                f,
                "relocating '{component}' by {dcol} columns breaks column compatibility"
            ),
            StitchError::DeviceMismatch { checkpoint, want } => write!(
                f,
                "checkpoint '{checkpoint}' targets a different device (composition wants {want})"
            ),
            StitchError::LockTimeout { path, holder } => write!(
                f,
                "cache lock {} held by live process {holder} beyond the timeout",
                path.display()
            ),
            StitchError::Netlist(e) => write!(f, "stitch netlist: {e}"),
            StitchError::Fabric(e) => write!(f, "stitch fabric: {e}"),
            StitchError::Cnn(e) => write!(f, "stitch cnn: {e}"),
            StitchError::Io(e) => write!(f, "stitch io: {e}"),
        }
    }
}

impl std::error::Error for StitchError {}

impl From<pi_netlist::NetlistError> for StitchError {
    fn from(e: pi_netlist::NetlistError) -> Self {
        StitchError::Netlist(e)
    }
}

impl From<pi_fabric::FabricError> for StitchError {
    fn from(e: pi_fabric::FabricError) -> Self {
        StitchError::Fabric(e)
    }
}

impl From<pi_cnn::CnnError> for StitchError {
    fn from(e: pi_cnn::CnnError) -> Self {
        StitchError::Cnn(e)
    }
}

impl From<std::io::Error> for StitchError {
    fn from(e: std::io::Error) -> Self {
        StitchError::Io(e)
    }
}
