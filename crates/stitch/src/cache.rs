//! The persistent, content-addressed component-database cache.
//!
//! The paper's 61–69% productivity gain rests on function optimization
//! being *one-time*: checkpoints are built once and reused across runs and
//! designs. [`DbCache`] is the mechanism that makes that real. A cache
//! directory holds:
//!
//! ```text
//! <db-dir>/
//!   manifest.json        versioned index: key -> file + content hash
//!   objects/             one versioned checkpoint envelope per entry
//!   quarantine/          corrupted / stale entries moved aside, never lost
//! ```
//!
//! * **Keying** — [`cache_key`] hashes (component signature, device part,
//!   implementation-affecting `FlowConfig` knobs) through the stable FNV
//!   hasher, so any knob change that would alter a checkpoint changes the
//!   key and misses cleanly instead of serving a stale artifact.
//! * **Content addressing** — each object file name carries its key, and
//!   the manifest records the checkpoint's content hash; a loaded entry is
//!   verified against it before being served.
//! * **Atomicity** — objects and the manifest are written to a temp file
//!   and renamed into place, so a crash mid-write can at worst leave a
//!   stray temp file, never a half-written entry behind a valid name.
//! * **Self-healing** — truncated files, missing files, hash mismatches,
//!   stale format versions and undecodable manifests are *quarantined*
//!   (moved into `quarantine/`, dropped from the manifest) and reported as
//!   misses; the flow then rebuilds them. Corruption is never a panic and
//!   never an error the caller must handle.
//!
//! Every cache interaction emits telemetry under the `stitch::db_cache`
//! scope (hits with bytes loaded, misses, invalidations with a reason,
//! stores), so `--trace` output shows exactly what the cache did.

use crate::db::sanitize;
use crate::StitchError;
use pi_netlist::{Checkpoint, StableHasher, CHECKPOINT_FORMAT_VERSION};
use pi_obs::Obs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// On-disk manifest format version; bumped when the manifest shape
/// changes. A mismatched manifest is quarantined wholesale and the cache
/// restarts empty (entries rebuild on demand).
pub const MANIFEST_VERSION: u32 = 1;

/// File names inside the cache root.
pub const MANIFEST_FILE: &str = "manifest.json";
const OBJECTS_DIR: &str = "objects";
const QUARANTINE_DIR: &str = "quarantine";

/// Telemetry scope every cache event is emitted under.
pub const CACHE_SCOPE: &str = "stitch::db_cache";

/// One manifest row: a cache key mapped to its verified object file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    /// [`cache_key`] hex — the content-addressed identity of the entry.
    key: String,
    /// The component signature the checkpoint implements.
    signature: String,
    /// Object file name, relative to `objects/`.
    file: String,
    /// Expected [`Checkpoint::content_hash_hex`] of the payload.
    content_hash: String,
    /// [`CHECKPOINT_FORMAT_VERSION`] the entry was written with.
    format_version: u32,
    /// Device part the checkpoint targets.
    device: String,
    /// Serialized size, for the bytes-loaded telemetry.
    bytes: u64,
}

/// The serialized manifest: versions plus the sorted entry list.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    manifest_version: u32,
    format_version: u32,
    entries: Vec<ManifestEntry>,
}

/// Result of a cache lookup. Invalidated entries have already been
/// quarantined; both `Miss` and `Invalidated` mean "build it".
#[derive(Debug)]
pub enum CacheLookup {
    /// Entry present, verified, loaded.
    Hit {
        checkpoint: Box<Checkpoint>,
        bytes: u64,
    },
    /// No entry under this key.
    Miss,
    /// Entry existed but failed verification and was quarantined.
    Invalidated { reason: &'static str },
}

/// Compute the cache key for a component: a stable hash of everything that
/// determines the pre-implemented artifact — the component signature, the
/// device part, and the caller's implementation-knob fingerprint (see
/// `FlowConfig::cache_fingerprint`). Hex, fixed width, filesystem-safe.
pub fn cache_key(signature: &str, device: &str, knobs_fingerprint: u64) -> String {
    let mut h = StableHasher::new();
    h.write_str(signature);
    h.write_str(device);
    h.write_u64(knobs_fingerprint);
    format!("{:016x}", h.finish())
}

/// A persistent component-checkpoint cache rooted at a directory.
#[derive(Debug)]
pub struct DbCache {
    root: PathBuf,
    entries: BTreeMap<String, ManifestEntry>,
}

impl DbCache {
    /// Open (or create) a cache at `root`. An undecodable or
    /// version-mismatched manifest is quarantined and the cache starts
    /// empty — opening never fails on corruption, only on real I/O errors
    /// such as an uncreatable directory.
    pub fn open(root: impl Into<PathBuf>, obs: &Obs) -> Result<DbCache, StitchError> {
        let root = root.into();
        std::fs::create_dir_all(root.join(OBJECTS_DIR))?;
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let manifest_path = root.join(MANIFEST_FILE);
        let mut entries = BTreeMap::new();
        if manifest_path.exists() {
            match std::fs::read_to_string(&manifest_path)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str::<Manifest>(&text).map_err(|e| e.to_string()))
            {
                Ok(manifest)
                    if manifest.manifest_version == MANIFEST_VERSION
                        && manifest.format_version == CHECKPOINT_FORMAT_VERSION =>
                {
                    for e in manifest.entries {
                        entries.insert(e.key.clone(), e);
                    }
                }
                Ok(_) => {
                    quarantine_file(&root, &manifest_path, MANIFEST_FILE);
                    if cache_obs.enabled() {
                        cache_obs.point(
                            "manifest_quarantined",
                            &[("reason", "stale_version".into())],
                        );
                    }
                }
                Err(_) => {
                    quarantine_file(&root, &manifest_path, MANIFEST_FILE);
                    if cache_obs.enabled() {
                        cache_obs.point("manifest_quarantined", &[("reason", "corrupt".into())]);
                    }
                }
            }
        }
        Ok(DbCache { root, entries })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All cached keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// The signature recorded for a key, if cached.
    pub fn signature_of(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|e| e.signature.as_str())
    }

    /// Look up a key: load, verify format version and content hash, and
    /// serve the checkpoint. Any verification failure quarantines the
    /// entry and reports `Invalidated` — corruption on disk can slow the
    /// next run down (it rebuilds), but can never crash it or feed it a
    /// wrong artifact.
    pub fn lookup(&mut self, key: &str, obs: &Obs) -> CacheLookup {
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let Some(entry) = self.entries.get(key) else {
            if cache_obs.enabled() {
                cache_obs.point("cache_miss", &[("key", key.into())]);
            }
            return CacheLookup::Miss;
        };
        let path = self.root.join(OBJECTS_DIR).join(&entry.file);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return self.invalidate(key, "missing_file", &cache_obs),
        };
        let checkpoint = match Checkpoint::from_versioned_json(&text) {
            Ok(cp) => cp,
            Err(pi_netlist::NetlistError::FormatVersion { .. }) => {
                return self.invalidate(key, "stale_version", &cache_obs)
            }
            Err(_) => return self.invalidate(key, "corrupt", &cache_obs),
        };
        if checkpoint.content_hash_hex() != entry.content_hash {
            return self.invalidate(key, "hash_mismatch", &cache_obs);
        }
        let bytes = text.len() as u64;
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_hit",
                &[
                    ("key", key.into()),
                    ("signature", entry.signature.as_str().into()),
                    ("bytes", bytes.into()),
                ],
            );
        }
        CacheLookup::Hit {
            checkpoint: Box::new(checkpoint),
            bytes,
        }
    }

    /// Insert (or replace) a checkpoint under a key: atomic object write,
    /// then atomic manifest rewrite. On success the entry survives process
    /// death at any point.
    pub fn insert(&mut self, key: &str, cp: &Checkpoint, obs: &Obs) -> Result<(), StitchError> {
        let json = cp.to_versioned_json()?;
        let mut prefix = sanitize(&cp.meta.signature);
        prefix.truncate(64);
        let file = format!("{prefix}-{key}.dcp.json");
        let path = self.root.join(OBJECTS_DIR).join(&file);
        write_atomic(&path, &json)?;
        let bytes = json.len() as u64;
        let entry = ManifestEntry {
            key: key.to_string(),
            signature: cp.meta.signature.clone(),
            file,
            content_hash: cp.content_hash_hex(),
            format_version: CHECKPOINT_FORMAT_VERSION,
            device: cp.meta.device.clone(),
            bytes,
        };
        // Replacing a key whose signature changed leaves the old object
        // file orphaned; remove it so the objects dir mirrors the manifest.
        if let Some(old) = self.entries.insert(key.to_string(), entry) {
            if old.file != self.entries[key].file {
                let _ = std::fs::remove_file(self.root.join(OBJECTS_DIR).join(&old.file));
            }
        }
        self.persist_manifest()?;
        let cache_obs = obs.scoped(CACHE_SCOPE);
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_store",
                &[
                    ("key", key.into()),
                    ("signature", cp.meta.signature.as_str().into()),
                    ("bytes", bytes.into()),
                ],
            );
        }
        Ok(())
    }

    /// Remove a key and its object file. Returns whether it existed.
    pub fn evict(&mut self, key: &str, obs: &Obs) -> Result<bool, StitchError> {
        let Some(entry) = self.entries.remove(key) else {
            return Ok(false);
        };
        let _ = std::fs::remove_file(self.root.join(OBJECTS_DIR).join(&entry.file));
        self.persist_manifest()?;
        let cache_obs = obs.scoped(CACHE_SCOPE);
        if cache_obs.enabled() {
            cache_obs.point("cache_evict", &[("key", key.into())]);
        }
        Ok(true)
    }

    /// Drop the entry, move its object file into `quarantine/`, persist
    /// the shrunken manifest, and report. Best-effort on the filesystem
    /// side: a failing rename degrades to deletion, a failing manifest
    /// write leaves a row the next lookup will re-invalidate — recovery
    /// never introduces a new failure mode.
    fn invalidate(&mut self, key: &str, reason: &'static str, cache_obs: &Obs) -> CacheLookup {
        if let Some(entry) = self.entries.remove(key) {
            let path = self.root.join(OBJECTS_DIR).join(&entry.file);
            if path.exists() {
                quarantine_file(&self.root, &path, &entry.file);
            }
            let _ = self.persist_manifest();
        }
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_invalidate",
                &[("key", key.into()), ("reason", reason.into())],
            );
        }
        CacheLookup::Invalidated { reason }
    }

    /// Atomically rewrite `manifest.json` from the in-memory map. BTreeMap
    /// order keeps the bytes deterministic for identical contents.
    fn persist_manifest(&self) -> Result<(), StitchError> {
        let manifest = Manifest {
            manifest_version: MANIFEST_VERSION,
            format_version: CHECKPOINT_FORMAT_VERSION,
            entries: self.entries.values().cloned().collect(),
        };
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| pi_netlist::NetlistError::Decode(e.to_string()))?;
        write_atomic(&self.root.join(MANIFEST_FILE), &json)?;
        Ok(())
    }
}

/// Write-then-rename: the contents land under a temp name first, so a
/// crash can never leave a torn file behind the real name.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_file_name(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("x")
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Move a file into `<root>/quarantine/`, degrading to deletion if the
/// rename fails (cross-device, permissions); both outcomes take the bad
/// entry out of service.
fn quarantine_file(root: &Path, path: &Path, name: &str) {
    let qdir = root.join(QUARANTINE_DIR);
    let _ = std::fs::create_dir_all(&qdir);
    if std::fs::rename(path, qdir.join(name)).is_err() {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_fabric::Pblock;
    use pi_netlist::{Cell, CellKind, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn checkpoint(sig: &str) -> Checkpoint {
        let mut b = ModuleBuilder::new(sig);
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        Checkpoint {
            meta: CheckpointMeta {
                signature: sig.to_string(),
                fmax_mhz: 500.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 4, 0, 4),
                device: "test-part".to_string(),
                latency_cycles: 10,
            },
            module: m,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pi_cache_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn insert_then_lookup_across_reopen() {
        let root = tmp_root("reopen");
        let obs = Obs::null();
        let cp = checkpoint("conv_k3s1p0co4__in1x16x16");
        let key = cache_key(&cp.meta.signature, "test-part", 7);
        {
            let mut cache = DbCache::open(&root, &obs).unwrap();
            assert!(matches!(cache.lookup(&key, &obs), CacheLookup::Miss));
            cache.insert(&key, &cp, &obs).unwrap();
            assert!(cache.contains(&key));
        }
        let mut cache = DbCache::open(&root, &obs).unwrap();
        assert_eq!(cache.len(), 1);
        match cache.lookup(&key, &obs) {
            CacheLookup::Hit { checkpoint, bytes } => {
                assert_eq!(checkpoint.meta.signature, cp.meta.signature);
                assert_eq!(checkpoint.content_hash(), cp.content_hash());
                assert!(bytes > 0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn keys_separate_by_fingerprint_and_device() {
        let sig = "conv_k3s1p0co4__in1x16x16";
        let base = cache_key(sig, "test-part", 7);
        assert_eq!(base, cache_key(sig, "test-part", 7));
        assert_ne!(base, cache_key(sig, "test-part", 8));
        assert_ne!(base, cache_key(sig, "xcku5p-like", 7));
        assert_ne!(base, cache_key("other_sig", "test-part", 7));
    }

    #[test]
    fn corrupt_manifest_resets_empty_and_quarantines() {
        let root = tmp_root("badmanifest");
        let obs = Obs::null();
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(MANIFEST_FILE), "{ not a manifest").unwrap();
        let cache = DbCache::open(&root, &obs).unwrap();
        assert!(cache.is_empty());
        assert!(root.join(QUARANTINE_DIR).join(MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn eviction_removes_entry_and_file() {
        let root = tmp_root("evict");
        let obs = Obs::null();
        let cp = checkpoint("fc_o10__in84");
        let key = cache_key(&cp.meta.signature, "test-part", 1);
        let mut cache = DbCache::open(&root, &obs).unwrap();
        cache.insert(&key, &cp, &obs).unwrap();
        assert!(cache.evict(&key, &obs).unwrap());
        assert!(!cache.evict(&key, &obs).unwrap());
        let reopened = DbCache::open(&root, &obs).unwrap();
        assert!(reopened.is_empty());
        let objects: Vec<_> = std::fs::read_dir(root.join(OBJECTS_DIR)).unwrap().collect();
        assert!(objects.is_empty(), "object file must be deleted");
        std::fs::remove_dir_all(&root).ok();
    }
}
