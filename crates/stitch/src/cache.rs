//! The persistent, content-addressed component-database cache.
//!
//! The paper's 61–69% productivity gain rests on function optimization
//! being *one-time*: checkpoints are built once and reused across runs and
//! designs. [`DbCache`] is the mechanism that makes that real. A cache
//! directory holds:
//!
//! ```text
//! <db-dir>/
//!   manifest.json        versioned index: key -> file + content hash
//!   objects/             one versioned checkpoint envelope per entry
//!   quarantine/          corrupted / stale entries moved aside, never lost
//! ```
//!
//! * **Keying** — [`cache_key`] hashes (component signature, device part,
//!   implementation-affecting `FlowConfig` knobs) through the stable FNV
//!   hasher, so any knob change that would alter a checkpoint changes the
//!   key and misses cleanly instead of serving a stale artifact.
//! * **Content addressing** — each object file name carries its key, and
//!   the manifest records the checkpoint's content hash; a loaded entry is
//!   verified against it before being served.
//! * **Atomicity** — objects and the manifest are written to a temp file
//!   and renamed into place, so a crash mid-write can at worst leave a
//!   stray temp file, never a half-written entry behind a valid name.
//! * **Self-healing** — truncated files, missing files, hash mismatches,
//!   stale format versions and undecodable manifests are *quarantined*
//!   (moved into `quarantine/`, dropped from the manifest) and reported as
//!   misses; the flow then rebuilds them. Corruption is never a panic and
//!   never an error the caller must handle.
//!
//! * **Cross-process safety** — every manifest read-modify-write runs
//!   under the advisory lock file (`manifest.lock`, see [`crate::lock`])
//!   and re-reads the on-disk manifest before applying its own mutation,
//!   so two processes sharing one cache directory can never silently drop
//!   each other's entries. Stale locks left by killed processes are
//!   detected (dead PID) and stolen; live contention is bounded by a
//!   timeout, never a deadlock.
//! * **Eviction** — with a byte budget ([`DbCache::open_with_budget`]),
//!   inserts that push the cache over budget evict least-recently-used
//!   entries (recency is a persisted logical generation counter, not wall
//!   clock) until it fits again; the entry being inserted is never the
//!   victim of its own insert.
//!
//! Every cache interaction emits telemetry under the `stitch::db_cache`
//! scope (hits with bytes loaded, misses, invalidations with a reason,
//! stores, budget evictions), so `--trace` output shows exactly what the
//! cache did.

use crate::db::sanitize;
use crate::lock::{LockFile, DEFAULT_LOCK_TIMEOUT};
use crate::StitchError;
use pi_netlist::{Checkpoint, StableHasher, CHECKPOINT_FORMAT_VERSION};
use pi_obs::Obs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// On-disk manifest format version; bumped when the manifest shape
/// changes. A mismatched manifest is quarantined wholesale and the cache
/// restarts empty (entries rebuild on demand). Version 2 added the
/// `generation` clock and per-entry `last_used` recency for LRU eviction.
pub const MANIFEST_VERSION: u32 = 2;

/// File names inside the cache root.
pub const MANIFEST_FILE: &str = "manifest.json";
const OBJECTS_DIR: &str = "objects";
const QUARANTINE_DIR: &str = "quarantine";

/// Telemetry scope every cache event is emitted under.
pub const CACHE_SCOPE: &str = "stitch::db_cache";

/// One manifest row: a cache key mapped to its verified object file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    /// [`cache_key`] hex — the content-addressed identity of the entry.
    key: String,
    /// The component signature the checkpoint implements.
    signature: String,
    /// Object file name, relative to `objects/`.
    file: String,
    /// Expected [`Checkpoint::content_hash_hex`] of the payload.
    content_hash: String,
    /// [`CHECKPOINT_FORMAT_VERSION`] the entry was written with.
    format_version: u32,
    /// Device part the checkpoint targets.
    device: String,
    /// Serialized size, for the bytes-loaded telemetry and the eviction
    /// budget.
    bytes: u64,
    /// Logical recency: the manifest `generation` at the entry's last hit
    /// or store. Deterministic (no wall clock); orders LRU eviction.
    #[serde(default = "zero_u64")]
    last_used: u64,
}

fn zero_u64() -> u64 {
    0
}

/// The serialized manifest: versions, the logical clock, and the sorted
/// entry list.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    manifest_version: u32,
    format_version: u32,
    /// Monotonic logical clock; bumped on every hit/store and stamped into
    /// the touched entry's `last_used`.
    #[serde(default = "zero_u64")]
    generation: u64,
    entries: Vec<ManifestEntry>,
}

/// Result of a cache lookup. Invalidated entries have already been
/// quarantined; both `Miss` and `Invalidated` mean "build it".
#[derive(Debug)]
pub enum CacheLookup {
    /// Entry present, verified, loaded.
    Hit {
        checkpoint: Box<Checkpoint>,
        bytes: u64,
    },
    /// No entry under this key.
    Miss,
    /// Entry existed but failed verification and was quarantined.
    Invalidated { reason: &'static str },
}

/// Compute the cache key for a component: a stable hash of everything that
/// determines the pre-implemented artifact — the component signature, the
/// device part, and the caller's implementation-knob fingerprint (see
/// `FlowConfig::cache_fingerprint`). Hex, fixed width, filesystem-safe.
pub fn cache_key(signature: &str, device: &str, knobs_fingerprint: u64) -> String {
    let mut h = StableHasher::new();
    h.write_str(signature);
    h.write_str(device);
    h.write_u64(knobs_fingerprint);
    format!("{:016x}", h.finish())
}

/// A persistent component-checkpoint cache rooted at a directory.
#[derive(Debug)]
pub struct DbCache {
    root: PathBuf,
    entries: BTreeMap<String, ManifestEntry>,
    /// Logical recency clock mirrored from the manifest.
    generation: u64,
    /// Byte budget for the objects tier; `None` = unbounded.
    budget_bytes: Option<u64>,
    /// Bound on waiting for a live manifest lock holder.
    lock_timeout: Duration,
    /// Budget evictions performed by this handle (telemetry/stats).
    budget_evictions: u64,
}

impl DbCache {
    /// Open (or create) an unbounded cache at `root`. An undecodable or
    /// version-mismatched manifest is quarantined and the cache starts
    /// empty — opening never fails on corruption, only on real I/O errors
    /// such as an uncreatable directory.
    pub fn open(root: impl Into<PathBuf>, obs: &Obs) -> Result<DbCache, StitchError> {
        Self::open_with_budget(root, None, obs)
    }

    /// [`DbCache::open`] with an eviction budget: whenever an insert pushes
    /// the total serialized object bytes past `budget_bytes`, least-
    /// recently-used entries are evicted until the cache fits again.
    pub fn open_with_budget(
        root: impl Into<PathBuf>,
        budget_bytes: Option<u64>,
        obs: &Obs,
    ) -> Result<DbCache, StitchError> {
        let root = root.into();
        std::fs::create_dir_all(root.join(OBJECTS_DIR))?;
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let mut cache = DbCache {
            root,
            entries: BTreeMap::new(),
            generation: 0,
            budget_bytes,
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            budget_evictions: 0,
        };
        cache.reload_manifest(&cache_obs);
        Ok(cache)
    }

    /// Override the bound on waiting for a live manifest lock holder.
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout;
        self
    }

    /// Replace the in-memory index with the on-disk manifest (quarantining
    /// a rotten one). Called at open and at the start of every locked
    /// read-modify-write cycle, so concurrent writers always mutate the
    /// latest shared state instead of a stale private copy.
    fn reload_manifest(&mut self, cache_obs: &Obs) {
        let manifest_path = self.root.join(MANIFEST_FILE);
        self.entries.clear();
        if !manifest_path.exists() {
            return;
        }
        match std::fs::read_to_string(&manifest_path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<Manifest>(&text).map_err(|e| e.to_string()))
        {
            Ok(manifest)
                if manifest.manifest_version == MANIFEST_VERSION
                    && manifest.format_version == CHECKPOINT_FORMAT_VERSION =>
            {
                self.generation = self.generation.max(manifest.generation);
                for e in manifest.entries {
                    self.entries.insert(e.key.clone(), e);
                }
            }
            Ok(_) => {
                quarantine_file(&self.root, &manifest_path, MANIFEST_FILE);
                if cache_obs.enabled() {
                    cache_obs.point(
                        "manifest_quarantined",
                        &[("reason", "stale_version".into())],
                    );
                }
            }
            Err(_) => {
                quarantine_file(&self.root, &manifest_path, MANIFEST_FILE);
                if cache_obs.enabled() {
                    cache_obs.point("manifest_quarantined", &[("reason", "corrupt".into())]);
                }
            }
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All cached keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// The signature recorded for a key, if cached.
    pub fn signature_of(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|e| e.signature.as_str())
    }

    /// Look up a key: load, verify format version and content hash, and
    /// serve the checkpoint. Any verification failure quarantines the
    /// entry and reports `Invalidated` — corruption on disk can slow the
    /// next run down (it rebuilds), but can never crash it or feed it a
    /// wrong artifact.
    pub fn lookup(&mut self, key: &str, obs: &Obs) -> CacheLookup {
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let Some(entry) = self.entries.get(key) else {
            if cache_obs.enabled() {
                cache_obs.point("cache_miss", &[("key", key.into())]);
            }
            return CacheLookup::Miss;
        };
        let (file, content_hash, signature) = (
            entry.file.clone(),
            entry.content_hash.clone(),
            entry.signature.clone(),
        );
        let path = self.root.join(OBJECTS_DIR).join(&file);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return self.invalidate(key, "missing_file", &cache_obs),
        };
        let checkpoint = match Checkpoint::from_versioned_json(&text) {
            Ok(cp) => cp,
            Err(pi_netlist::NetlistError::FormatVersion { .. }) => {
                return self.invalidate(key, "stale_version", &cache_obs)
            }
            Err(_) => return self.invalidate(key, "corrupt", &cache_obs),
        };
        if checkpoint.content_hash_hex() != content_hash {
            return self.invalidate(key, "hash_mismatch", &cache_obs);
        }
        let bytes = text.len() as u64;
        // Recency touch: best-effort — LRU ordering is advisory, so a lock
        // timeout degrades to a skipped touch, never a failed lookup.
        let _ = self.mutate_locked(&cache_obs, |cache| {
            let generation = cache.generation + 1;
            if let Some(e) = cache.entries.get_mut(key) {
                cache.generation = generation;
                e.last_used = generation;
            }
            Ok(())
        });
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_hit",
                &[
                    ("key", key.into()),
                    ("signature", signature.as_str().into()),
                    ("bytes", bytes.into()),
                ],
            );
        }
        CacheLookup::Hit {
            checkpoint: Box::new(checkpoint),
            bytes,
        }
    }

    /// Insert (or replace) a checkpoint under a key: atomic object write,
    /// then a locked manifest read-merge-write (see [`crate::lock`]). On
    /// success the entry survives process death at any point, and entries
    /// concurrently inserted by other processes survive this write. With a
    /// budget configured, least-recently-used entries are evicted until
    /// the cache fits (the just-inserted entry is never its own victim).
    pub fn insert(&mut self, key: &str, cp: &Checkpoint, obs: &Obs) -> Result<(), StitchError> {
        let json = cp.to_versioned_json()?;
        let mut prefix = sanitize(&cp.meta.signature);
        prefix.truncate(64);
        let file = format!("{prefix}-{key}.dcp.json");
        let path = self.root.join(OBJECTS_DIR).join(&file);
        write_atomic(&path, &json)?;
        let bytes = json.len() as u64;
        let entry = ManifestEntry {
            key: key.to_string(),
            signature: cp.meta.signature.clone(),
            file,
            content_hash: cp.content_hash_hex(),
            format_version: CHECKPOINT_FORMAT_VERSION,
            device: cp.meta.device.clone(),
            bytes,
            last_used: 0,
        };
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let evicted = self.mutate_locked(&cache_obs, move |cache| {
            cache.generation += 1;
            let mut entry = entry;
            entry.last_used = cache.generation;
            // Replacing a key whose signature changed leaves the old
            // object file orphaned; remove it so the objects dir mirrors
            // the manifest.
            if let Some(old) = cache.entries.insert(key.to_string(), entry) {
                if old.file != cache.entries[key].file {
                    let _ = std::fs::remove_file(cache.root.join(OBJECTS_DIR).join(&old.file));
                }
            }
            Ok(cache.enforce_budget(key))
        })?;
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_store",
                &[
                    ("key", key.into()),
                    ("signature", cp.meta.signature.as_str().into()),
                    ("bytes", bytes.into()),
                ],
            );
            for victim in &evicted {
                cache_obs.point(
                    "cache_evict",
                    &[("key", victim.as_str().into()), ("reason", "budget".into())],
                );
            }
        }
        Ok(())
    }

    /// Evict LRU entries (excluding `keep`) until the object tier fits the
    /// budget. Runs inside a locked mutation; returns the victims' keys.
    fn enforce_budget(&mut self, keep: &str) -> Vec<String> {
        let Some(budget) = self.budget_bytes else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        loop {
            let total: u64 = self.entries.values().map(|e| e.bytes).sum();
            if total <= budget {
                break;
            }
            // Oldest generation first; BTreeMap iteration makes the key
            // tie-break deterministic.
            let Some(victim) = self
                .entries
                .values()
                .filter(|e| e.key != keep)
                .min_by_key(|e| (e.last_used, e.key.clone()))
                .map(|e| e.key.clone())
            else {
                break; // only the protected entry left — over budget, kept
            };
            let entry = self.entries.remove(&victim).expect("victim exists");
            let _ = std::fs::remove_file(self.root.join(OBJECTS_DIR).join(&entry.file));
            self.budget_evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Budget evictions performed through this handle so far.
    pub fn budget_evictions(&self) -> u64 {
        self.budget_evictions
    }

    /// Total serialized bytes of all indexed objects.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Remove a key and its object file. Returns whether it existed.
    pub fn evict(&mut self, key: &str, obs: &Obs) -> Result<bool, StitchError> {
        let cache_obs = obs.scoped(CACHE_SCOPE);
        let existed = self.mutate_locked(&cache_obs, |cache| {
            let Some(entry) = cache.entries.remove(key) else {
                return Ok(false);
            };
            let _ = std::fs::remove_file(cache.root.join(OBJECTS_DIR).join(&entry.file));
            Ok(true)
        })?;
        if existed && cache_obs.enabled() {
            cache_obs.point("cache_evict", &[("key", key.into())]);
        }
        Ok(existed)
    }

    /// Drop the entry, move its object file into `quarantine/`, persist
    /// the shrunken manifest, and report. Best-effort on the filesystem
    /// side: a failing rename degrades to deletion, a failing manifest
    /// write leaves a row the next lookup will re-invalidate — recovery
    /// never introduces a new failure mode.
    fn invalidate(&mut self, key: &str, reason: &'static str, cache_obs: &Obs) -> CacheLookup {
        let _ = self.mutate_locked(cache_obs, |cache| {
            if let Some(entry) = cache.entries.remove(key) {
                let path = cache.root.join(OBJECTS_DIR).join(&entry.file);
                if path.exists() {
                    quarantine_file(&cache.root, &path, &entry.file);
                }
            }
            Ok(())
        });
        if cache_obs.enabled() {
            cache_obs.point(
                "cache_invalidate",
                &[("key", key.into()), ("reason", reason.into())],
            );
        }
        CacheLookup::Invalidated { reason }
    }

    /// One serialized manifest read-modify-write cycle: acquire the
    /// advisory lock, reload the on-disk manifest (another process may
    /// have written since we last read), apply `mutate`, persist
    /// atomically, release. This is the fix for the classic lost-update
    /// race: without the reload-under-lock, two processes interleaving
    /// write-then-rename silently drop each other's entries.
    fn mutate_locked<T>(
        &mut self,
        cache_obs: &Obs,
        mutate: impl FnOnce(&mut Self) -> Result<T, StitchError>,
    ) -> Result<T, StitchError> {
        let _lock = LockFile::acquire(&self.root, self.lock_timeout)?;
        self.reload_manifest(cache_obs);
        let out = mutate(self)?;
        self.persist_manifest()?;
        Ok(out)
    }

    /// Atomically rewrite `manifest.json` from the in-memory map. BTreeMap
    /// order keeps the bytes deterministic for identical contents.
    fn persist_manifest(&self) -> Result<(), StitchError> {
        let manifest = Manifest {
            manifest_version: MANIFEST_VERSION,
            format_version: CHECKPOINT_FORMAT_VERSION,
            generation: self.generation,
            entries: self.entries.values().cloned().collect(),
        };
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| pi_netlist::NetlistError::Decode(e.to_string()))?;
        write_atomic(&self.root.join(MANIFEST_FILE), &json)?;
        Ok(())
    }
}

/// Write-then-rename: the contents land under a temp name first, so a
/// crash can never leave a torn file behind the real name.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_file_name(format!(
        ".tmp.{}.{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("x")
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Move a file into `<root>/quarantine/`, degrading to deletion if the
/// rename fails (cross-device, permissions); both outcomes take the bad
/// entry out of service.
fn quarantine_file(root: &Path, path: &Path, name: &str) {
    let qdir = root.join(QUARANTINE_DIR);
    let _ = std::fs::create_dir_all(&qdir);
    if std::fs::rename(path, qdir.join(name)).is_err() {
        let _ = std::fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_fabric::Pblock;
    use pi_netlist::{Cell, CellKind, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn checkpoint(sig: &str) -> Checkpoint {
        let mut b = ModuleBuilder::new(sig);
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        Checkpoint {
            meta: CheckpointMeta {
                signature: sig.to_string(),
                fmax_mhz: 500.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 4, 0, 4),
                device: "test-part".to_string(),
                latency_cycles: 10,
            },
            module: m,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pi_cache_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn insert_then_lookup_across_reopen() {
        let root = tmp_root("reopen");
        let obs = Obs::null();
        let cp = checkpoint("conv_k3s1p0co4__in1x16x16");
        let key = cache_key(&cp.meta.signature, "test-part", 7);
        {
            let mut cache = DbCache::open(&root, &obs).unwrap();
            assert!(matches!(cache.lookup(&key, &obs), CacheLookup::Miss));
            cache.insert(&key, &cp, &obs).unwrap();
            assert!(cache.contains(&key));
        }
        let mut cache = DbCache::open(&root, &obs).unwrap();
        assert_eq!(cache.len(), 1);
        match cache.lookup(&key, &obs) {
            CacheLookup::Hit { checkpoint, bytes } => {
                assert_eq!(checkpoint.meta.signature, cp.meta.signature);
                assert_eq!(checkpoint.content_hash(), cp.content_hash());
                assert!(bytes > 0);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn keys_separate_by_fingerprint_and_device() {
        let sig = "conv_k3s1p0co4__in1x16x16";
        let base = cache_key(sig, "test-part", 7);
        assert_eq!(base, cache_key(sig, "test-part", 7));
        assert_ne!(base, cache_key(sig, "test-part", 8));
        assert_ne!(base, cache_key(sig, "xcku5p-like", 7));
        assert_ne!(base, cache_key("other_sig", "test-part", 7));
    }

    #[test]
    fn corrupt_manifest_resets_empty_and_quarantines() {
        let root = tmp_root("badmanifest");
        let obs = Obs::null();
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(MANIFEST_FILE), "{ not a manifest").unwrap();
        let cache = DbCache::open(&root, &obs).unwrap();
        assert!(cache.is_empty());
        assert!(root.join(QUARANTINE_DIR).join(MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let root = tmp_root("budget");
        let obs = Obs::null();
        let a = checkpoint("sig_a");
        let b = checkpoint("sig_b");
        let c = checkpoint("sig_c");
        let one_size = serde_json::to_string(&a.to_versioned_json().unwrap())
            .unwrap()
            .len() as u64;
        // Budget fits two entries but not three.
        let mut cache = DbCache::open_with_budget(&root, Some(one_size * 2 + 8), &obs).unwrap();
        let (ka, kb, kc) = (
            cache_key("sig_a", "test-part", 1),
            cache_key("sig_b", "test-part", 1),
            cache_key("sig_c", "test-part", 1),
        );
        cache.insert(&ka, &a, &obs).unwrap();
        cache.insert(&kb, &b, &obs).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        assert!(matches!(cache.lookup(&ka, &obs), CacheLookup::Hit { .. }));
        cache.insert(&kc, &c, &obs).unwrap();
        assert_eq!(cache.budget_evictions(), 1);
        assert!(cache.contains(&ka), "recently used entry survives");
        assert!(!cache.contains(&kb), "LRU entry evicted");
        assert!(cache.contains(&kc), "inserted entry never self-evicts");
        assert!(cache.total_bytes() <= one_size * 2 + 8);
        // A fresh handle sees the post-eviction state.
        let reopened = DbCache::open(&root, &obs).unwrap();
        assert_eq!(reopened.len(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tiny_budget_keeps_the_newest_entry() {
        let root = tmp_root("tinybudget");
        let obs = Obs::null();
        let cp = checkpoint("solo");
        let key = cache_key("solo", "test-part", 1);
        let mut cache = DbCache::open_with_budget(&root, Some(1), &obs).unwrap();
        cache.insert(&key, &cp, &obs).unwrap();
        assert!(
            cache.contains(&key),
            "an insert must never evict itself even over budget"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn concurrent_handles_do_not_lose_each_others_entries() {
        // The lost-update bug: two handles (standing in for two processes)
        // each hold a private in-memory map; without reload-under-lock the
        // second insert's manifest write would drop the first's entry.
        let root = tmp_root("merge");
        let obs = Obs::null();
        let a = checkpoint("proc_a_sig");
        let b = checkpoint("proc_b_sig");
        let ka = cache_key("proc_a_sig", "test-part", 1);
        let kb = cache_key("proc_b_sig", "test-part", 1);
        let mut h1 = DbCache::open(&root, &obs).unwrap();
        let mut h2 = DbCache::open(&root, &obs).unwrap();
        h1.insert(&ka, &a, &obs).unwrap();
        h2.insert(&kb, &b, &obs).unwrap();
        let mut reopened = DbCache::open(&root, &obs).unwrap();
        assert!(
            matches!(reopened.lookup(&ka, &obs), CacheLookup::Hit { .. }),
            "h1's entry must survive h2's manifest write"
        );
        assert!(matches!(
            reopened.lookup(&kb, &obs),
            CacheLookup::Hit { .. }
        ));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn eviction_removes_entry_and_file() {
        let root = tmp_root("evict");
        let obs = Obs::null();
        let cp = checkpoint("fc_o10__in84");
        let key = cache_key(&cp.meta.signature, "test-part", 1);
        let mut cache = DbCache::open(&root, &obs).unwrap();
        cache.insert(&key, &cp, &obs).unwrap();
        assert!(cache.evict(&key, &obs).unwrap());
        assert!(!cache.evict(&key, &obs).unwrap());
        let reopened = DbCache::open(&root, &obs).unwrap();
        assert!(reopened.is_empty());
        let objects: Vec<_> = std::fs::read_dir(root.join(OBJECTS_DIR)).unwrap().collect();
        assert!(objects.is_empty(), "object file must be deleted");
        std::fs::remove_dir_all(&root).ok();
    }
}
