//! The database of pre-built checkpoints.
//!
//! In the paper this is a directory of DCP files produced once by the
//! function-optimization phase and reused across designs. Here it is an
//! in-memory map keyed by component signature, with save/load to a
//! directory of JSON checkpoints so the "performed exactly once, reused in
//! several applications" workflow is real.

use crate::StitchError;
use pi_netlist::Checkpoint;
use std::collections::BTreeMap;
use std::path::Path;

/// A component-checkpoint database.
#[derive(Debug, Clone, Default)]
pub struct ComponentDb {
    by_signature: BTreeMap<String, Checkpoint>,
}

impl ComponentDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a checkpoint under its signature.
    pub fn insert(&mut self, checkpoint: Checkpoint) {
        self.by_signature
            .insert(checkpoint.meta.signature.clone(), checkpoint);
    }

    /// Component matching: exact signature lookup.
    pub fn get(&self, signature: &str) -> Option<&Checkpoint> {
        self.by_signature.get(signature)
    }

    /// Lookup that reports a flow-level error when missing.
    pub fn require(&self, signature: &str) -> Result<&Checkpoint, StitchError> {
        self.get(signature)
            .ok_or_else(|| StitchError::MissingComponent(signature.to_string()))
    }

    pub fn len(&self) -> usize {
        self.by_signature.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_signature.is_empty()
    }

    /// All stored signatures, sorted.
    pub fn signatures(&self) -> impl Iterator<Item = &str> {
        self.by_signature.keys().map(|s| s.as_str())
    }

    /// All stored checkpoints.
    pub fn checkpoints(&self) -> impl Iterator<Item = &Checkpoint> {
        self.by_signature.values()
    }

    /// Persist every checkpoint as `<dir>/<file stem>.dcp.json`, where the
    /// stem is the collision-free form of [`file_stem`]: distinct
    /// signatures always land in distinct files, even when sanitization
    /// maps them to the same readable prefix.
    pub fn save_dir(&self, dir: &Path) -> Result<(), StitchError> {
        std::fs::create_dir_all(dir)?;
        for (sig, cp) in &self.by_signature {
            let file = dir.join(format!("{}.dcp.json", file_stem(sig)));
            cp.save(&file)?;
        }
        Ok(())
    }

    /// Load every `*.dcp.json` under a directory.
    pub fn load_dir(dir: &Path) -> Result<ComponentDb, StitchError> {
        let mut db = ComponentDb::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.ends_with(".dcp.json"))
                .unwrap_or(false)
            {
                db.insert(Checkpoint::load(&path)?);
            }
        }
        Ok(db)
    }
}

/// Filesystem-safe rendering of a signature: ASCII alphanumerics, `_` and
/// `-` pass through, everything else becomes `_`. Lossy — two signatures
/// can sanitize identically, which is why file names never consist of the
/// sanitized form alone (see [`file_stem`]).
pub(crate) fn sanitize(sig: &str) -> String {
    sig.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Collision-free file stem for a signature: a length-capped sanitized
/// prefix for human readability plus the FNV-1a hash of the *raw*
/// signature. Signatures like `pool_w2s2+relu` and `pool_w2s2_relu`
/// sanitize identically but hash apart, so `save_dir` can never silently
/// overwrite one with the other; the cap keeps arbitrarily long signatures
/// under the filesystem's name-length limit.
pub(crate) fn file_stem(sig: &str) -> String {
    let mut prefix = sanitize(sig);
    prefix.truncate(96); // sanitized text is pure ASCII, so this is safe
    format!("{prefix}-{:016x}", pi_netlist::fnv1a64(sig.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_fabric::Pblock;
    use pi_netlist::{Cell, CellKind, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole};

    fn checkpoint(sig: &str) -> Checkpoint {
        let mut b = ModuleBuilder::new(sig);
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        Checkpoint {
            meta: CheckpointMeta {
                signature: sig.to_string(),
                fmax_mhz: 500.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 4, 0, 4),
                device: "test-part".to_string(),
                latency_cycles: 10,
            },
            module: m,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = ComponentDb::new();
        db.insert(checkpoint("conv_k5s1p0co6__in1x32x32"));
        assert_eq!(db.len(), 1);
        assert!(db.get("conv_k5s1p0co6__in1x32x32").is_some());
        assert!(db.get("missing").is_none());
        assert!(matches!(
            db.require("missing"),
            Err(StitchError::MissingComponent(_))
        ));
    }

    #[test]
    fn directory_round_trip() {
        let mut db = ComponentDb::new();
        db.insert(checkpoint("conv_k5s1p0co6__in1x32x32"));
        db.insert(checkpoint("pool_w2s2+relu__in6x28x28"));
        let dir = std::env::temp_dir().join(format!("pi_db_test_{}", std::process::id()));
        db.save_dir(&dir).unwrap();
        let back = ComponentDb::load_dir(&dir).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.get("pool_w2s2+relu__in6x28x28").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_collisions_do_not_overwrite_on_save() {
        // Both signatures sanitize to `pool_w2s2_relu__in6x28x28`; before
        // the content-hash suffix the second save clobbered the first.
        let sig_a = "pool_w2s2+relu__in6x28x28";
        let sig_b = "pool_w2s2_relu__in6x28x28";
        assert_eq!(sanitize(sig_a), sanitize(sig_b));
        assert_ne!(file_stem(sig_a), file_stem(sig_b));
        let mut db = ComponentDb::new();
        db.insert(checkpoint(sig_a));
        db.insert(checkpoint(sig_b));
        let dir = std::env::temp_dir().join(format!("pi_db_collide_{}", std::process::id()));
        db.save_dir(&dir).unwrap();
        let back = ComponentDb::load_dir(&dir).unwrap();
        assert_eq!(back.len(), 2, "colliding signatures must both persist");
        assert!(back.get(sig_a).is_some());
        assert!(back.get(sig_b).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_stems_stay_within_name_limits() {
        let long = "x".repeat(4096);
        let stem = file_stem(&long);
        assert!(stem.len() <= 96 + 17, "stem too long: {}", stem.len());
        assert_ne!(file_stem(&"x".repeat(4095)), stem);
    }

    #[test]
    fn replace_updates_existing() {
        let mut db = ComponentDb::new();
        let mut cp = checkpoint("x");
        db.insert(cp.clone());
        cp.meta.fmax_mhz = 999.0;
        db.insert(cp);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("x").unwrap().meta.fmax_mhz, 999.0);
    }
}
