//! Relocation of locked placed-and-routed modules.
//!
//! The prerequisite the paper leans on: UltraScale resource columns repeat,
//! so a module implemented in one pblock can be stamped anywhere the column
//! pattern under it is identical. The check and the translation live here.

use crate::StitchError;
use pi_fabric::{Device, Pblock, TileCoord};
use pi_netlist::{Checkpoint, Module};

/// All column offsets (including 0) at which a checkpoint's pblock can be
/// legally placed on `device`, i.e. where the column pattern matches.
pub fn valid_anchor_columns(pblock: &Pblock, device: &Device) -> Vec<i32> {
    let mut offs = device.relocation_offsets(pblock.col_lo, pblock.col_hi);
    offs.push(0);
    offs.sort_unstable();
    offs
}

/// Relocate a checkpoint's module so its pblock's lower-left corner lands on
/// `target`. Validates device identity, grid bounds and columnar
/// compatibility; returns the translated, still-locked module.
pub fn relocate_to(
    checkpoint: &Checkpoint,
    device: &Device,
    target: TileCoord,
) -> Result<Module, StitchError> {
    if checkpoint.meta.device != device.name() {
        return Err(StitchError::DeviceMismatch {
            checkpoint: checkpoint.meta.signature.clone(),
            want: device.name().to_string(),
        });
    }
    let pb = checkpoint.meta.pblock;
    let dcol = i32::from(target.col) - i32::from(pb.col_lo);
    let drow = i32::from(target.row) - i32::from(pb.row_lo);
    if dcol != 0 && !device.columns_compatible(pb.col_lo, pb.col_hi, dcol) {
        return Err(StitchError::IncompatibleRelocation {
            component: checkpoint.meta.signature.clone(),
            dcol,
        });
    }
    let new_pb = pb
        .translated(dcol, drow)
        .ok_or_else(|| StitchError::IncompatibleRelocation {
            component: checkpoint.meta.signature.clone(),
            dcol,
        })?;
    new_pb.validate(device)?;
    let module = checkpoint.module.translated(dcol, drow).ok_or_else(|| {
        StitchError::IncompatibleRelocation {
            component: checkpoint.meta.signature.clone(),
            dcol,
        }
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::{Cell, CellKind, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole};

    fn checkpoint(device: &Device) -> Checkpoint {
        let mut b = ModuleBuilder::new("comp");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c0 = b.cell(Cell::new("s", CellKind::full_slice()));
        let c1 = b.cell(Cell::new("d", CellKind::Dsp));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c0)]);
        b.connect("m", Endpoint::Cell(c0), [Endpoint::Cell(c1)]);
        b.connect("o", Endpoint::Cell(c1), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        // Implemented in the first group: slice on col 1, DSP on col 8.
        m.set_placement(pi_netlist::CellId(0), TileCoord::new(1, 2))
            .unwrap();
        m.set_placement(pi_netlist::CellId(1), TileCoord::new(8, 2))
            .unwrap();
        m.ports_mut().unwrap()[0].partpin = Some(TileCoord::new(1, 0));
        m.ports_mut().unwrap()[1].partpin = Some(TileCoord::new(8, 0));
        m.pblock = Some(Pblock::new(1, 8, 0, 9));
        m.lock();
        Checkpoint {
            meta: CheckpointMeta {
                signature: "comp".to_string(),
                fmax_mhz: 500.0,
                resources: m.resources(),
                pblock: Pblock::new(1, 8, 0, 9),
                device: device.name().to_string(),
                latency_cycles: 5,
            },
            module: m,
        }
    }

    #[test]
    fn vertical_relocation_always_legal() {
        let device = Device::test_part();
        let cp = checkpoint(&device);
        let m = relocate_to(&cp, &device, TileCoord::new(1, 20)).unwrap();
        assert_eq!(
            m.cell(pi_netlist::CellId(0)).placement,
            Some(TileCoord::new(1, 22))
        );
        assert!(m.locked);
        // Internal structure preserved: relative offsets identical.
        assert_eq!(
            m.cell(pi_netlist::CellId(1)).placement,
            Some(TileCoord::new(8, 22))
        );
    }

    #[test]
    fn horizontal_relocation_respects_columns() {
        let device = Device::test_part();
        let cp = checkpoint(&device);
        // One full group right: cols 1..8 -> 18..25 (pattern repeats at +17).
        let ok = relocate_to(&cp, &device, TileCoord::new(18, 0)).unwrap();
        assert_eq!(
            ok.cell(pi_netlist::CellId(1)).placement,
            Some(TileCoord::new(25, 2))
        );
        // One column right lands the DSP cell on a CLB column: illegal.
        let err = relocate_to(&cp, &device, TileCoord::new(2, 0));
        assert!(matches!(
            err,
            Err(StitchError::IncompatibleRelocation { dcol: 1, .. })
        ));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let device = Device::test_part();
        let cp = checkpoint(&device);
        assert!(relocate_to(&cp, &device, TileCoord::new(1, 1000)).is_err());
    }

    #[test]
    fn device_mismatch_rejected() {
        let device = Device::test_part();
        let other = Device::xcku5p_like();
        let cp = checkpoint(&device);
        assert!(matches!(
            relocate_to(&cp, &other, TileCoord::new(1, 0)),
            Err(StitchError::DeviceMismatch { .. })
        ));
    }

    #[test]
    fn anchor_columns_include_identity_and_group_shifts() {
        let device = Device::test_part();
        let cols = valid_anchor_columns(&Pblock::new(1, 8, 0, 9), &device);
        assert!(cols.contains(&0));
        assert!(cols.contains(&17));
        assert!(!cols.contains(&1));
    }
}
