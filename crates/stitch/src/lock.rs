//! Advisory cross-process locking for the cache manifest.
//!
//! Two processes sharing one `--db-dir` both follow write-then-rename for
//! `manifest.json`, which is atomic per writer but not serialized across
//! writers: process A can read the manifest, process B can read the same
//! bytes, and whichever renames last silently drops the other's entries.
//! [`LockFile`] closes that window: every manifest read-modify-write cycle
//! runs under an exclusive advisory lock, taken by writing the owner's
//! PID to a private scratch file and hard-linking it to `manifest.lock`
//! — link succeeds for exactly one contender, and the lock is never
//! observable without its PID already inside.
//!
//! The protocol is crash-safe and never deadlocks:
//!
//! * **Stale locks are stolen, not waited on.** A lock whose recorded PID
//!   no longer names a live process — the owner was killed mid-write — is
//!   removed and re-acquired. Unreadable or garbage lock contents count as
//!   stale too (a torn write of the lock file itself must not wedge every
//!   future run).
//! * **Live contention is bounded.** Acquisition polls with a short sleep
//!   and gives up with [`StitchError::LockTimeout`] after `timeout` —
//!   callers get an error they can report, never a hang.
//! * **Release is RAII.** Dropping the guard deletes the lock file; a
//!   panic between acquire and drop still releases.
//!
//! Liveness probing uses `/proc/<pid>` where available and falls back to
//! treating the owner as live (timeout still bounds the wait) elsewhere.

use crate::StitchError;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Lock file name inside the cache root, next to `manifest.json`.
pub const LOCK_FILE: &str = "manifest.lock";

/// Default bound on how long an acquisition waits on a live owner.
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval while a live owner holds the lock.
const RETRY_SLEEP: Duration = Duration::from_millis(2);

/// An exclusively held advisory lock (see module docs). Created by
/// [`LockFile::acquire`]; released on drop.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// Acquire the lock for the cache rooted at `root`, waiting up to
    /// `timeout` on a live owner and stealing from a dead one.
    pub fn acquire(root: &Path, timeout: Duration) -> Result<LockFile, StitchError> {
        let path = root.join(LOCK_FILE);
        let deadline = Instant::now() + timeout;
        loop {
            // Publish the PID atomically: write it to a private scratch
            // file, then hard-link that into place. `create_new` + write
            // would expose a created-but-still-empty lock, which a
            // contender reads as torn garbage and "steals" while the
            // owner is live — the lost-update race this lock exists to
            // prevent.
            let scratch = scratch_path(&path);
            let written = std::fs::File::create(&scratch)
                .and_then(|mut f| write!(f, "{}", std::process::id()));
            if let Err(e) = written {
                let _ = std::fs::remove_file(&scratch);
                return Err(StitchError::Io(e));
            }
            let linked = std::fs::hard_link(&scratch, &path);
            let _ = std::fs::remove_file(&scratch);
            match linked {
                Ok(()) => return Ok(LockFile { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if owner_is_stale(&path) {
                        steal(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        let holder = std::fs::read_to_string(&path).unwrap_or_default();
                        return Err(StitchError::LockTimeout {
                            path: path.clone(),
                            holder: holder.trim().to_string(),
                        });
                    }
                    std::thread::sleep(RETRY_SLEEP);
                }
                Err(e) => return Err(StitchError::Io(e)),
            }
        }
    }
}

/// Steal a stale lock by capture, not blind removal: rename it to a
/// private name first, so of N racing stealers exactly one wins the
/// rename (the rest see the path gone and loop back into acquisition).
/// Removing in place would let a slow stealer delete the *fresh* lock
/// the rename winner has already re-created.
///
/// The captured file is re-verified: if it turns out to be a live lock
/// (the owner released and re-acquired between our staleness check and
/// the rename), it is linked back into place best-effort.
fn steal(path: &Path) {
    let captured = scratch_path(path);
    if std::fs::rename(path, &captured).is_ok() {
        if !owner_is_stale(&captured) {
            let _ = std::fs::hard_link(&captured, path);
        }
        let _ = std::fs::remove_file(&captured);
    }
}

/// A sibling path unique per process *and* per call, for atomic-publish
/// scratch files and steal captures. Crash leftovers never collide with
/// [`LOCK_FILE`] and are harmless clutter.
fn scratch_path(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(
        ".{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    PathBuf::from(name)
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Is the lock at `path` held by a process that no longer exists?
///
/// Unreadable or unparsable contents are stale: only a torn or interrupted
/// write produces them, and the writer's rename-free protocol means it
/// died before finishing. A PID that cannot be probed (no `/proc`) is
/// treated as live so the timeout, not the probe, bounds the wait.
fn owner_is_stale(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        // Concurrently deleted (owner released) — not stale, just retry.
        return false;
    };
    match text.trim().parse::<u32>() {
        Ok(pid) => !process_alive(pid),
        Err(_) => true,
    }
}

/// Best-effort liveness probe for a PID.
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        // No portable probe without libc; err on the side of "alive" and
        // let the acquisition timeout bound the wait.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let root = std::env::temp_dir().join(format!(
            "pi_lock_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&root).unwrap();
        root
    }

    #[test]
    fn acquire_creates_and_drop_releases() {
        let root = tmp_root("basic");
        let lock = LockFile::acquire(&root, DEFAULT_LOCK_TIMEOUT).unwrap();
        assert!(root.join(LOCK_FILE).exists());
        drop(lock);
        assert!(!root.join(LOCK_FILE).exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn live_owner_times_out_instead_of_deadlocking() {
        let root = tmp_root("timeout");
        let _held = LockFile::acquire(&root, DEFAULT_LOCK_TIMEOUT).unwrap();
        // Same PID is alive by definition; a second acquisition must give
        // up within the bound rather than stealing or hanging.
        let t = Instant::now();
        match LockFile::acquire(&root, Duration::from_millis(40)) {
            Err(StitchError::LockTimeout { holder, .. }) => {
                assert_eq!(holder, std::process::id().to_string());
            }
            other => panic!("expected LockTimeout, got {other:?}"),
        }
        assert!(t.elapsed() < Duration::from_secs(5));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dead_owner_is_stolen() {
        let root = tmp_root("stale");
        // Linux pid_max defaults to 2^22; this PID can never be live.
        std::fs::write(root.join(LOCK_FILE), "999999999").unwrap();
        let lock = LockFile::acquire(&root, Duration::from_millis(200)).unwrap();
        drop(lock);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn garbage_lock_contents_are_stolen() {
        let root = tmp_root("garbage");
        std::fs::write(root.join(LOCK_FILE), "not a pid\0\0").unwrap();
        let lock = LockFile::acquire(&root, Duration::from_millis(200)).unwrap();
        drop(lock);
        std::fs::remove_dir_all(&root).ok();
    }

    /// A stampede of acquisitions must never overlap two holders. The
    /// pre-fix protocol wrote the PID *after* `O_CREAT | O_EXCL`, so a
    /// contender could read the empty window as torn garbage and steal a
    /// live lock — two threads then mutate the manifest concurrently.
    #[test]
    fn stampede_never_steals_a_live_lock() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let root = tmp_root("exclusive");
        let busy = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let root = root.clone();
                let busy = busy.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let lock = LockFile::acquire(&root, DEFAULT_LOCK_TIMEOUT).unwrap();
                        assert!(!busy.swap(true, Ordering::SeqCst), "two live holders");
                        busy.store(false, Ordering::SeqCst);
                        drop(lock);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn contended_threads_serialize() {
        let root = tmp_root("threads");
        let root2 = root.clone();
        let handle = std::thread::spawn(move || {
            for _ in 0..20 {
                let _l = LockFile::acquire(&root2, DEFAULT_LOCK_TIMEOUT).unwrap();
            }
        });
        for _ in 0..20 {
            let _l = LockFile::acquire(&root, DEFAULT_LOCK_TIMEOUT).unwrap();
        }
        handle.join().unwrap();
        assert!(!root.join(LOCK_FILE).exists());
        std::fs::remove_dir_all(&root).ok();
    }
}
