//! Architecture composition — the paper's Algorithm 1.
//!
//! BFS the network DFG, match each fused component against the checkpoint
//! database, choose a legal location (component placer), relocate the
//! locked module there, and create the inter-component nets between the
//! source/sink interfaces. The output is an assembled [`Design`] whose only
//! unrouted nets are the stitched ones — ready for final inter-component
//! routing.

use crate::db::ComponentDb;
use crate::placer::{place_components_obs, ComponentPlacerOptions, PlacementOutcome};
use crate::relocate::relocate_to;
use crate::StitchError;
use pi_cnn::graph::{Granularity, Network};
use pi_fabric::Device;
use pi_netlist::{Design, DesignKind};
use pi_obs::Obs;

/// Options for composition.
#[derive(Debug, Clone, Copy)]
pub struct ComposeOptions {
    pub granularity: Granularity,
    pub placer: ComponentPlacerOptions,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            granularity: Granularity::Layer,
            placer: ComponentPlacerOptions::default(),
        }
    }
}

/// What composition produced, for reports.
#[derive(Debug, Clone)]
pub struct ComposeReport {
    pub component_signatures: Vec<String>,
    pub placement: PlacementOutcome,
    /// Inter-component nets created by stitching.
    pub stitched_nets: usize,
}

/// Algorithm 1: compose a CNN accelerator from pre-built checkpoints.
pub fn compose(
    network: &Network,
    db: &ComponentDb,
    device: &Device,
    opts: &ComposeOptions,
) -> Result<(Design, ComposeReport), StitchError> {
    compose_obs(network, db, device, opts, &Obs::null())
}

/// [`compose`] with telemetry: threads the handle into the component placer
/// (`stitch::placer` events) and reports the stitched-net count.
pub fn compose_obs(
    network: &Network,
    db: &ComponentDb,
    device: &Device,
    opts: &ComposeOptions,
    obs: &Obs,
) -> Result<(Design, ComposeReport), StitchError> {
    compose_sized_obs(network, db, device, opts, None, obs)
}

/// [`compose_obs`] with per-edge FIFO sizing: `edge_depths` maps component
/// adjacency edges `(source, sink)` — indices into the network's
/// topological component order, as produced by
/// `pi_lint::DataflowAnalysis::depth_map` — to minimum link-FIFO depths.
/// A multi-sink net takes the max over its edges; edges absent from the
/// map keep [`pi_netlist::DEFAULT_LINK_FIFO_DEPTH`]. This is the feedback
/// half of `FlowConfig::with_fifo_autosize`: the dataflow lint computes
/// the depths, composition installs them on the stitched
/// [`pi_netlist::TopNet`]s.
pub fn compose_sized_obs(
    network: &Network,
    db: &ComponentDb,
    device: &Device,
    opts: &ComposeOptions,
    edge_depths: Option<&std::collections::BTreeMap<(usize, usize), u64>>,
    obs: &Obs,
) -> Result<(Design, ComposeReport), StitchError> {
    // Component extraction (components() walks the DFG in topological
    // order — Algorithm 1's queue-based discovery, refined so producers
    // always precede consumers even across branches).
    let components = network.components(opts.granularity)?;
    let signatures: Vec<String> = components.iter().map(|c| c.signature(network)).collect();

    // Component matching: every node of the graph must resolve to a
    // pre-built checkpoint.
    let checkpoints: Vec<&pi_netlist::Checkpoint> = signatures
        .iter()
        .map(|sig| db.require(sig))
        .collect::<Result<_, _>>()?;

    // Component-adjacency edges from the network edges.
    let mut node_to_comp = std::collections::HashMap::new();
    for (ci, comp) in components.iter().enumerate() {
        for node in &comp.nodes {
            node_to_comp.insert(*node, ci);
        }
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (a, b) in network.edges() {
        match (node_to_comp.get(a), node_to_comp.get(b)) {
            (Some(&ca), Some(&cb)) if ca != cb && !edges.contains(&(ca, cb)) => {
                edges.push((ca, cb));
            }
            _ => {}
        }
    }

    // Component placement (Eq. 1–3 with unplace-and-retry).
    let placement = place_components_obs(&checkpoints, &edges, device, &opts.placer, obs)?;

    // Relocation + instantiation.
    let mut design = Design::new(
        format!("{}_assembled", network.name),
        device.name(),
        DesignKind::Assembled,
    );
    for ((comp, cp), anchor) in components.iter().zip(&checkpoints).zip(&placement.anchors) {
        let module = relocate_to(cp, device, *anchor)?;
        design.add_instance(comp.name.clone(), module);
    }

    // Stitching: create the inter-component stream nets (the FIFO links of
    // the paper's Fig. 5). A chain yields one single-sink net per edge,
    // exactly as before. Branching topologies need two generalizations:
    // a fanout source drives all its consumers through one multi-sink net
    // (the router's Steiner decomposition handles the tree), and a join
    // component receives its second operand on `din2`. Input ports are
    // assigned deterministically: a join's incoming edges sorted by source
    // component index map to `din`, `din2`.
    let mut in_port: std::collections::HashMap<(usize, usize), &'static str> =
        std::collections::HashMap::new();
    for (cb, comp) in components.iter().enumerate() {
        let mut incoming: Vec<usize> = edges
            .iter()
            .filter(|(_, b)| *b == cb)
            .map(|(a, _)| *a)
            .collect();
        incoming.sort_unstable();
        for (k, ca) in incoming.iter().enumerate() {
            let port = match k {
                0 => "din",
                1 => "din2",
                _ => {
                    return Err(StitchError::MissingComponent(format!(
                        "{}: {} input streams, components accept at most two",
                        comp.name,
                        incoming.len()
                    )))
                }
            };
            in_port.insert((*ca, cb), port);
        }
    }
    let mut stitched = 0usize;
    for ca in 0..components.len() {
        let mut sinks: Vec<usize> = edges
            .iter()
            .filter(|(a, _)| *a == ca)
            .map(|(_, b)| *b)
            .collect();
        if sinks.is_empty() {
            continue;
        }
        sinks.sort_unstable();
        let src_inst = pi_netlist::InstId(ca as u32);
        let (src_port, sw) = {
            let (pid, p) = design
                .instance(src_inst)
                .module
                .port_by_name("dout")
                .ok_or_else(|| {
                    StitchError::MissingComponent(format!("{}: no dout port", components[ca].name))
                })?;
            (pid, p.width)
        };
        let mut sink_pins = Vec::with_capacity(sinks.len());
        let mut sink_names = Vec::with_capacity(sinks.len());
        for &cb in &sinks {
            let want = in_port[&(ca, cb)];
            let dst_inst = pi_netlist::InstId(cb as u32);
            let (dst_port, _) = design
                .instance(dst_inst)
                .module
                .port_by_name(want)
                .ok_or_else(|| {
                    StitchError::MissingComponent(format!(
                        "{}: no {want} port (second input stream requires a join component)",
                        components[cb].name
                    ))
                })?;
            sink_pins.push((dst_inst, dst_port));
            sink_names.push(components[cb].name.as_str());
        }
        let net_idx = design.connect_top(
            format!("link_{}_{}", components[ca].name, sink_names.join("+")),
            (src_inst, src_port),
            sink_pins,
            sw,
        )?;
        if let Some(depths) = edge_depths {
            // One net serves every sink of this source: size it for the
            // deepest requirement among its edges so no branch can stall.
            let depth = sinks
                .iter()
                .filter_map(|&cb| depths.get(&(ca, cb)).copied())
                .max()
                .unwrap_or(pi_netlist::DEFAULT_LINK_FIFO_DEPTH);
            design.top_nets_mut()[net_idx].fifo_depth = depth;
        }
        stitched += 1;
    }
    if obs.enabled() {
        obs.scoped("stitch::compose")
            .counter("stitched_nets", stitched as u64);
    }

    Ok((
        design,
        ComposeReport {
            component_signatures: signatures,
            placement,
            stitched_nets: stitched,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;
    use pi_fabric::Pblock;
    use pi_netlist::{CheckpointMeta, StreamRole};
    use pi_synth::{synth_component, SynthOptions};

    /// Build a database for the toy network the way the flow would: real
    /// synthesized components, hand-placed into tight pblocks and locked.
    fn toy_db(device: &Device, network: &Network) -> ComponentDb {
        let comps = network.components(Granularity::Layer).unwrap();
        let mut db = ComponentDb::new();
        for comp in &comps {
            let mut m = synth_component(network, comp, &SynthOptions::lenet_like()).unwrap();
            let pb = Pblock::new(1, 16, 0, 59);
            m.pblock = Some(pb);
            pi_pnr::place_module(
                &mut m,
                device,
                &pi_pnr::PlaceOptions {
                    seed: 7,
                    effort: 0.5,
                    region: Some(pb),
                },
            )
            .unwrap();
            // Partition pins on the pblock boundary.
            let n_ports = m.ports().len();
            {
                let ports = m.ports_mut().unwrap();
                for (i, port) in ports.iter_mut().enumerate() {
                    let row = (i * 59 / n_ports.max(1)) as u16;
                    port.partpin = Some(pi_fabric::TileCoord::new(
                        if port.role == StreamRole::Source || port.role == StreamRole::Clock {
                            1
                        } else {
                            16
                        },
                        row,
                    ));
                }
            }
            let _ = pi_pnr::route_module(&mut m, device, &pi_pnr::RouteOptions::default()).unwrap();
            m.lock();
            db.insert(pi_netlist::Checkpoint {
                meta: CheckpointMeta {
                    signature: comp.signature(network),
                    fmax_mhz: 500.0,
                    resources: m.resources(),
                    pblock: pb,
                    device: device.name().to_string(),
                    latency_cycles: 8,
                },
                module: m,
            });
        }
        db
    }

    #[test]
    fn composes_toy_network_end_to_end() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (design, report) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        // toy: conv / pool+relu / fc -> 3 instances, 2 stitched links.
        assert_eq!(design.instances().len(), 3);
        assert_eq!(report.stitched_nets, 2);
        assert_eq!(design.top_nets().len(), 2);
        assert!(design.validate().is_ok());
        // All instances locked (pre-implemented), only top nets unrouted.
        for inst in design.instances() {
            assert!(inst.module.locked);
        }
        assert_eq!(design.unrouted_nets(), 2);
    }

    #[test]
    fn composes_branching_resnet_and_routes_it() {
        let device = Device::xcku5p_like();
        let network = models::resnet_small();
        let db = toy_db(&device, &network);
        let (mut design, report) =
            compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        // 9 components: conv1+relu1 / (conv{b}a+relu{b}a / conv{b}b /
        // add{b}+relu{b}b) x2 / pool1 / fc1.
        assert_eq!(design.instances().len(), 9);
        // 10 component edges collapse onto 8 source-grouped nets, two of
        // which fan out to two sinks (the skip connections).
        assert_eq!(report.stitched_nets, 8);
        let multi = design
            .top_nets()
            .iter()
            .filter(|n| n.sinks.len() == 2)
            .count();
        assert_eq!(multi, 2);
        assert!(design.validate().is_ok());
        // Joins receive both operands: each add component has its din and
        // din2 pins among the net sinks.
        let joined: usize = design
            .top_nets()
            .iter()
            .flat_map(|n| n.sinks.iter())
            .filter(|&&(inst, pid)| design.instance(inst).module.port(pid).name == "din2")
            .count();
        assert_eq!(joined, 2);
        // The assembled branching design routes end-to-end.
        let route = pi_pnr::route_assembled(&mut design, &device, &pi_pnr::RouteOptions::default())
            .unwrap();
        assert_eq!(route.route_stats.routed_nets, 8);
        assert!(design.fully_routed());
    }

    #[test]
    fn missing_component_is_reported() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = ComponentDb::new();
        match compose(&network, &db, &device, &ComposeOptions::default()) {
            Err(StitchError::MissingComponent(sig)) => {
                assert!(sig.starts_with("conv"), "unexpected first miss: {sig}")
            }
            other => panic!("expected MissingComponent, got {other:?}"),
        }
    }

    #[test]
    fn composed_design_routes_incrementally() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (mut design, _) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        let report =
            pi_pnr::route_assembled(&mut design, &device, &pi_pnr::RouteOptions::default())
                .unwrap();
        // Only the stitched nets were routed.
        assert_eq!(report.route_stats.routed_nets, 2);
        assert!(design.fully_routed());
        assert!(report.timing.fmax_mhz > 100.0);
    }
}
