//! Congestion-aware timing-driven component placement (paper §IV-B4).
//!
//! Components arrive pre-implemented inside pblocks; placing a component
//! means choosing a legal relocation anchor. The cost model is the paper's:
//!
//! * **timing cost (Eq. 1)** — Σ HPWL between connected components' pblock
//!   centers,
//! * **congestion (Eq. 2–3)** — component overlaps per tile, normalized by
//!   the pblock area; overlap with an already-placed component is illegal,
//!   and crowding (overlap of the margin-expanded pblock) is penalized.
//!
//! A placement is accepted when its cost is below threshold; otherwise the
//! previously placed component is unplaced and moved to its next-best
//! location before retrying — the unplace-and-retry loop of the paper.

use crate::relocate::valid_anchor_columns;
use crate::StitchError;
use pi_fabric::{Device, Pblock, TileCoord};
use pi_netlist::Checkpoint;
use pi_obs::Obs;

/// Options for component placement.
#[derive(Debug, Clone, Copy)]
pub struct ComponentPlacerOptions {
    /// Per-edge HPWL (tiles) above which a candidate is over threshold.
    pub timing_threshold: f64,
    /// Weight of the congestion term against the timing term.
    pub congestion_weight: f64,
    /// Margin (tiles) around a pblock considered "crowded" for Eq. 2.
    pub crowding_margin: u16,
    /// Backtracking attempts when a component exceeds the threshold.
    pub max_retries: usize,
}

impl Default for ComponentPlacerOptions {
    fn default() -> Self {
        ComponentPlacerOptions {
            // Center-to-center HPWL of two adjacent chip-half-sized
            // components is ~100 tiles; the threshold must tolerate that or
            // the retry loop scatters big blocks and fragments the chip.
            timing_threshold: 200.0,
            congestion_weight: 25.0,
            crowding_margin: 2,
            max_retries: 3,
        }
    }
}

/// Result of component placement: one anchor (pblock lower-left corner) per
/// component, in input order.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    pub anchors: Vec<TileCoord>,
    /// Eq. 1 total over all edges.
    pub timing_cost: f64,
    /// Eq. 3 congestion total.
    pub congestion_cost: f64,
    /// Times the unplace-and-retry loop fired.
    pub retries: usize,
}

/// All legal anchors for a checkpoint on the device, row-major.
fn anchor_candidates(cp: &Checkpoint, device: &Device) -> Vec<TileCoord> {
    let pb = cp.meta.pblock;
    let height = pb.height();
    let cols = valid_anchor_columns(&pb, device);
    // Rows step in 8-tile increments — the same quantum pblock heights use,
    // so stacked components leave no forced gaps; columns come from the
    // compatibility check.
    const ROW_STEP: u16 = 8;
    let mut anchors = Vec::new();
    for dcol in cols {
        let col = i32::from(pb.col_lo) + dcol;
        debug_assert!(col >= 0);
        let mut row = 0u16;
        while row + height <= device.rows() {
            anchors.push(TileCoord::new(col as u16, row));
            row += ROW_STEP.min(height);
        }
    }
    anchors
}

fn pblock_at(cp: &Checkpoint, anchor: TileCoord) -> Pblock {
    let pb = cp.meta.pblock;
    Pblock::new(
        anchor.col,
        anchor.col + pb.width() - 1,
        anchor.row,
        anchor.row + pb.height() - 1,
    )
}

fn expanded(pb: &Pblock, margin: u16, device: &Device) -> Pblock {
    Pblock::new(
        pb.col_lo.saturating_sub(margin),
        (pb.col_hi + margin).min(device.cols() - 1),
        pb.row_lo.saturating_sub(margin),
        (pb.row_hi + margin).min(device.rows() - 1),
    )
}

/// Eq. 2–3: crowding of a candidate against already-placed pblocks,
/// normalized by the candidate's area.
fn congestion_cost(candidate: &Pblock, placed: &[Pblock], margin: u16, device: &Device) -> f64 {
    let grown = expanded(candidate, margin, device);
    let overlap: u64 = placed
        .iter()
        .map(|p| u64::from(grown.overlap_area(p)))
        .sum();
    overlap as f64 / f64::from(candidate.area())
}

/// Partition-pin offsets of a component's stream interface, relative to the
/// pblock's lower-left corner. The paper's Eq. 1 measures wirelength
/// between components; what actually gets wired is partition pin to
/// partition pin, so that is what the cost uses.
#[derive(Debug, Clone, Copy)]
struct PinOffsets {
    din: (u16, u16),
    dout: (u16, u16),
}

fn pin_offsets(cp: &Checkpoint) -> PinOffsets {
    let pb = cp.meta.pblock;
    let rel = |name: &str| -> (u16, u16) {
        cp.module
            .port_by_name(name)
            .and_then(|(_, p)| p.partpin)
            .map(|pp| {
                (
                    pp.col.saturating_sub(pb.col_lo),
                    pp.row.saturating_sub(pb.row_lo),
                )
            })
            .unwrap_or((pb.width() / 2, pb.height() / 2))
    };
    PinOffsets {
        din: rel("din"),
        dout: rel("dout"),
    }
}

/// Eq. 1 per-edge term: wirelength between the source component's `dout`
/// partition pin and the sink component's `din` partition pin.
fn edge_cost(
    src_anchor: TileCoord,
    src_pins: &PinOffsets,
    dst_anchor: TileCoord,
    dst_pins: &PinOffsets,
) -> f64 {
    let a = TileCoord::new(
        src_anchor.col + src_pins.dout.0,
        src_anchor.row + src_pins.dout.1,
    );
    let b = TileCoord::new(
        dst_anchor.col + dst_pins.din.0,
        dst_anchor.row + dst_pins.din.1,
    );
    f64::from(pi_fabric::coords::hpwl(&[a, b]))
}

/// Place a set of components connected by `edges` (indices into
/// `checkpoints`). Components are processed big-rocks-first so the rigid
/// rectangles pack, each picking its `skip`-th best legal location (the
/// retry loop raises skips), then BFS-order refinement sweeps pull every
/// component toward its neighbours' partition pins.
pub fn place_components(
    checkpoints: &[&Checkpoint],
    edges: &[(usize, usize)],
    device: &Device,
    opts: &ComponentPlacerOptions,
) -> Result<PlacementOutcome, StitchError> {
    place_components_obs(checkpoints, edges, device, opts, &Obs::null())
}

/// [`place_components`] with telemetry under the `stitch::placer` scope:
/// the Eq. 1–3 cost of every chosen candidate, each threshold-retry of the
/// unplace-and-retry loop, and the final placement costs.
pub fn place_components_obs(
    checkpoints: &[&Checkpoint],
    edges: &[(usize, usize)],
    device: &Device,
    opts: &ComponentPlacerOptions,
    obs: &Obs,
) -> Result<PlacementOutcome, StitchError> {
    let obs = obs.scoped("stitch::placer");
    let n = checkpoints.len();
    let place_span = obs.span_with(
        "place_components",
        &[("components", n.into()), ("edges", edges.len().into())],
    );
    let mut skips = vec![0usize; n];
    let mut retries = 0usize;
    let pins: Vec<PinOffsets> = checkpoints.iter().map(|cp| pin_offsets(cp)).collect();

    // Timing cost of component i sitting at `anchor`, against every placed
    // neighbour.
    let timing_of = |i: usize, anchor: TileCoord, anchors: &[Option<TileCoord>]| -> f64 {
        edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == i {
                    anchors[b].map(|t| edge_cost(anchor, &pins[i], t, &pins[b]))
                } else if b == i {
                    anchors[a].map(|t| edge_cost(t, &pins[a], anchor, &pins[i]))
                } else {
                    None
                }
            })
            .sum()
    };
    let degree_of = |i: usize, anchors: &[Option<TileCoord>]| -> usize {
        edges
            .iter()
            .filter(|&&(a, b)| (a == i && anchors[b].is_some()) || (b == i && anchors[a].is_some()))
            .count()
    };

    // Process big components first (classic big-rocks floorplanning):
    // placing the large rigid rectangles before the small ones keeps the
    // free space in large windows. Ties resolve to BFS order, preserving
    // Algorithm 1's discovery order among equals.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(checkpoints[i].meta.pblock.area()), i));

    let mut anchors: Vec<Option<TileCoord>> = vec![None; n];
    'attempt: loop {
        anchors.iter_mut().for_each(|a| *a = None);
        let mut placed_pblocks: Vec<Pblock> = Vec::with_capacity(n);

        for (step, &i) in order.iter().enumerate() {
            let cp = checkpoints[i];
            // Score all legal candidates.
            let mut scored: Vec<(f64, TileCoord)> = anchor_candidates(cp, device)
                .into_iter()
                .filter_map(|anchor| {
                    let pb = pblock_at(cp, anchor);
                    if placed_pblocks.iter().any(|p| p.overlaps(&pb)) {
                        return None; // hard illegal: components may not overlap
                    }
                    let t = timing_of(i, anchor, &anchors);
                    let g = congestion_cost(&pb, &placed_pblocks, opts.crowding_margin, device);
                    Some((t + opts.congestion_weight * g, anchor))
                })
                .collect();
            if scored.is_empty() {
                return Err(StitchError::NoValidLocation {
                    component: cp.meta.signature.clone(),
                    tried: anchor_candidates(cp, device).len(),
                });
            }
            // Ties resolve bottom-left (row-major): components form shelves
            // from the bottom of the chip upward.
            scored.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then_with(|| (a.1.row, a.1.col).cmp(&(b.1.row, b.1.col)))
            });
            let pick = skips[i].min(scored.len() - 1);
            let (score, anchor) = scored[pick];

            // Threshold check with the paper's unplace-and-retry loop: move
            // the previously placed component to its next-best spot and
            // restart.
            let per_edge_threshold = opts.timing_threshold * degree_of(i, &anchors).max(1) as f64;
            if score > per_edge_threshold && retries < opts.max_retries && step > 0 {
                retries += 1;
                skips[order[step - 1]] += 1;
                if obs.enabled() {
                    obs.point(
                        "threshold_retry",
                        &[
                            ("component", cp.meta.signature.as_str().into()),
                            ("step", step.into()),
                            ("score", score.into()),
                            ("threshold", per_edge_threshold.into()),
                            ("retries", retries.into()),
                        ],
                    );
                }
                continue 'attempt;
            }

            if obs.enabled() {
                // Eq. 1 / Eq. 3 split of the chosen candidate's cost.
                let t = timing_of(i, anchor, &anchors);
                let g = congestion_cost(
                    &pblock_at(cp, anchor),
                    &placed_pblocks,
                    opts.crowding_margin,
                    device,
                );
                obs.point(
                    "candidate",
                    &[
                        ("component", cp.meta.signature.as_str().into()),
                        ("step", step.into()),
                        ("candidates", scored.len().into()),
                        ("skip", pick.into()),
                        ("timing_cost", t.into()),
                        ("congestion_cost", g.into()),
                        ("score", score.into()),
                        ("anchor_col", anchor.col.into()),
                        ("anchor_row", anchor.row.into()),
                    ],
                );
            }
            anchors[i] = Some(anchor);
            placed_pblocks.push(pblock_at(cp, anchor));
        }
        break;
    }

    // Refinement sweeps in BFS order: every component moves to the legal
    // anchor minimizing its partition-pin wirelength now that all
    // neighbours exist. This is what keeps inter-component hops — the
    // assembled design's critical paths — short.
    for _sweep in 0..3 {
        let mut moved = false;
        for i in 0..n {
            let cp = checkpoints[i];
            let current = anchors[i].expect("all placed");
            let others: Vec<Pblock> = (0..n)
                .filter(|&j| j != i)
                .map(|j| pblock_at(checkpoints[j], anchors[j].expect("placed")))
                .collect();
            let mut best = (
                timing_of(i, current, &anchors)
                    + opts.congestion_weight
                        * congestion_cost(
                            &pblock_at(cp, current),
                            &others,
                            opts.crowding_margin,
                            device,
                        ),
                current,
            );
            for anchor in anchor_candidates(cp, device) {
                let pb = pblock_at(cp, anchor);
                if others.iter().any(|p| p.overlaps(&pb)) {
                    continue;
                }
                let cost = timing_of(i, anchor, &anchors)
                    + opts.congestion_weight
                        * congestion_cost(&pb, &others, opts.crowding_margin, device);
                if cost + 1e-9 < best.0 {
                    best = (cost, anchor);
                }
            }
            if best.1 != current {
                anchors[i] = Some(best.1);
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Final costs over the complete placement.
    let final_anchors: Vec<TileCoord> = anchors.iter().map(|a| a.expect("all placed")).collect();
    let mut total_t = 0.0;
    for &(a, b) in edges {
        total_t += edge_cost(final_anchors[a], &pins[a], final_anchors[b], &pins[b]);
    }
    let mut total_g = 0.0;
    for (i, &anchor) in final_anchors.iter().enumerate() {
        let pb = pblock_at(checkpoints[i], anchor);
        let others: Vec<Pblock> = final_anchors
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(j, &a)| pblock_at(checkpoints[j], a))
            .collect();
        total_g += congestion_cost(&pb, &others, opts.crowding_margin, device);
    }
    if obs.enabled() {
        obs.point(
            "placement_done",
            &[
                ("components", n.into()),
                ("timing_cost", total_t.into()),
                ("congestion_cost", total_g.into()),
                ("retries", retries.into()),
            ],
        );
    }
    place_span.end();
    Ok(PlacementOutcome {
        anchors: final_anchors,
        timing_cost: total_t,
        congestion_cost: total_g,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::{Cell, CellKind, CheckpointMeta, Endpoint, ModuleBuilder, StreamRole};

    fn checkpoint(name: &str, pb: Pblock, device: &Device) -> Checkpoint {
        let mut b = ModuleBuilder::new(name);
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let c = b.cell(Cell::new("c", CellKind::full_slice()));
        b.connect("i", Endpoint::Port(din), [Endpoint::Cell(c)]);
        b.connect("o", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let mut m = b.finish().unwrap();
        m.set_placement(pi_netlist::CellId(0), TileCoord::new(pb.col_lo, pb.row_lo))
            .unwrap();
        m.pblock = Some(pb);
        m.lock();
        Checkpoint {
            meta: CheckpointMeta {
                signature: name.to_string(),
                fmax_mhz: 500.0,
                resources: m.resources(),
                pblock: pb,
                device: device.name().to_string(),
                latency_cycles: 4,
            },
            module: m,
        }
    }

    #[test]
    fn chain_places_without_overlap() {
        let device = Device::test_part();
        let pb = Pblock::new(1, 8, 0, 9);
        let cps: Vec<Checkpoint> = (0..4)
            .map(|i| checkpoint(&format!("c{i}"), pb, &device))
            .collect();
        let refs: Vec<&Checkpoint> = cps.iter().collect();
        let edges = [(0, 1), (1, 2), (2, 3)];
        let out =
            place_components(&refs, &edges, &device, &ComponentPlacerOptions::default()).unwrap();
        assert_eq!(out.anchors.len(), 4);
        // Pairwise disjoint pblocks.
        for i in 0..4 {
            for j in (i + 1)..4 {
                let a = pblock_at(&cps[i], out.anchors[i]);
                let b = pblock_at(&cps[j], out.anchors[j]);
                assert!(!a.overlaps(&b), "{a} overlaps {b}");
            }
        }
        assert!(out.timing_cost > 0.0);
    }

    #[test]
    fn connected_components_stay_close() {
        let device = Device::xcku5p_like();
        let pb = Pblock::new(1, 16, 0, 29);
        let cps: Vec<Checkpoint> = (0..3)
            .map(|i| checkpoint(&format!("c{i}"), pb, &device))
            .collect();
        let refs: Vec<&Checkpoint> = cps.iter().collect();
        let edges = [(0, 1), (1, 2)];
        let out =
            place_components(&refs, &edges, &device, &ComponentPlacerOptions::default()).unwrap();
        // Each connected pair within a pblock-height-ish distance, not flung
        // across the chip.
        for &(a, b) in &edges {
            let ca = pblock_at(&cps[a], out.anchors[a]).center();
            let cb = pblock_at(&cps[b], out.anchors[b]).center();
            assert!(
                ca.manhattan(&cb) < 120,
                "components {a},{b} are {} tiles apart",
                ca.manhattan(&cb)
            );
        }
    }

    #[test]
    fn too_many_components_is_an_error() {
        let device = Device::test_part();
        // Each component needs a 17-column-wide pblock; the test part fits
        // only a couple.
        let pb = Pblock::new(1, 16, 0, 39);
        let cps: Vec<Checkpoint> = (0..5)
            .map(|i| checkpoint(&format!("c{i}"), pb, &device))
            .collect();
        let refs: Vec<&Checkpoint> = cps.iter().collect();
        let edges: Vec<(usize, usize)> = (0..4).map(|i| (i, i + 1)).collect();
        let r = place_components(&refs, &edges, &device, &ComponentPlacerOptions::default());
        assert!(matches!(r, Err(StitchError::NoValidLocation { .. })));
    }

    #[test]
    fn pin_offsets_fall_back_to_the_center() {
        let device = Device::test_part();
        let pb = Pblock::new(1, 8, 0, 9);
        let cp = checkpoint("c", pb, &device);
        // The test checkpoint has no partpins set, so both offsets default
        // to the pblock center.
        let o = pin_offsets(&cp);
        assert_eq!(o.din, (pb.width() / 2, pb.height() / 2));
        assert_eq!(o.dout, o.din);
    }

    #[test]
    fn refinement_pulls_connected_components_together() {
        // Chain of four: after placement, total edge cost must be no worse
        // than the trivial stacked arrangement's.
        let device = Device::xcku5p_like();
        let pb = Pblock::new(1, 16, 0, 31);
        let cps: Vec<Checkpoint> = (0..4)
            .map(|i| checkpoint(&format!("c{i}"), pb, &device))
            .collect();
        let refs: Vec<&Checkpoint> = cps.iter().collect();
        let edges = [(0, 1), (1, 2), (2, 3)];
        let out =
            place_components(&refs, &edges, &device, &ComponentPlacerOptions::default()).unwrap();
        // Stacked vertically, center-to-center HPWL per edge = pblock
        // height (32); three edges -> 96. Refinement must land at or below
        // a loose multiple of that.
        assert!(
            out.timing_cost <= 96.0 * 2.0,
            "timing cost {}",
            out.timing_cost
        );
    }

    #[test]
    fn determinism() {
        let device = Device::test_part();
        let pb = Pblock::new(1, 8, 0, 9);
        let cps: Vec<Checkpoint> = (0..3)
            .map(|i| checkpoint(&format!("c{i}"), pb, &device))
            .collect();
        let refs: Vec<&Checkpoint> = cps.iter().collect();
        let edges = [(0, 1), (1, 2)];
        let a =
            place_components(&refs, &edges, &device, &ComponentPlacerOptions::default()).unwrap();
        let b =
            place_components(&refs, &edges, &device, &ComponentPlacerOptions::default()).unwrap();
        assert_eq!(a.anchors, b.anchors);
    }
}
