//! Design-rule checks for assembled designs — the sanity pass a real flow
//! runs before writing the final checkpoint.
//!
//! Composition has many moving parts (relocation, overlap-free component
//! placement, partition pins, locked internals); this module verifies the
//! result *physically*: every cell on a legal site, no two cells sharing a
//! site across instances, every instance inside its pblock, partition pins
//! on pblock boundaries, routes within the grid, and locked modules intact.
//!
//! This is the *single* implementation of the physical checks. The
//! `pi-lint` pass manager folds every [`Violation`] variant into its
//! unified diagnostics as codes `PL0310`–`PL0318` (see
//! `pi_lint::checkpoint::violation_code`), so [`check_design`] doubles as
//! the backing analysis for the design-level lint pass; calling it
//! directly remains supported as a thin shim over the same checks.

use crate::StitchError;
use pi_fabric::{Device, TileCoord};
use pi_netlist::Design;
use std::collections::HashMap;

/// One DRC violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A cell has no placement.
    UnplacedCell { instance: String, cell: String },
    /// A cell sits on a tile whose site kind does not match.
    WrongSiteKind {
        instance: String,
        cell: String,
        at: TileCoord,
    },
    /// Two cells (possibly from different instances) share a site.
    SiteConflict { a: String, b: String, at: TileCoord },
    /// A cell lies outside its instance's pblock.
    OutsidePblock {
        instance: String,
        cell: String,
        at: TileCoord,
    },
    /// Instance pblocks overlap.
    PblockOverlap { a: String, b: String },
    /// A partition pin lies off its pblock boundary ring.
    PartpinOffPblock {
        instance: String,
        port: String,
        at: TileCoord,
    },
    /// A route visits a tile outside the device.
    RouteOffGrid { net: String, at: TileCoord },
    /// An instance that should be locked is not.
    NotLocked { instance: String },
    /// A non-clock net is unrouted.
    Unrouted { net: String },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnplacedCell { instance, cell } => {
                write!(f, "unplaced cell {instance}/{cell}")
            }
            Violation::WrongSiteKind { instance, cell, at } => {
                write!(f, "cell {instance}/{cell} on wrong site kind at {at}")
            }
            Violation::SiteConflict { a, b, at } => {
                write!(f, "site conflict at {at}: {a} vs {b}")
            }
            Violation::OutsidePblock { instance, cell, at } => {
                write!(f, "cell {instance}/{cell} at {at} outside its pblock")
            }
            Violation::PblockOverlap { a, b } => write!(f, "pblocks of {a} and {b} overlap"),
            Violation::PartpinOffPblock { instance, port, at } => {
                write!(
                    f,
                    "partpin {instance}/{port} at {at} off the pblock boundary"
                )
            }
            Violation::RouteOffGrid { net, at } => write!(f, "route of {net} off grid at {at}"),
            Violation::NotLocked { instance } => write!(f, "instance {instance} not locked"),
            Violation::Unrouted { net } => write!(f, "net {net} unrouted"),
        }
    }
}

/// Run every check; returns all violations found (empty = clean).
pub fn check_design(design: &Design, device: &Device) -> Result<Vec<Violation>, StitchError> {
    let mut violations = Vec::new();
    let mut site_owner: HashMap<TileCoord, String> = HashMap::new();

    for inst in design.instances() {
        if design.kind == pi_netlist::DesignKind::Assembled && !inst.module.locked {
            violations.push(Violation::NotLocked {
                instance: inst.name.clone(),
            });
        }
        let pblock = inst.module.pblock;
        for cell in inst.module.cells() {
            let Some(at) = cell.placement else {
                violations.push(Violation::UnplacedCell {
                    instance: inst.name.clone(),
                    cell: cell.name.clone(),
                });
                continue;
            };
            // Site kind legality.
            match device.site_at(at) {
                Ok(Some(site)) if site == cell.kind.site() => {}
                _ => violations.push(Violation::WrongSiteKind {
                    instance: inst.name.clone(),
                    cell: cell.name.clone(),
                    at,
                }),
            }
            // Exclusive occupancy across ALL instances.
            let tag = format!("{}/{}", inst.name, cell.name);
            if let Some(prev) = site_owner.insert(at, tag.clone()) {
                violations.push(Violation::SiteConflict {
                    a: prev,
                    b: tag,
                    at,
                });
            }
            // Pblock containment.
            if let Some(pb) = pblock {
                if !pb.contains(at) {
                    violations.push(Violation::OutsidePblock {
                        instance: inst.name.clone(),
                        cell: cell.name.clone(),
                        at,
                    });
                }
            }
        }
        // Partition pins must sit on the pblock boundary ring.
        if let Some(pb) = pblock {
            for port in inst.module.ports() {
                if let Some(pin) = port.partpin {
                    let on_ring = pb.contains(pin)
                        && (pin.col == pb.col_lo
                            || pin.col == pb.col_hi
                            || pin.row == pb.row_lo
                            || pin.row == pb.row_hi);
                    if !on_ring {
                        violations.push(Violation::PartpinOffPblock {
                            instance: inst.name.clone(),
                            port: port.name.clone(),
                            at: pin,
                        });
                    }
                }
            }
        }
        // Routes stay on the grid.
        for net in inst.module.nets() {
            if let Some(route) = &net.route {
                for &t in &route.tiles {
                    if !device.in_bounds(t) {
                        violations.push(Violation::RouteOffGrid {
                            net: format!("{}/{}", inst.name, net.name),
                            at: t,
                        });
                    }
                }
            } else if !net.is_clock {
                violations.push(Violation::Unrouted {
                    net: format!("{}/{}", inst.name, net.name),
                });
            }
        }
    }

    // Pairwise pblock disjointness.
    let pbs: Vec<(String, pi_fabric::Pblock)> = design
        .instances()
        .iter()
        .filter_map(|i| i.module.pblock.map(|pb| (i.name.clone(), pb)))
        .collect();
    for i in 0..pbs.len() {
        for j in (i + 1)..pbs.len() {
            if pbs[i].1.overlaps(&pbs[j].1) {
                violations.push(Violation::PblockOverlap {
                    a: pbs[i].0.clone(),
                    b: pbs[j].0.clone(),
                });
            }
        }
    }

    // Top nets routed and on-grid.
    for net in design.top_nets() {
        match &net.route {
            Some(route) => {
                for &t in &route.tiles {
                    if !device.in_bounds(t) {
                        violations.push(Violation::RouteOffGrid {
                            net: net.name.clone(),
                            at: t,
                        });
                    }
                }
            }
            None => violations.push(Violation::Unrouted {
                net: net.name.clone(),
            }),
        }
    }

    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{compose, ComposeOptions};
    use crate::db::ComponentDb;
    use pi_cnn::models;
    use pi_fabric::Pblock;
    use pi_netlist::{CheckpointMeta, StreamRole};
    use pi_synth::{synth_component, SynthOptions};

    /// The same database builder the compose tests use.
    fn toy_db(device: &Device, network: &pi_cnn::Network) -> ComponentDb {
        let comps = network
            .components(pi_cnn::graph::Granularity::Layer)
            .unwrap();
        let mut db = ComponentDb::new();
        for comp in &comps {
            let mut m = synth_component(network, comp, &SynthOptions::lenet_like()).unwrap();
            let pb = Pblock::new(1, 16, 0, 59);
            m.pblock = Some(pb);
            pi_pnr::place_module(
                &mut m,
                device,
                &pi_pnr::PlaceOptions {
                    seed: 7,
                    effort: 0.5,
                    region: Some(pb),
                },
            )
            .unwrap();
            let n_ports = m.ports().len();
            {
                let ports = m.ports_mut().unwrap();
                for (i, port) in ports.iter_mut().enumerate() {
                    let row = (i * 59 / n_ports.max(1)) as u16;
                    port.partpin = Some(TileCoord::new(
                        if port.role == StreamRole::Source || port.role == StreamRole::Clock {
                            1
                        } else {
                            16
                        },
                        row,
                    ));
                }
            }
            let _ = pi_pnr::route_module(&mut m, device, &pi_pnr::RouteOptions::default()).unwrap();
            m.lock();
            db.insert(pi_netlist::Checkpoint {
                meta: CheckpointMeta {
                    signature: comp.signature(network),
                    fmax_mhz: 500.0,
                    resources: m.resources(),
                    pblock: pb,
                    device: device.name().to_string(),
                    latency_cycles: 8,
                },
                module: m,
            });
        }
        db
    }

    #[test]
    fn composed_and_routed_design_is_clean() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (mut design, _) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        let _ =
            pi_pnr::route_design(&mut design, &device, &pi_pnr::RouteOptions::default()).unwrap();
        let violations = check_design(&design, &device).unwrap();
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn unrouted_top_nets_are_flagged() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (design, _) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        let violations = check_design(&design, &device).unwrap();
        let unrouted = violations
            .iter()
            .filter(|v| matches!(v, Violation::Unrouted { .. }))
            .count();
        assert_eq!(unrouted, design.top_nets().len());
    }

    #[test]
    fn deliberate_overlap_is_caught() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (mut design, _) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        let _ =
            pi_pnr::route_design(&mut design, &device, &pi_pnr::RouteOptions::default()).unwrap();
        // Clone instance 0's module over instance 1: pblocks and sites now
        // collide.
        let clone = design.instances()[0].module.clone();
        design.instances_mut()[1].module = clone;
        let violations = check_design(&design, &device).unwrap();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::PblockOverlap { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::SiteConflict { .. })));
    }

    #[test]
    fn partpin_off_boundary_is_caught() {
        let device = Device::xcku5p_like();
        let network = models::toy();
        let db = toy_db(&device, &network);
        let (mut design, _) = compose(&network, &db, &device, &ComposeOptions::default()).unwrap();
        let _ =
            pi_pnr::route_design(&mut design, &device, &pi_pnr::RouteOptions::default()).unwrap();
        // Force one partpin into the pblock interior. The module is locked,
        // so build a modified copy.
        let mut m = design.instances()[0].module.clone();
        let pb = m.pblock.expect("has pblock");
        let interior = TileCoord::new(pb.col_lo + 2, pb.row_lo + 2);
        // Unlock by rebuilding a shallow copy with locked=false is not part
        // of the API; emulate an upstream bug by deserializing and editing.
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        json["locked"] = serde_json::Value::Bool(false);
        m = serde_json::from_value(json).unwrap();
        m.ports_mut().unwrap()[0].partpin = Some(interior);
        m.lock();
        design.instances_mut()[0].module = m;
        let violations = check_design(&design, &device).unwrap();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::PartpinOffPblock { .. })));
    }
}
