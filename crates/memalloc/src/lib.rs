//! Best-fit-with-coalescing off-chip memory allocator (paper §V-B2).
//!
//! The VGG flow stores coefficient data and layout-configuration buffers in
//! off-chip memory; this allocator manages that address space. Memory is a
//! series of blocks on a doubly-linked list; each block records its base
//! address, size and state. Allocation picks the *best fit* (smallest free
//! block that satisfies the request) and splits it; freeing coalesces with
//! free neighbours, which is what supports defragmentation.

pub mod allocator;
pub mod layout;

pub use allocator::{AllocError, Allocation, BestFitAllocator, Policy};
pub use layout::{plan_network_layout, BufferKind, LayoutEntry, LayoutPlan};
