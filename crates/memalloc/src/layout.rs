//! Network memory-layout planning: where each layer's weights and
//! feature-map buffers live in off-chip memory (the paper's VGG data-layout
//! configuration).

use crate::allocator::{AllocError, Allocation, BestFitAllocator};
use serde::{Deserialize, Serialize};

/// What a planned buffer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferKind {
    /// Layer weights/biases.
    Weights,
    /// An intermediate feature map (double-buffered stream spill).
    FeatureMap,
    /// Data-layout configuration tables.
    Config,
}

/// One planned buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutEntry {
    pub name: String,
    pub kind: BufferKind,
    pub allocation: Allocation,
}

/// The complete plan for a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutPlan {
    pub entries: Vec<LayoutEntry>,
    pub bytes_used: u64,
    pub fragmentation: f64,
}

/// Plan off-chip storage for a network: one weights buffer per
/// parameterized layer, feature-map double buffers at every component
/// boundary, plus a configuration table. Feature-map buffers for early
/// layers are freed once downstream layers no longer need them — which is
/// what exercises coalescing.
pub fn plan_network_layout(
    network: &pi_cnn::Network,
    bytes_per_element: u64,
    capacity: u64,
) -> Result<LayoutPlan, AllocError> {
    let mut alloc = BestFitAllocator::new(capacity, 64);
    let mut entries = Vec::new();
    let shapes = network.input_shapes().map_err(|_| AllocError::ZeroSize)?;

    // Configuration tables first (small, lives forever).
    let cfg = alloc.alloc(4096)?;
    entries.push(LayoutEntry {
        name: "layout_config".to_string(),
        kind: BufferKind::Config,
        allocation: cfg,
    });

    // Weights live for the whole run.
    for (i, node) in network.nodes().iter().enumerate() {
        let w = node.layer.weights(shapes[i]);
        if w == 0 {
            continue;
        }
        let a = alloc.alloc(w * bytes_per_element)?;
        entries.push(LayoutEntry {
            name: format!("{}_weights", node.name),
            kind: BufferKind::Weights,
            allocation: a,
        });
    }

    // Feature maps: allocate the output of each layer, free the input once
    // consumed (ping-pong through the schedule).
    let mut live: Option<Allocation> = None;
    for (i, node) in network.nodes().iter().enumerate() {
        let out = node
            .layer
            .output_shape(shapes[i])
            .map_err(|_| AllocError::ZeroSize)?;
        let a = alloc.alloc(out.elements() * bytes_per_element)?;
        entries.push(LayoutEntry {
            name: format!("{}_fmap", node.name),
            kind: BufferKind::FeatureMap,
            allocation: a,
        });
        if let Some(prev) = live.take() {
            alloc.free(prev.base)?;
        }
        live = Some(a);
    }

    Ok(LayoutPlan {
        bytes_used: alloc.used(),
        fragmentation: alloc.fragmentation(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_fits_in_small_memory() {
        let net = pi_cnn::models::lenet5();
        let plan = plan_network_layout(&net, 2, 8 << 20).unwrap();
        // Weights for every conv/fc layer plus fmap per node plus config.
        let weights = plan
            .entries
            .iter()
            .filter(|e| e.kind == BufferKind::Weights)
            .count();
        assert_eq!(weights, 4);
        assert!(plan.bytes_used > 0);
    }

    #[test]
    fn vgg_needs_hundreds_of_megabytes() {
        let net = pi_cnn::models::vgg16();
        let plan = plan_network_layout(&net, 2, 1 << 30).unwrap();
        // 138M weights * 2 bytes ≈ 276 MB.
        assert!(plan.bytes_used > 250 << 20);
        let plan_err = plan_network_layout(&net, 2, 64 << 20);
        assert!(matches!(plan_err, Err(AllocError::OutOfMemory { .. })));
    }

    #[test]
    fn no_overlapping_allocations() {
        let net = pi_cnn::models::vgg_tiny();
        let plan = plan_network_layout(&net, 2, 16 << 20).unwrap();
        let mut spans: Vec<(u64, u64)> = plan
            .entries
            .iter()
            .map(|e| (e.allocation.base, e.allocation.base + e.allocation.size))
            .collect();
        spans.sort_unstable();
        // Live entries include freed feature maps that were later reused;
        // only check the *final live set*: weights + config + last fmap are
        // disjoint in any case because freed buffers may be reused. Verify
        // weights/config never overlap each other.
        let persistent: Vec<(u64, u64)> = plan
            .entries
            .iter()
            .filter(|e| e.kind != BufferKind::FeatureMap)
            .map(|e| (e.allocation.base, e.allocation.base + e.allocation.size))
            .collect();
        let mut sorted = persistent.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
    }
}
