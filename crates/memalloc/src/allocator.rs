//! The block list and best-fit policy.

use serde::{Deserialize, Serialize};

/// Errors from the allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No free block can satisfy the request.
    OutOfMemory { requested: u64, largest_free: u64 },
    /// Free of an address that is not the base of a live allocation.
    BadFree(u64),
    /// Zero-size allocation.
    ZeroSize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, largest free block {largest_free}"
            ),
            AllocError::BadFree(addr) => write!(f, "free of unallocated address {addr:#x}"),
            AllocError::ZeroSize => write!(f, "zero-size allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A successful allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    pub base: u64,
    pub size: u64,
}

/// One block of the managed space. Blocks live in a Vec ordered by base
/// address; `prev`/`next` are implicit in that ordering, giving the
/// double-link traversal the paper describes without pointer chasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Block {
    base: u64,
    size: u64,
    free: bool,
}

/// The free-block selection policy. The paper chose best fit explicitly
/// ("The goal of this allocator is to support defragmentation via
/// coalescing"); the alternatives exist for the comparison that justifies
/// that choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Smallest free block that fits (the paper's choice).
    BestFit,
    /// Lowest-address free block that fits.
    FirstFit,
    /// Largest free block.
    WorstFit,
}

/// Best-fit allocator with coalescing on free (policy configurable for the
/// ablation; best fit is the default and the paper's design).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BestFitAllocator {
    capacity: u64,
    alignment: u64,
    policy: Policy,
    blocks: Vec<Block>,
}

impl BestFitAllocator {
    /// Manage `capacity` bytes with the given allocation alignment
    /// (DDR burst alignment; 64 is typical).
    pub fn new(capacity: u64, alignment: u64) -> Self {
        Self::with_policy(capacity, alignment, Policy::BestFit)
    }

    /// Same, with an explicit free-block selection policy.
    pub fn with_policy(capacity: u64, alignment: u64, policy: Policy) -> Self {
        assert!(capacity > 0 && alignment.is_power_of_two());
        BestFitAllocator {
            capacity,
            alignment,
            policy,
            blocks: vec![Block {
                base: 0,
                size: capacity,
                free: true,
            }],
        }
    }

    /// The active selection policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Switch policy mid-run (tests/ablations only; allocation state is
    /// policy-independent).
    #[doc(hidden)]
    pub fn set_policy_for_test(&mut self, policy: Policy) {
        self.policy = policy;
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.blocks.iter().filter(|b| !b.free).map(|b| b.size).sum()
    }

    /// Bytes currently free.
    pub fn free_space(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Size of the largest free block — the defragmentation figure of
    /// merit.
    pub fn largest_free(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.free)
            .map(|b| b.size)
            .max()
            .unwrap_or(0)
    }

    /// Number of blocks on the list (free + used).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// External fragmentation: 1 − largest_free / total_free (0 when the
    /// free space is one block).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_space();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free() as f64 / free as f64
    }

    /// Allocate `size` bytes: best fit, split the chosen block.
    pub fn alloc(&mut self, size: u64) -> Result<Allocation, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let size = size.div_ceil(self.alignment) * self.alignment;
        // Select per policy; ties go to the lowest address for determinism.
        let candidates = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.free && b.size >= size);
        let best = match self.policy {
            Policy::BestFit => candidates.min_by_key(|(_, b)| (b.size, b.base)),
            Policy::FirstFit => candidates.min_by_key(|(_, b)| b.base),
            Policy::WorstFit => candidates.max_by_key(|(_, b)| (b.size, std::cmp::Reverse(b.base))),
        }
        .map(|(i, _)| i);
        let Some(i) = best else {
            return Err(AllocError::OutOfMemory {
                requested: size,
                largest_free: self.largest_free(),
            });
        };
        let block = self.blocks[i];
        let alloc = Allocation {
            base: block.base,
            size,
        };
        if block.size == size {
            self.blocks[i].free = false;
        } else {
            self.blocks[i] = Block {
                base: block.base,
                size,
                free: false,
            };
            self.blocks.insert(
                i + 1,
                Block {
                    base: block.base + size,
                    size: block.size - size,
                    free: true,
                },
            );
        }
        Ok(alloc)
    }

    /// Free an allocation by base address, coalescing with free neighbours.
    pub fn free(&mut self, base: u64) -> Result<(), AllocError> {
        let i = self
            .blocks
            .iter()
            .position(|b| b.base == base && !b.free)
            .ok_or(AllocError::BadFree(base))?;
        self.blocks[i].free = true;
        // Coalesce with the next block.
        if i + 1 < self.blocks.len() && self.blocks[i + 1].free {
            self.blocks[i].size += self.blocks[i + 1].size;
            self.blocks.remove(i + 1);
        }
        // Coalesce with the previous block.
        if i > 0 && self.blocks[i - 1].free {
            self.blocks[i - 1].size += self.blocks[i].size;
            self.blocks.remove(i);
        }
        Ok(())
    }

    /// Verify the block list invariants: contiguous coverage of the space,
    /// no adjacent free blocks (coalescing is complete). Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut cursor = 0u64;
        let mut prev_free = false;
        for b in &self.blocks {
            if b.base != cursor {
                return Err(format!(
                    "gap/overlap at {:#x}, expected {cursor:#x}",
                    b.base
                ));
            }
            if b.size == 0 {
                return Err(format!("zero-size block at {:#x}", b.base));
            }
            if b.free && prev_free {
                return Err(format!("uncoalesced free blocks at {:#x}", b.base));
            }
            prev_free = b.free;
            cursor += b.size;
        }
        if cursor != self.capacity {
            return Err(format!(
                "coverage ends at {cursor}, capacity {}",
                self.capacity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip_restores_space() {
        let mut a = BestFitAllocator::new(1 << 20, 64);
        let x = a.alloc(1000).unwrap();
        let y = a.alloc(2000).unwrap();
        assert_eq!(a.block_count(), 3);
        a.free(x.base).unwrap();
        a.free(y.base).unwrap();
        assert_eq!(a.block_count(), 1);
        assert_eq!(a.largest_free(), 1 << 20);
        a.check_invariants().unwrap();
    }

    #[test]
    fn alignment_rounds_up() {
        let mut a = BestFitAllocator::new(4096, 64);
        let x = a.alloc(1).unwrap();
        assert_eq!(x.size, 64);
        assert_eq!(x.base % 64, 0);
    }

    #[test]
    fn best_fit_prefers_snuggest_block() {
        let mut a = BestFitAllocator::new(10_000, 1);
        // Carve: [A=1000][B=3000][C=1000][D=rest] then free A and C.
        let blk_a = a.alloc(1000).unwrap();
        let _b = a.alloc(3000).unwrap();
        let c = a.alloc(1000).unwrap();
        let _d = a.alloc(4000).unwrap();
        a.free(blk_a.base).unwrap();
        a.free(c.base).unwrap();
        // A request of 900 must land in one of the 1000-byte holes, not the
        // 1000-byte tail... the snuggest hole wins (ties by address).
        let e = a.alloc(900).unwrap();
        assert_eq!(e.base, blk_a.base);
        a.check_invariants().unwrap();
    }

    #[test]
    fn coalescing_merges_both_sides() {
        let mut a = BestFitAllocator::new(4096, 1);
        let x = a.alloc(1024).unwrap();
        let y = a.alloc(1024).unwrap();
        let z = a.alloc(1024).unwrap();
        a.free(x.base).unwrap();
        a.free(z.base).unwrap();
        // [x free][y used][z coalesced with free tail]
        assert_eq!(a.block_count(), 3);
        a.free(y.base).unwrap();
        assert_eq!(a.block_count(), 1);
        a.check_invariants().unwrap();
    }

    #[test]
    fn out_of_memory_reports_largest_free() {
        let mut a = BestFitAllocator::new(1000, 1);
        let _ = a.alloc(600).unwrap();
        match a.alloc(500) {
            Err(AllocError::OutOfMemory { largest_free, .. }) => assert_eq!(largest_free, 400),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn bad_frees_are_rejected() {
        let mut a = BestFitAllocator::new(1000, 1);
        let x = a.alloc(100).unwrap();
        assert_eq!(a.free(x.base + 1), Err(AllocError::BadFree(x.base + 1)));
        a.free(x.base).unwrap();
        assert_eq!(a.free(x.base), Err(AllocError::BadFree(x.base)));
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn policies_select_differently() {
        // Holes of 1000 and 3000 bytes at known addresses, plus a big tail.
        let setup = || {
            let mut a = BestFitAllocator::with_policy(20_000, 1, Policy::BestFit);
            let h1 = a.alloc(1000).unwrap();
            let _k1 = a.alloc(100).unwrap();
            let h2 = a.alloc(3000).unwrap();
            let _k2 = a.alloc(100).unwrap();
            a.free(h1.base).unwrap();
            a.free(h2.base).unwrap();
            a
        };
        // Best fit: the 1000-byte hole.
        let mut a = setup();
        assert_eq!(a.alloc(900).unwrap().base, 0);
        // First fit also takes the lowest hole here; distinguish with a
        // request that only the later holes satisfy.
        let mut a = setup();
        let base_bf = {
            a.set_policy_for_test(Policy::BestFit);
            a.alloc(2000).unwrap().base
        };
        assert_eq!(base_bf, 1100); // the 3000-byte hole, not the tail
        let mut a = setup();
        a.set_policy_for_test(Policy::WorstFit);
        // Worst fit always takes the big tail block.
        assert_eq!(a.alloc(900).unwrap().base, 4200);
        let mut a = setup();
        a.set_policy_for_test(Policy::FirstFit);
        assert_eq!(a.alloc(900).unwrap().base, 0);
        a.check_invariants().unwrap();
    }

    #[test]
    fn best_fit_fragments_least_on_a_mixed_trace() {
        // A deterministic alloc/free churn; best fit must end with
        // fragmentation no worse than worst fit.
        let frag = |policy: Policy| {
            let mut a = BestFitAllocator::with_policy(1 << 20, 64, policy);
            let mut live: Vec<u64> = Vec::new();
            let mut x = 123456789u64;
            for i in 0..400u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let size = 64 + x % 16384;
                if i % 3 != 2 {
                    if let Ok(b) = a.alloc(size) {
                        live.push(b.base);
                    }
                } else if !live.is_empty() {
                    let idx = (x >> 32) as usize % live.len();
                    a.free(live.swap_remove(idx)).unwrap();
                }
            }
            a.check_invariants().unwrap();
            a.fragmentation()
        };
        assert!(frag(Policy::BestFit) <= frag(Policy::WorstFit) + 1e-9);
    }

    #[test]
    fn fragmentation_metric() {
        let mut a = BestFitAllocator::new(3000, 1);
        let x = a.alloc(1000).unwrap();
        let _y = a.alloc(1000).unwrap();
        a.free(x.base).unwrap();
        // Free space: 1000 (hole) + 1000 (tail) => largest 1000 of 2000.
        assert!((a.fragmentation() - 0.5).abs() < 1e-9);
    }
}
