//! Network data-flow graphs, fusion into components, and workload statistics.

use crate::layer::{Layer, PoolKind, Shape};
use crate::CnnError;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Index of a node in a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One node of the network DFG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    pub name: String,
    pub layer: Layer,
}

/// A CNN expressed as a data-flow graph. The paper's networks are chains,
/// but edges are explicit so branching topologies parse and traverse the
/// same way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    pub name: String,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Network {
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>, layer: Layer) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.into(),
            layer,
        });
        id
    }

    /// Add a producer→consumer edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to));
    }

    /// Chain-building helper: add a node wired after the last added node.
    pub fn push_layer(&mut self, name: impl Into<String>, layer: Layer) -> NodeId {
        let id = self.add_node(name, layer);
        if id.0 > 0 {
            self.add_edge(NodeId(id.0 - 1), id);
        }
        id
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |(f, _)| *f == id)
            .map(|(_, t)| *t)
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |(_, t)| *t == id)
            .map(|(f, _)| *f)
    }

    /// The unique input node.
    pub fn input(&self) -> Result<NodeId, CnnError> {
        let mut inputs = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.layer, Layer::Input(_)))
            .map(|(i, _)| NodeId(i as u32));
        let first = inputs
            .next()
            .ok_or_else(|| CnnError::BadGraph("no input layer".to_string()))?;
        if inputs.next().is_some() {
            return Err(CnnError::BadGraph("multiple input layers".to_string()));
        }
        Ok(first)
    }

    /// Breadth-first traversal order from the input — the traversal the
    /// paper's Algorithm 1 uses (CNN DFGs are deeper than wide, BFS
    /// discovers components level by level).
    pub fn bfs(&self) -> Result<Vec<NodeId>, CnnError> {
        let root = self.input()?;
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        seen[root.index()] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for w in self.successors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(CnnError::BadGraph(format!(
                "{} nodes unreachable from input",
                self.nodes.len() - order.len()
            )));
        }
        Ok(order)
    }

    /// Deterministic topological order (Kahn's algorithm, smallest ready
    /// node id first). Unlike [`Network::bfs`], every predecessor of a node
    /// appears before the node itself, which branching topologies need for
    /// shape propagation — BFS can reach a join through its short branch
    /// before the long branch has been computed. On chains the two orders
    /// coincide.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CnnError> {
        let mut indeg = vec![0usize; self.nodes.len()];
        for (_, t) in &self.edges {
            indeg[t.index()] += 1;
        }
        let mut ready: BinaryHeap<Reverse<u32>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| Reverse(i as u32))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(Reverse(i)) = ready.pop() {
            let id = NodeId(i);
            order.push(id);
            for s in self.successors(id) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(Reverse(s.0));
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(CnnError::BadGraph(format!(
                "{} nodes trapped in a dependency cycle",
                self.nodes.len() - order.len()
            )));
        }
        Ok(order)
    }

    /// Input shape of every node, propagated from the network input.
    /// For multi-predecessor nodes the first predecessor's output is used
    /// (joins are shape-preserving; pi-lint PL0201 flags disagreement).
    pub fn input_shapes(&self) -> Result<Vec<Shape>, CnnError> {
        self.bfs()?; // reachability + unique-input validation
        let order = self.topo_order()?;
        let mut out_shapes: Vec<Option<Shape>> = vec![None; self.nodes.len()];
        let mut in_shapes: Vec<Option<Shape>> = vec![None; self.nodes.len()];
        for id in order {
            let input = match self.predecessors(id).next() {
                Some(p) => out_shapes[p.index()].ok_or_else(|| {
                    CnnError::BadGraph(format!(
                        "node {} visited before predecessor (cycle?)",
                        self.node(id).name
                    ))
                })?,
                // The input node feeds itself its declared shape.
                None => match self.node(id).layer {
                    Layer::Input(s) => s,
                    _ => {
                        return Err(CnnError::BadGraph(format!(
                            "non-input node {} has no predecessor",
                            self.node(id).name
                        )))
                    }
                },
            };
            in_shapes[id.index()] = Some(input);
            out_shapes[id.index()] = Some(self.node(id).layer.output_shape(input)?);
        }
        Ok(in_shapes.into_iter().map(|s| s.unwrap()).collect())
    }

    /// Output shape of the final node; for a chain, the network output. The
    /// last node in topological order is always a sink, even when branches
    /// rejoin.
    pub fn output_shape(&self) -> Result<Shape, CnnError> {
        let shapes = self.input_shapes()?;
        let last = self
            .topo_order()?
            .into_iter()
            .last()
            .ok_or_else(|| CnnError::BadGraph("empty network".to_string()))?;
        self.node(last).layer.output_shape(shapes[last.index()])
    }

    /// Workload statistics (Table I of the paper).
    pub fn stats(&self) -> Result<NetworkStats, CnnError> {
        let shapes = self.input_shapes()?;
        let mut s = NetworkStats::default();
        for (i, node) in self.nodes.iter().enumerate() {
            let input = shapes[i];
            match node.layer {
                Layer::Conv(_) => {
                    s.conv_layers += 1;
                    s.conv_weights += node.layer.weights(input);
                    s.conv_macs += node.layer.macs(input)?;
                }
                Layer::Fc(_) => {
                    s.fc_layers += 1;
                    s.fc_weights += node.layer.weights(input);
                    s.fc_macs += node.layer.macs(input)?;
                }
                _ => {}
            }
        }
        Ok(s)
    }

    /// Partition the network into components per the paper's rule:
    /// consecutive nodes are pre-implemented as one component when the data
    /// movement between them requires no memory controller. Element-wise
    /// layers (ReLU) always fuse into the producing component; with
    /// [`Granularity::Block`], consecutive convolutions also fuse (the
    /// granularity the paper uses for VGG's conv blocks).
    ///
    /// Fusion is adjacency-aware so branching topologies partition
    /// correctly: a node joins its predecessor's component only when it is
    /// that predecessor's sole consumer and the predecessor is the current
    /// tail of its component. On a chain this reduces to the original
    /// consecutive-layer rule, so existing signatures (and therefore
    /// database cache keys) are unchanged. Joins and fanout points always
    /// start a fresh component. Components are emitted in topological
    /// order, so every producer component precedes its consumers.
    pub fn components(&self, granularity: Granularity) -> Result<Vec<Component>, CnnError> {
        let shapes = self.input_shapes()?;
        let order = self.topo_order()?;
        let mut components: Vec<Component> = Vec::new();
        // Component index each node landed in (None for the input node).
        let mut comp_of: Vec<Option<usize>> = vec![None; self.nodes.len()];

        for id in order {
            let node = self.node(id);
            if matches!(node.layer, Layer::Input(_)) {
                continue;
            }
            let input_shape = shapes[id.index()];
            let output_shape = node.layer.output_shape(input_shape)?;
            let preds: Vec<NodeId> = self.predecessors(id).collect();
            let target = match preds.as_slice() {
                // Single producer whose only consumer is this node: the wire
                // between them carries the whole stream, so fusion needs no
                // memory controller.
                [p] if self.successors(*p).count() == 1 => {
                    comp_of[p.index()].filter(|&ci| {
                        let c = &components[ci];
                        c.nodes.last() == Some(p)
                            && match node.layer {
                                // ReLU streams element-wise.
                                Layer::Relu => true,
                                // Block granularity: conv directly following
                                // conv keeps streaming through the same CLE
                                // chain.
                                Layer::Conv(_) => {
                                    granularity == Granularity::Block && c.kind_tag == "conv"
                                }
                                _ => false,
                            }
                    })
                }
                _ => None,
            };
            match target {
                Some(ci) => {
                    let c = &mut components[ci];
                    c.nodes.push(id);
                    c.output_shape = output_shape;
                    c.name.push('+');
                    c.name.push_str(&node.name);
                    comp_of[id.index()] = Some(ci);
                }
                None => {
                    comp_of[id.index()] = Some(components.len());
                    components.push(Component {
                        name: node.name.clone(),
                        kind_tag: node.layer.kind_tag().to_string(),
                        nodes: vec![id],
                        input_shape,
                        output_shape,
                    });
                }
            }
        }
        if components.is_empty() {
            return Err(CnnError::BadGraph(
                "network has no compute layers".to_string(),
            ));
        }
        Ok(components)
    }

    /// Basic structural validation.
    pub fn validate(&self) -> Result<(), CnnError> {
        for (f, t) in &self.edges {
            if f.index() >= self.nodes.len() || t.index() >= self.nodes.len() {
                return Err(CnnError::BadGraph(
                    "edge references missing node".to_string(),
                ));
            }
        }
        self.bfs().map(|_| ())
    }
}

/// Component-extraction granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// One component per non-elementwise layer (LeNet in the paper:
    /// conv1 / pool1+relu1 / conv2 / pool2+relu / fc1 / fc2).
    Layer,
    /// Consecutive convolutions additionally fuse (VGG in the paper: each
    /// conv block is one component → 12 components for VGG-16).
    Block,
}

/// A fused group of layers that will be pre-implemented as one module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Component {
    pub name: String,
    /// Kind of the leading layer ("conv", "pool", "fc").
    pub kind_tag: String,
    pub nodes: Vec<NodeId>,
    pub input_shape: Shape,
    pub output_shape: Shape,
}

impl Component {
    /// The database-matching signature: layer kinds + parameters + input
    /// shape, everything that determines the hardware.
    pub fn signature(&self, network: &Network) -> String {
        let mut sig = String::new();
        for (i, id) in self.nodes.iter().enumerate() {
            if i > 0 {
                sig.push('+');
            }
            match network.node(*id).layer {
                Layer::Conv(p) => {
                    sig.push_str(&format!(
                        "conv_k{}s{}p{}co{}",
                        p.kernel, p.stride, p.padding, p.out_channels
                    ));
                }
                // Max pooling keeps the historical spelling so signatures of
                // pre-existing networks (and their cached checkpoints) are
                // stable; average pooling is new hardware and gets its own.
                Layer::Pool(p) => match p.kind {
                    PoolKind::Max => sig.push_str(&format!("pool_w{}s{}", p.window, p.stride)),
                    PoolKind::Average => sig.push_str(&format!("apool_w{}s{}", p.window, p.stride)),
                },
                Layer::Relu => sig.push_str("relu"),
                Layer::Fc(p) => sig.push_str(&format!("fc_o{}", p.out_features)),
                Layer::Input(_) => sig.push_str("input"),
                Layer::Eltwise(op) => sig.push_str(Layer::Eltwise(op).kind_tag()),
            }
        }
        format!(
            "{}__in{}x{}x{}",
            sig, self.input_shape.channels, self.input_shape.height, self.input_shape.width
        )
    }
}

/// Workload statistics in the shape of the paper's Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    pub conv_layers: u32,
    pub conv_weights: u64,
    pub conv_macs: u64,
    pub fc_layers: u32,
    pub fc_weights: u64,
    pub fc_macs: u64,
}

impl NetworkStats {
    pub fn total_weights(&self) -> u64 {
        self.conv_weights + self.fc_weights
    }

    pub fn total_macs(&self) -> u64 {
        self.conv_macs + self.fc_macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvParams, FcParams, PoolParams};

    fn mini_net() -> Network {
        let mut n = Network::new("mini");
        n.push_layer("in", Layer::Input(Shape::new(1, 8, 8)));
        n.push_layer(
            "c1",
            Layer::Conv(ConvParams {
                kernel: 3,
                stride: 1,
                padding: 0,
                out_channels: 2,
            }),
        );
        n.push_layer("p1", Layer::Pool(PoolParams::max(2, 2)));
        n.push_layer("r1", Layer::Relu);
        n.push_layer("f1", Layer::Fc(FcParams { out_features: 4 }));
        n
    }

    #[test]
    fn bfs_visits_chain_in_order() {
        let n = mini_net();
        let order = n.bfs().unwrap();
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId(0));
        assert_eq!(order[4], NodeId(4));
    }

    #[test]
    fn shapes_propagate() {
        let n = mini_net();
        let shapes = n.input_shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(1, 8, 8));
        assert_eq!(shapes[2], Shape::new(2, 6, 6));
        assert_eq!(shapes[3], Shape::new(2, 3, 3));
        assert_eq!(n.output_shape().unwrap(), Shape::new(4, 1, 1));
    }

    #[test]
    fn component_fusion_layer_granularity() {
        let n = mini_net();
        let comps = n.components(Granularity::Layer).unwrap();
        // conv1 / pool+relu / fc
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].name, "c1");
        assert_eq!(comps[1].name, "p1+r1");
        assert_eq!(comps[1].nodes.len(), 2);
        assert_eq!(comps[2].name, "f1");
        assert_eq!(comps[1].output_shape, Shape::new(2, 3, 3));
    }

    #[test]
    fn block_granularity_fuses_conv_runs() {
        let mut n = Network::new("blocky");
        n.push_layer("in", Layer::Input(Shape::new(1, 16, 16)));
        let conv = |o| {
            Layer::Conv(ConvParams {
                kernel: 3,
                stride: 1,
                padding: 1,
                out_channels: o,
            })
        };
        n.push_layer("c1", conv(4));
        n.push_layer("r1", Layer::Relu);
        n.push_layer("c2", conv(4));
        n.push_layer("r2", Layer::Relu);
        n.push_layer("p1", Layer::Pool(PoolParams::max(2, 2)));
        assert_eq!(n.components(Granularity::Layer).unwrap().len(), 3);
        let blocks = n.components(Granularity::Block).unwrap();
        assert_eq!(blocks.len(), 2); // c1+r1+c2+r2 / p1
        assert_eq!(blocks[0].nodes.len(), 4);
    }

    #[test]
    fn signatures_are_parameter_sensitive() {
        let n = mini_net();
        let comps = n.components(Granularity::Layer).unwrap();
        let sig = comps[0].signature(&n);
        assert!(sig.contains("conv_k3s1p0co2"));
        assert!(sig.ends_with("in1x8x8"));
        // Pool+relu fused signature mentions both.
        let sig1 = comps[1].signature(&n);
        assert!(sig1.contains("pool_w2s2+relu"));
    }

    #[test]
    fn stats_sum_conv_and_fc() {
        let n = mini_net();
        let s = n.stats().unwrap();
        assert_eq!(s.conv_layers, 1);
        assert_eq!(s.fc_layers, 1);
        assert_eq!(s.conv_weights, 3 * 3 * 2 + 2);
        assert_eq!(s.fc_weights, (2 * 3 * 3) * 4 + 4);
        assert_eq!(s.total_macs(), s.conv_macs + s.fc_macs);
    }

    #[test]
    fn disconnected_and_inputless_graphs_are_rejected() {
        let mut n = Network::new("bad");
        n.add_node("a", Layer::Relu);
        assert!(n.bfs().is_err());

        let mut n2 = Network::new("bad2");
        n2.add_node("in", Layer::Input(Shape::new(1, 4, 4)));
        n2.add_node("orphan", Layer::Relu);
        assert!(n2.validate().is_err());
    }
}
