//! Cycle and latency model of the generated streaming accelerators.
//!
//! Two distinct figures appear in the paper's evaluation:
//!
//! * **Pipeline latency** (Table III, nanoseconds): the fill depth of one
//!   component's pipeline — shift registers, MAC array, adder tree, output
//!   stage — divided by its clock. The "full network" latency is the sum
//!   over the execution schedule.
//! * **Frame latency** (Fig. 7 / Table IV, milliseconds): how long one
//!   input image takes end-to-end, dominated by MACs divided by the DSPs
//!   working on them.
//!
//! Both are computed here from layer geometry so that changing the clock
//! (what the flows optimize) changes latency exactly the way the paper's
//! numbers move.

use crate::graph::{Component, Network};
use crate::layer::{Layer, Shape};
use crate::CnnError;

/// Sustained MAC-array efficiency of the streaming engines: boundary
/// effects, line-buffer refills and FIFO stalls cost ~30%.
pub const MAC_EFFICIENCY_NUM: u64 = 7;
pub const MAC_EFFICIENCY_DEN: u64 = 10;

/// Pipeline fill depth of one layer in clock cycles.
///
/// * conv: k·k systolic stages + an adder tree over k·k·C_in partial
///   products + 4 memory-controller/output stages,
/// * pool: window fill + comparator tree + 2 control stages,
/// * relu: a single stage,
/// * fc: treated as a convolution with kernel = input size, folded —
///   depth is the accumulation tree over the input plus control.
pub fn layer_pipeline_depth(layer: &Layer, input: Shape) -> u64 {
    match layer {
        Layer::Input(_) => 0,
        Layer::Conv(p) => {
            let taps = u64::from(p.kernel) * u64::from(p.kernel);
            taps + ceil_log2(taps * u64::from(input.channels)) + 4
        }
        Layer::Pool(p) => {
            let taps = u64::from(p.window) * u64::from(p.window);
            taps + ceil_log2(taps) + 2
        }
        Layer::Relu => 1,
        Layer::Fc(p) => {
            let _ = p;
            ceil_log2(input.elements()) + 6
        }
        // Join: one stream-alignment stage plus the ALU stage.
        Layer::Eltwise(_) => 2,
    }
}

/// Pipeline depth of a fused component: its layers fill back-to-back.
pub fn component_pipeline_depth(network: &Network, component: &Component) -> Result<u64, CnnError> {
    let shapes = network.input_shapes()?;
    Ok(component
        .nodes
        .iter()
        .map(|id| layer_pipeline_depth(&network.node(*id).layer, shapes[id.index()]))
        .sum())
}

/// Total MACs a component performs on one frame.
pub fn component_macs(network: &Network, component: &Component) -> Result<u64, CnnError> {
    let shapes = network.input_shapes()?;
    component
        .nodes
        .iter()
        .map(|id| network.node(*id).layer.macs(shapes[id.index()]))
        .sum()
}

/// Cycles to stream one frame through an engine with `dsps` MAC units.
/// Non-MAC components (pool, relu) stream at one element per cycle.
pub fn frame_cycles(macs: u64, elements: u64, dsps: u64) -> u64 {
    if macs == 0 {
        // Element-wise/pooling engines: output-rate limited.
        return elements;
    }
    let ideal = macs.div_ceil(dsps.max(1));
    ideal * MAC_EFFICIENCY_DEN / MAC_EFFICIENCY_NUM
}

/// Latency in nanoseconds of `cycles` at `fmax_mhz`.
pub fn latency_ns(cycles: u64, fmax_mhz: f64) -> f64 {
    assert!(fmax_mhz > 0.0, "fmax must be positive");
    cycles as f64 * 1000.0 / fmax_mhz
}

/// Latency in milliseconds of `cycles` at `fmax_mhz`.
pub fn latency_ms(cycles: u64, fmax_mhz: f64) -> f64 {
    latency_ns(cycles, fmax_mhz) / 1.0e6
}

/// Sum of per-component pipeline latencies — the paper's "full network"
/// latency row in Table III. Each component runs at its own clock in the
/// exploration table; the assembled design runs all of them at the system
/// clock.
pub fn schedule_latency_ns(depths_and_fmax: &[(u64, f64)]) -> f64 {
    depths_and_fmax
        .iter()
        .map(|&(cycles, fmax)| latency_ns(cycles, fmax))
        .sum()
}

/// Cycles to process a batch of `n` frames through a streaming pipeline:
/// frames overlap, so the pipeline fills once and then produces a frame
/// every bottleneck interval. (The paper evaluates batch size 1; this is
/// the natural extension for throughput comparisons.)
pub fn batch_cycles(bottleneck_cycles: u64, fill_cycles: u64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    fill_cycles + bottleneck_cycles * n
}

/// Sustained throughput in frames per second at steady state.
pub fn throughput_fps(bottleneck_cycles: u64, fmax_mhz: f64) -> f64 {
    if bottleneck_cycles == 0 {
        return 0.0;
    }
    fmax_mhz * 1.0e6 / bottleneck_cycles as f64
}

fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - u64::from((x - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Granularity;
    use crate::models;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(25), 5);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn conv_depth_grows_with_channels() {
        // The paper observes conv2 (more parameters) is slower/deeper than
        // conv1; our depth model preserves that ordering.
        let net = models::lenet5();
        let comps = net.components(Granularity::Layer).unwrap();
        let d_conv1 = component_pipeline_depth(&net, &comps[0]).unwrap();
        let d_conv2 = component_pipeline_depth(&net, &comps[2]).unwrap();
        assert!(d_conv2 > d_conv1);
        // Pool components are much shallower than convs.
        let d_pool = component_pipeline_depth(&net, &comps[1]).unwrap();
        assert!(d_pool < d_conv1 / 2);
    }

    #[test]
    fn frame_cycles_scale_with_dsps() {
        let slow = frame_cycles(1_000_000, 0, 10);
        let fast = frame_cycles(1_000_000, 0, 100);
        assert!(slow > fast * 9); // near-linear scaling
                                  // Element-wise engines stream at output rate.
        assert_eq!(frame_cycles(0, 784, 16), 784);
    }

    #[test]
    fn latency_conversions() {
        assert!((latency_ns(100, 500.0) - 200.0).abs() < 1e-9);
        assert!((latency_ms(1_000_000, 200.0) - 5.0).abs() < 1e-9);
        let total = schedule_latency_ns(&[(100, 500.0), (50, 250.0)]);
        assert!((total - 400.0).abs() < 1e-9);
    }

    #[test]
    fn batching_amortizes_the_fill() {
        let one = batch_cycles(1000, 200, 1);
        let ten = batch_cycles(1000, 200, 10);
        assert_eq!(one, 1200);
        assert_eq!(ten, 10_200);
        // Per-frame cost approaches the bottleneck as the batch grows.
        assert!(ten / 10 < one);
        assert_eq!(batch_cycles(1000, 200, 0), 0);
    }

    #[test]
    fn throughput_is_clock_over_bottleneck() {
        let fps = throughput_fps(1_000_000, 200.0);
        assert!((fps - 200.0).abs() < 1e-9);
        assert_eq!(throughput_fps(0, 200.0), 0.0);
    }

    #[test]
    fn vgg_frame_latency_lands_in_paper_band() {
        // Sanity: 15.3G MACs on ~2100 DSPs at 200 MHz should be tens of ms,
        // the order Fig. 7 reports for baseline VGG.
        let net = models::vgg16();
        let stats = net.stats().unwrap();
        let cycles = frame_cycles(stats.total_macs(), 0, 2100);
        let ms = latency_ms(cycles, 200.0);
        assert!((20.0..120.0).contains(&ms), "VGG latency {ms} ms");
    }
}
