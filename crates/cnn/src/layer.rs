//! CNN layer parameterizations and shape arithmetic.

use crate::CnnError;
use serde::{Deserialize, Serialize};

/// A feature-map shape: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    pub channels: u32,
    pub height: u32,
    pub width: u32,
}

impl Shape {
    pub const fn new(channels: u32, height: u32, width: u32) -> Self {
        Shape {
            channels,
            height,
            width,
        }
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.height) * u64::from(self.width)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Convolution layer parameters. The paper evaluates valid padding, stride 1
/// but the model is general.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvParams {
    pub kernel: u32,
    pub stride: u32,
    pub padding: u32,
    pub out_channels: u32,
}

impl ConvParams {
    /// Output shape for a given input, or an error when the geometry does
    /// not fit.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, CnnError> {
        let h = conv_dim(input.height, self.kernel, self.stride, self.padding)?;
        let w = conv_dim(input.width, self.kernel, self.stride, self.padding)?;
        Ok(Shape::new(self.out_channels, h, w))
    }

    /// Weight count (including biases), given the input channel count.
    pub fn weights(&self, in_channels: u32) -> u64 {
        u64::from(self.kernel)
            * u64::from(self.kernel)
            * u64::from(in_channels)
            * u64::from(self.out_channels)
            + u64::from(self.out_channels)
    }

    /// Multiply-accumulate count for one input frame.
    pub fn macs(&self, input: Shape) -> Result<u64, CnnError> {
        let out = self.output_shape(input)?;
        Ok(u64::from(out.height)
            * u64::from(out.width)
            * u64::from(self.kernel)
            * u64::from(self.kernel)
            * u64::from(input.channels)
            * u64::from(self.out_channels))
    }
}

/// Pooling reduction: max (comparator tree) or average (adder tree +
/// constant scale). The hardware differs, so the kind is part of the
/// component signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    Max,
    Average,
}

/// Pooling layer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolParams {
    pub window: u32,
    pub stride: u32,
    pub kind: PoolKind,
}

impl PoolParams {
    /// Max pooling, the variant the paper's networks use.
    pub const fn max(window: u32, stride: u32) -> Self {
        PoolParams {
            window,
            stride,
            kind: PoolKind::Max,
        }
    }

    /// Average pooling (also covers GlobalAveragePool once the importer
    /// resolves the window against the propagated input shape).
    pub const fn average(window: u32, stride: u32) -> Self {
        PoolParams {
            window,
            stride,
            kind: PoolKind::Average,
        }
    }

    pub fn output_shape(&self, input: Shape) -> Result<Shape, CnnError> {
        let h = conv_dim(input.height, self.window, self.stride, 0)?;
        let w = conv_dim(input.width, self.window, self.stride, 0)?;
        Ok(Shape::new(input.channels, h, w))
    }
}

/// Element-wise join operation (ResNet-style skip connections): two
/// same-shaped streams combined value by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EltwiseOp {
    Add,
    Mul,
}

/// Fully connected layer parameters. The paper implements FC as a
/// convolution with kernel size equal to the input size; the synthesis
/// generators follow the same scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcParams {
    pub out_features: u32,
}

impl FcParams {
    pub fn output_shape(&self, _input: Shape) -> Shape {
        Shape::new(self.out_features, 1, 1)
    }

    /// Weight count (including biases), given the flattened input size.
    pub fn weights(&self, input: Shape) -> u64 {
        input.elements() * u64::from(self.out_features) + u64::from(self.out_features)
    }

    /// MAC count for one frame: same as weight count minus biases.
    pub fn macs(&self, input: Shape) -> u64 {
        input.elements() * u64::from(self.out_features)
    }
}

/// One layer of a CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The network input (image shape).
    Input(Shape),
    Conv(ConvParams),
    Pool(PoolParams),
    Relu,
    Fc(FcParams),
    /// Element-wise two-input join (skip-connection add/mul). Shape
    /// preserving; both predecessors must produce the same shape.
    Eltwise(EltwiseOp),
}

impl Layer {
    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, CnnError> {
        match self {
            Layer::Input(s) => Ok(*s),
            Layer::Conv(p) => p.output_shape(input),
            Layer::Pool(p) => p.output_shape(input),
            Layer::Relu => Ok(input),
            Layer::Fc(p) => Ok(p.output_shape(input)),
            Layer::Eltwise(_) => Ok(input),
        }
    }

    /// Weight count given the input shape.
    pub fn weights(&self, input: Shape) -> u64 {
        match self {
            Layer::Conv(p) => p.weights(input.channels),
            Layer::Fc(p) => p.weights(input),
            _ => 0,
        }
    }

    /// MAC count for one frame given the input shape.
    pub fn macs(&self, input: Shape) -> Result<u64, CnnError> {
        match self {
            Layer::Conv(p) => p.macs(input),
            Layer::Fc(p) => Ok(p.macs(input)),
            _ => Ok(0),
        }
    }

    /// Short kind tag used in signatures and reports.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            Layer::Input(_) => "input",
            Layer::Conv(_) => "conv",
            Layer::Pool(_) => "pool",
            Layer::Relu => "relu",
            Layer::Fc(_) => "fc",
            Layer::Eltwise(EltwiseOp::Add) => "add",
            Layer::Eltwise(EltwiseOp::Mul) => "mul",
        }
    }

    /// True for layers that compute element-wise on the stream and therefore
    /// need no memory controller at their input boundary (the paper's fusion
    /// rule: ReLU can be applied directly to intermediate pooling results).
    /// Joins are also element-wise but synchronize two streams, so they keep
    /// their own component and are excluded here.
    pub fn is_elementwise(&self) -> bool {
        matches!(self, Layer::Relu)
    }

    /// True for two-input join layers (skip-connection add/mul).
    pub fn is_join(&self) -> bool {
        matches!(self, Layer::Eltwise(_))
    }
}

fn conv_dim(size: u32, kernel: u32, stride: u32, padding: u32) -> Result<u32, CnnError> {
    if stride == 0 || kernel == 0 {
        return Err(CnnError::ShapeMismatch(
            "kernel and stride must be nonzero".to_string(),
        ));
    }
    let padded = size + 2 * padding;
    if padded < kernel {
        return Err(CnnError::ShapeMismatch(format!(
            "window {kernel} larger than padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes_match_lenet() {
        // LeNet conv1: 1x32x32, 5x5 valid stride 1 -> 6x28x28.
        let p = ConvParams {
            kernel: 5,
            stride: 1,
            padding: 0,
            out_channels: 6,
        };
        let out = p.output_shape(Shape::new(1, 32, 32)).unwrap();
        assert_eq!(out, Shape::new(6, 28, 28));
        // Paper: conv1 has 156 parameters and 117600 multiplications.
        assert_eq!(p.weights(1), 156);
        assert_eq!(p.macs(Shape::new(1, 32, 32)).unwrap(), 117_600);
    }

    #[test]
    fn conv2_matches_paper_counts() {
        // LeNet conv2: 6x14x14, 5x5 -> 16x10x10; paper: 2416 params, 240000 MACs.
        let p = ConvParams {
            kernel: 5,
            stride: 1,
            padding: 0,
            out_channels: 16,
        };
        assert_eq!(p.weights(6), 2416);
        assert_eq!(p.macs(Shape::new(6, 14, 14)).unwrap(), 240_000);
    }

    #[test]
    fn pool_and_relu_shapes() {
        let p = PoolParams::max(2, 2);
        let out = p.output_shape(Shape::new(6, 28, 28)).unwrap();
        assert_eq!(out, Shape::new(6, 14, 14));
        assert_eq!(
            Layer::Relu.output_shape(out).unwrap(),
            Shape::new(6, 14, 14)
        );
        // Average pooling reduces the same geometry; the join preserves it.
        let a = PoolParams::average(2, 2);
        assert_eq!(
            a.output_shape(Shape::new(6, 28, 28)).unwrap(),
            Shape::new(6, 14, 14)
        );
        assert_eq!(
            Layer::Eltwise(EltwiseOp::Add)
                .output_shape(Shape::new(6, 14, 14))
                .unwrap(),
            Shape::new(6, 14, 14)
        );
    }

    #[test]
    fn fc_counts() {
        let p = FcParams { out_features: 120 };
        let input = Shape::new(16, 5, 5);
        assert_eq!(p.weights(input), 400 * 120 + 120);
        assert_eq!(p.macs(input), 48_000);
        assert_eq!(p.output_shape(input), Shape::new(120, 1, 1));
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        let p = ConvParams {
            kernel: 5,
            stride: 1,
            padding: 0,
            out_channels: 1,
        };
        assert!(p.output_shape(Shape::new(1, 3, 3)).is_err());
        let z = ConvParams {
            kernel: 0,
            stride: 1,
            padding: 0,
            out_channels: 1,
        };
        assert!(z.output_shape(Shape::new(1, 8, 8)).is_err());
    }

    #[test]
    fn vgg_padding_preserves_size() {
        let p = ConvParams {
            kernel: 3,
            stride: 1,
            padding: 1,
            out_channels: 64,
        };
        let out = p.output_shape(Shape::new(3, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(64, 224, 224));
    }
}
