//! Bit-accurate fixed-point reference inference.
//!
//! These routines define the function the generated accelerators must
//! compute; the integration tests check the cycle-level architecture against
//! them. Convolution parallelizes over output channels with rayon — the
//! reference model is itself an honest parallel workload.
//!
//! Determinism audit: the three parallel regions here (`conv2d` output
//! planes, the `conv2d_im2col` GEMM rows, `fully_connected` outputs) are
//! pure integer arithmetic over disjoint output slices and emit no
//! telemetry, and the parallel iterators return results in input index
//! order at every thread count — so inference is byte-identical regardless
//! of `PI_THREADS`. Any telemetry added inside these closures must go
//! through `pi_obs::BufferedObs` (buffer per item, flush in index order),
//! like the parallel regions in `pi-flow`.

use crate::graph::{Network, NodeId};
use crate::layer::{ConvParams, EltwiseOp, FcParams, Layer, PoolKind, PoolParams};
use crate::tensor::{requantize_acc, Tensor};
use crate::CnnError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::collections::HashMap;

/// Weights of one parameterized layer, in Q8.8.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Conv: `[out_c][in_c][k][k]` flattened. FC: `[out][in]` flattened.
    pub kernel: Vec<i16>,
    pub bias: Vec<i16>,
}

/// Weights for every parameterized node of a network.
#[derive(Debug, Clone, Default)]
pub struct Weights {
    by_node: HashMap<NodeId, LayerWeights>,
}

impl Weights {
    /// Deterministic pseudo-random weights in (-0.5, 0.5) — the stand-in for
    /// trained parameters (the paper hard-codes weights in ROM; the flow
    /// never looks at their values, only their count).
    pub fn random(network: &Network, seed: u64) -> Result<Weights, CnnError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let shapes = network.input_shapes()?;
        let mut by_node = HashMap::new();
        for (i, node) in network.nodes().iter().enumerate() {
            let input = shapes[i];
            let (kernel_len, bias_len) = match node.layer {
                Layer::Conv(p) => (
                    (p.kernel * p.kernel * input.channels * p.out_channels) as usize,
                    p.out_channels as usize,
                ),
                Layer::Fc(p) => (
                    (input.elements() * u64::from(p.out_features)) as usize,
                    p.out_features as usize,
                ),
                _ => continue,
            };
            let mut gen =
                |n: usize| -> Vec<i16> { (0..n).map(|_| rng.gen_range(-128..=127)).collect() };
            by_node.insert(
                NodeId(i as u32),
                LayerWeights {
                    kernel: gen(kernel_len),
                    bias: gen(bias_len),
                },
            );
        }
        Ok(Weights { by_node })
    }

    pub fn get(&self, id: NodeId) -> Option<&LayerWeights> {
        self.by_node.get(&id)
    }

    /// Total parameter count stored.
    pub fn parameter_count(&self) -> usize {
        self.by_node
            .values()
            .map(|w| w.kernel.len() + w.bias.len())
            .sum()
    }
}

/// 2-D convolution over all channels (valid/same per padding), stride
/// supported, Q8.8 in/out with i32 accumulation.
pub fn conv2d(input: &Tensor, p: &ConvParams, w: &LayerWeights) -> Result<Tensor, CnnError> {
    let out_shape = p.output_shape(input.shape())?;
    let in_c = input.channels;
    let k = p.kernel;
    expect_len(
        w.kernel.len(),
        (k * k * in_c * p.out_channels) as usize,
        "conv kernel",
    )?;
    expect_len(w.bias.len(), p.out_channels as usize, "conv bias")?;

    let mut out = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
    let plane = (out_shape.height * out_shape.width) as usize;
    let planes: Vec<Vec<i16>> = (0..p.out_channels)
        .into_par_iter()
        .map(|oc| {
            let mut data = vec![0i16; plane];
            let wbase = (oc * in_c * k * k) as usize;
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let mut acc = i32::from(w.bias[oc as usize]) << crate::tensor::FRAC_BITS;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = i64::from(oy * p.stride + ky) - i64::from(p.padding);
                                let ix = i64::from(ox * p.stride + kx) - i64::from(p.padding);
                                let v = input.get_padded(ic, iy, ix);
                                let wv = w.kernel[wbase + ((ic * k + ky) * k + kx) as usize];
                                acc = acc.saturating_add(i32::from(v) * i32::from(wv));
                            }
                        }
                    }
                    data[(oy * out_shape.width + ox) as usize] = requantize_acc(acc);
                }
            }
            data
        })
        .collect();
    for (oc, data) in planes.into_iter().enumerate() {
        out.channel_mut(oc as u32).copy_from_slice(&data);
    }
    Ok(out)
}

/// Convolution by explicit im2col + matrix multiply — an independent
/// implementation used to cross-check [`conv2d`] (the accelerator's systolic
/// dataflow corresponds to the direct form; GEMM-based CPU references use
/// this one). Bit-identical results are a property test.
pub fn conv2d_im2col(input: &Tensor, p: &ConvParams, w: &LayerWeights) -> Result<Tensor, CnnError> {
    let out_shape = p.output_shape(input.shape())?;
    let k = p.kernel;
    let in_c = input.channels;
    expect_len(
        w.kernel.len(),
        (k * k * in_c * p.out_channels) as usize,
        "conv kernel",
    )?;
    expect_len(w.bias.len(), p.out_channels as usize, "conv bias")?;

    // Column matrix: one row per output position, one column per tap.
    let taps = (k * k * in_c) as usize;
    let positions = (out_shape.height * out_shape.width) as usize;
    let mut cols = vec![0i16; positions * taps];
    for oy in 0..out_shape.height {
        for ox in 0..out_shape.width {
            let row = (oy * out_shape.width + ox) as usize;
            let mut t = 0usize;
            for ic in 0..in_c {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = i64::from(oy * p.stride + ky) - i64::from(p.padding);
                        let ix = i64::from(ox * p.stride + kx) - i64::from(p.padding);
                        cols[row * taps + t] = input.get_padded(ic, iy, ix);
                        t += 1;
                    }
                }
            }
        }
    }

    // GEMM: [out_c x taps] * [taps x positions].
    let mut out = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
    let planes: Vec<Vec<i16>> = (0..p.out_channels as usize)
        .into_par_iter()
        .map(|oc| {
            let wrow = &w.kernel[oc * taps..(oc + 1) * taps];
            (0..positions)
                .map(|pos| {
                    let mut acc = i32::from(w.bias[oc]) << crate::tensor::FRAC_BITS;
                    for (v, wv) in cols[pos * taps..(pos + 1) * taps].iter().zip(wrow) {
                        acc = acc.saturating_add(i32::from(*v) * i32::from(*wv));
                    }
                    requantize_acc(acc)
                })
                .collect()
        })
        .collect();
    for (oc, data) in planes.into_iter().enumerate() {
        out.channel_mut(oc as u32).copy_from_slice(&data);
    }
    Ok(out)
}

/// Max pooling.
pub fn maxpool(input: &Tensor, p: &PoolParams) -> Result<Tensor, CnnError> {
    let out_shape = p.output_shape(input.shape())?;
    let mut out = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
    for c in 0..out_shape.channels {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut best = i16::MIN;
                for wy in 0..p.window {
                    for wx in 0..p.window {
                        best = best.max(input.get(c, oy * p.stride + wy, ox * p.stride + wx));
                    }
                }
                out.set(c, oy, ox, best);
            }
        }
    }
    Ok(out)
}

/// Average pooling: window mean in Q8.8 (floor division — the hardware's
/// adder tree feeds a truncating constant divider).
pub fn avgpool(input: &Tensor, p: &PoolParams) -> Result<Tensor, CnnError> {
    let out_shape = p.output_shape(input.shape())?;
    let mut out = Tensor::zeros(out_shape.channels, out_shape.height, out_shape.width);
    let count = i32::from(p.window as u16) * i32::from(p.window as u16);
    for c in 0..out_shape.channels {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut acc = 0i32;
                for wy in 0..p.window {
                    for wx in 0..p.window {
                        acc += i32::from(input.get(c, oy * p.stride + wy, ox * p.stride + wx));
                    }
                }
                out.set(c, oy, ox, acc.div_euclid(count) as i16);
            }
        }
    }
    Ok(out)
}

/// Pooling, dispatched on the reduction kind.
pub fn pool(input: &Tensor, p: &PoolParams) -> Result<Tensor, CnnError> {
    match p.kind {
        PoolKind::Max => maxpool(input, p),
        PoolKind::Average => avgpool(input, p),
    }
}

/// Element-wise two-input join in Q8.8: saturating add, or multiply with
/// requantization.
pub fn eltwise(op: EltwiseOp, a: &Tensor, b: &Tensor) -> Result<Tensor, CnnError> {
    if a.shape() != b.shape() {
        return Err(CnnError::ShapeMismatch(format!(
            "join operands disagree: {} vs {}",
            a.shape(),
            b.shape()
        )));
    }
    let data = a
        .raw()
        .iter()
        .zip(b.raw())
        .map(|(&x, &y)| match op {
            EltwiseOp::Add => x.saturating_add(y),
            EltwiseOp::Mul => requantize_acc(i32::from(x) * i32::from(y)),
        })
        .collect();
    Ok(Tensor::from_raw(a.channels, a.height, a.width, data))
}

/// Rectified linear unit.
pub fn relu(input: &Tensor) -> Tensor {
    let data = input.raw().iter().map(|&v| v.max(0)).collect();
    Tensor::from_raw(input.channels, input.height, input.width, data)
}

/// Fully connected layer over the flattened input.
pub fn fully_connected(input: &Tensor, p: &FcParams, w: &LayerWeights) -> Result<Tensor, CnnError> {
    let in_len = input.len();
    expect_len(
        w.kernel.len(),
        in_len * p.out_features as usize,
        "fc kernel",
    )?;
    expect_len(w.bias.len(), p.out_features as usize, "fc bias")?;
    let raw = input.raw();
    let data: Vec<i16> = (0..p.out_features as usize)
        .into_par_iter()
        .map(|o| {
            let row = &w.kernel[o * in_len..(o + 1) * in_len];
            let mut acc = i32::from(w.bias[o]) << crate::tensor::FRAC_BITS;
            for (v, wv) in raw.iter().zip(row) {
                acc = acc.saturating_add(i32::from(*v) * i32::from(*wv));
            }
            requantize_acc(acc)
        })
        .collect();
    Ok(Tensor::from_raw(p.out_features, 1, 1, data))
}

/// Run one layer.
pub fn apply_layer(
    layer: &Layer,
    input: &Tensor,
    weights: Option<&LayerWeights>,
) -> Result<Tensor, CnnError> {
    match layer {
        Layer::Input(shape) => {
            if input.shape() != *shape {
                return Err(CnnError::ShapeMismatch(format!(
                    "input tensor {} does not match declared input {}",
                    input.shape(),
                    shape
                )));
            }
            Ok(input.clone())
        }
        Layer::Conv(p) => conv2d(
            input,
            p,
            weights.ok_or_else(|| CnnError::BadGraph("conv missing weights".to_string()))?,
        ),
        Layer::Pool(p) => pool(input, p),
        Layer::Relu => Ok(relu(input)),
        Layer::Fc(p) => fully_connected(
            input,
            p,
            weights.ok_or_else(|| CnnError::BadGraph("fc missing weights".to_string()))?,
        ),
        // Joins take two operands; forward_trace feeds them via `eltwise`.
        Layer::Eltwise(_) => Err(CnnError::BadGraph(
            "join layer needs two operands (use forward_trace)".to_string(),
        )),
    }
}

/// Forward propagation through the whole network, returning the output of
/// every node in topological order (last entry = network output). Joins
/// receive both predecessor outputs; every other layer follows the
/// first-predecessor rule.
pub fn forward_trace(
    network: &Network,
    weights: &Weights,
    input: &Tensor,
) -> Result<Vec<(NodeId, Tensor)>, CnnError> {
    network.bfs()?; // reachability + unique-input validation
    let order = network.topo_order()?;
    let mut outputs: HashMap<NodeId, Tensor> = HashMap::with_capacity(order.len());
    let mut trace = Vec::with_capacity(order.len());
    for id in order {
        let node = network.node(id);
        let preds: Vec<NodeId> = network.predecessors(id).collect();
        let fetch = |p: &NodeId| -> Result<Tensor, CnnError> {
            outputs
                .get(p)
                .cloned()
                .ok_or_else(|| CnnError::BadGraph("predecessor not yet computed".to_string()))
        };
        let out = match (&node.layer, preds.as_slice()) {
            (Layer::Eltwise(op), [a, b]) => eltwise(*op, &fetch(a)?, &fetch(b)?)?,
            (Layer::Eltwise(_), _) => {
                return Err(CnnError::BadGraph(format!(
                    "join {} has {} predecessors, needs exactly 2",
                    node.name,
                    preds.len()
                )))
            }
            (_, []) => apply_layer(&node.layer, input, weights.get(id))?,
            (_, [p, ..]) => apply_layer(&node.layer, &fetch(p)?, weights.get(id))?,
        };
        outputs.insert(id, out.clone());
        trace.push((id, out));
    }
    Ok(trace)
}

/// Forward propagation returning only the network output.
pub fn forward(network: &Network, weights: &Weights, input: &Tensor) -> Result<Tensor, CnnError> {
    forward_trace(network, weights, input)?
        .pop()
        .map(|(_, t)| t)
        .ok_or_else(|| CnnError::BadGraph("empty network".to_string()))
}

fn expect_len(got: usize, want: usize, what: &str) -> Result<(), CnnError> {
    if got != want {
        return Err(CnnError::ShapeMismatch(format!(
            "{what}: expected {want} values, got {got}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Shape;
    use crate::models;
    use crate::tensor::quantize;

    #[test]
    fn identity_conv_passes_signal() {
        // 1x3x3 input, 1 output channel, 3x3 kernel = delta at center.
        let p = ConvParams {
            kernel: 3,
            stride: 1,
            padding: 1,
            out_channels: 1,
        };
        let mut kernel = vec![0i16; 9];
        kernel[4] = quantize(1.0);
        let w = LayerWeights {
            kernel,
            bias: vec![0],
        };
        let input = Tensor::from_f32(1, 3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let out = conv2d(&input, &p, &w).unwrap();
        assert_eq!(out.raw(), input.raw());
    }

    #[test]
    fn conv_matches_hand_computation() {
        // 1x2x2 input, 2x2 kernel of ones, valid -> single output = sum.
        let p = ConvParams {
            kernel: 2,
            stride: 1,
            padding: 0,
            out_channels: 1,
        };
        let w = LayerWeights {
            kernel: vec![quantize(1.0); 4],
            bias: vec![quantize(0.5)],
        };
        let input = Tensor::from_f32(1, 2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let out = conv2d(&input, &p, &w).unwrap();
        assert_eq!(out.get(0, 0, 0), quantize(10.5));
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for (cin, cout, k, size, stride, pad) in [
            (1, 2, 3, 8, 1, 0),
            (3, 4, 3, 9, 1, 1),
            (2, 3, 5, 12, 2, 2),
            (4, 1, 1, 6, 1, 0),
        ] {
            let p = ConvParams {
                kernel: k,
                stride,
                padding: pad,
                out_channels: cout,
            };
            let data: Vec<i16> = (0..cin * size * size)
                .map(|_| rng.gen_range(-300..300))
                .collect();
            let input = Tensor::from_raw(cin, size, size, data);
            let w = LayerWeights {
                kernel: (0..(k * k * cin * cout) as usize)
                    .map(|_| rng.gen_range(-100..100))
                    .collect(),
                bias: (0..cout as usize).map(|_| rng.gen_range(-50..50)).collect(),
            };
            let direct = conv2d(&input, &p, &w).unwrap();
            let gemm = conv2d_im2col(&input, &p, &w).unwrap();
            assert_eq!(direct, gemm, "mismatch for k={k} cin={cin} stride={stride}");
        }
    }

    #[test]
    fn maxpool_and_relu() {
        let input = Tensor::from_raw(1, 2, 2, vec![-5, 9, 3, 1]);
        let p = PoolParams::max(2, 2);
        let pooled = maxpool(&input, &p).unwrap();
        assert_eq!(pooled.get(0, 0, 0), 9);
        let r = relu(&input);
        assert_eq!(r.raw(), &[0, 9, 3, 1]);
    }

    #[test]
    fn avgpool_and_eltwise() {
        let input = Tensor::from_raw(1, 2, 2, vec![-4, 8, 4, 0]);
        let p = PoolParams::average(2, 2);
        assert_eq!(avgpool(&input, &p).unwrap().get(0, 0, 0), 2);
        let a = Tensor::from_f32(1, 1, 2, &[1.0, -2.0]);
        let b = Tensor::from_f32(1, 1, 2, &[0.5, 3.0]);
        let sum = eltwise(EltwiseOp::Add, &a, &b).unwrap();
        assert_eq!(sum.raw(), &[quantize(1.5), quantize(1.0)]);
        let prod = eltwise(EltwiseOp::Mul, &a, &b).unwrap();
        assert_eq!(prod.raw(), &[quantize(0.5), quantize(-6.0)]);
        // Operand shape disagreement is an error, not a panic.
        let c = Tensor::zeros(1, 2, 2);
        assert!(eltwise(EltwiseOp::Add, &a, &c).is_err());
    }

    #[test]
    fn forward_through_resnet_joins_both_branches() {
        let net = models::resnet_small();
        let weights = Weights::random(&net, 11).unwrap();
        let input = Tensor::zeros(3, 32, 32);
        let trace = forward_trace(&net, &weights, &input).unwrap();
        assert_eq!(trace.len(), net.nodes().len());
        let out = &trace.last().unwrap().1;
        assert_eq!(out.shape(), Shape::new(10, 1, 1));
        // Determinism across runs.
        let again = forward(&net, &weights, &input).unwrap();
        assert_eq!(*out, again);
    }

    #[test]
    fn fc_computes_dot_products() {
        let input = Tensor::from_f32(1, 1, 2, &[1.0, 2.0]);
        let p = FcParams { out_features: 2 };
        let w = LayerWeights {
            kernel: vec![
                quantize(1.0),
                quantize(1.0), // row 0: sum
                quantize(1.0),
                quantize(-1.0), // row 1: difference
            ],
            bias: vec![0, 0],
        };
        let out = fully_connected(&input, &p, &w).unwrap();
        assert_eq!(out.get(0, 0, 0), quantize(3.0));
        assert_eq!(out.get(1, 0, 0), quantize(-1.0));
    }

    #[test]
    fn forward_through_lenet_is_deterministic() {
        let net = models::lenet5();
        let weights = Weights::random(&net, 7).unwrap();
        let input = Tensor::zeros(1, 32, 32);
        let a = forward(&net, &weights, &input).unwrap();
        let b = forward(&net, &weights, &input).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shape(), Shape::new(10, 1, 1));
    }

    #[test]
    fn trace_has_one_entry_per_node() {
        let net = models::toy();
        let weights = Weights::random(&net, 3).unwrap();
        let input = Tensor::zeros(1, 8, 8);
        let trace = forward_trace(&net, &weights, &input).unwrap();
        assert_eq!(trace.len(), net.nodes().len());
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let net = models::toy();
        let weights = Weights::random(&net, 3).unwrap();
        let input = Tensor::zeros(1, 4, 4);
        assert!(forward(&net, &weights, &input).is_err());
    }

    #[test]
    fn weight_counts_match_stats() {
        let net = models::lenet5();
        let weights = Weights::random(&net, 1).unwrap();
        let stats = net.stats().unwrap();
        assert_eq!(weights.parameter_count() as u64, stats.total_weights());
    }
}
