//! CNN substrate: layer definitions, data-flow graphs, reference models,
//! the architecture-definition format, fixed-point inference, and the
//! cycle/latency model of the generated streaming accelerators.
//!
//! This crate is tool-agnostic — it knows nothing about FPGAs. The synthesis
//! generators consume [`Layer`] parameters to build circuits; the flows
//! consume [`Network`] graphs to drive composition; the experiment harness
//! uses [`infer`] to validate that a generated accelerator computes the same
//! function as the reference model and [`cycles`] to convert clock frequency
//! into end-to-end latency.

pub mod archdef;
pub mod cycles;
pub mod graph;
pub mod infer;
pub mod layer;
pub mod models;
pub mod tensor;

pub use archdef::{parse_archdef, parse_archdef_lenient};
pub use graph::{Component, Network, NetworkStats, NodeId};
pub use layer::{ConvParams, EltwiseOp, FcParams, Layer, PoolKind, PoolParams, Shape};
pub use tensor::Tensor;

/// Errors from CNN graph construction and the archdef parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CnnError {
    /// Layer parameters are inconsistent with the incoming shape.
    ShapeMismatch(String),
    /// Architecture-definition syntax error.
    Parse { line: usize, msg: String },
    /// Graph structure error (e.g. no input layer).
    BadGraph(String),
    /// Model-descriptor import error. `loc` locates the defect in the
    /// source descriptor: a `line N` for line-oriented formats, a JSON
    /// field path like `nodes[3].attrs.kernel` otherwise.
    Import { loc: String, msg: String },
}

impl std::fmt::Display for CnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CnnError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            CnnError::Parse { line, msg } => write!(f, "archdef parse error at line {line}: {msg}"),
            CnnError::BadGraph(m) => write!(f, "bad network graph: {m}"),
            CnnError::Import { loc, msg } => write!(f, "model import error at {loc}: {msg}"),
        }
    }
}

impl std::error::Error for CnnError {}
