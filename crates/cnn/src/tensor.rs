//! Fixed-point tensors. The paper's accelerators use 16-bit fixed point; we
//! model Q8.8: i16 storage, i32 accumulation, saturating requantization.

use serde::{Deserialize, Serialize};

/// Number of fractional bits in the Q8.8 representation.
pub const FRAC_BITS: u32 = 8;
/// Fixed-point one.
pub const ONE: i16 = 1 << FRAC_BITS;

/// Convert a float to Q8.8 with saturation.
pub fn quantize(x: f32) -> i16 {
    let v = (x * f32::from(ONE)).round();
    v.clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16
}

/// Convert Q8.8 back to float.
pub fn dequantize(x: i16) -> f32 {
    f32::from(x) / f32::from(ONE)
}

/// Requantize an i32 accumulator (Q16.16 after a multiply) to Q8.8 with
/// saturation — the same operation the accelerator's output stage performs.
pub fn requantize_acc(acc: i32) -> i16 {
    (acc >> FRAC_BITS).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

/// A channels × height × width tensor of Q8.8 values, channel-major.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor {
    pub channels: u32,
    pub height: u32,
    pub width: u32,
    data: Vec<i16>,
}

impl Tensor {
    /// A zero-filled tensor.
    pub fn zeros(channels: u32, height: u32, width: u32) -> Self {
        Tensor {
            channels,
            height,
            width,
            data: vec![0; (channels * height * width) as usize],
        }
    }

    /// Build from raw Q8.8 data (channel-major). Panics if the length does
    /// not match the shape.
    pub fn from_raw(channels: u32, height: u32, width: u32, data: Vec<i16>) -> Self {
        assert_eq!(data.len(), (channels * height * width) as usize);
        Tensor {
            channels,
            height,
            width,
            data,
        }
    }

    /// Build from floats, quantizing each element.
    pub fn from_f32(channels: u32, height: u32, width: u32, data: &[f32]) -> Self {
        assert_eq!(data.len(), (channels * height * width) as usize);
        Tensor {
            channels,
            height,
            width,
            data: data.iter().copied().map(quantize).collect(),
        }
    }

    pub fn shape(&self) -> crate::layer::Shape {
        crate::layer::Shape::new(self.channels, self.height, self.width)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, c: u32, y: u32, x: u32) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        ((c * self.height + y) * self.width + x) as usize
    }

    /// Element access.
    #[inline]
    pub fn get(&self, c: u32, y: u32, x: u32) -> i16 {
        self.data[self.index(c, y, x)]
    }

    /// Element access with zero padding outside bounds (signed coords).
    #[inline]
    pub fn get_padded(&self, c: u32, y: i64, x: i64) -> i16 {
        if y < 0 || x < 0 || y >= i64::from(self.height) || x >= i64::from(self.width) {
            0
        } else {
            self.get(c, y as u32, x as u32)
        }
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, c: u32, y: u32, x: u32, v: i16) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    /// Raw channel-major data.
    pub fn raw(&self) -> &[i16] {
        &self.data
    }

    /// Mutable channel-major slice of one channel plane.
    pub fn channel_mut(&mut self, c: u32) -> &mut [i16] {
        let plane = (self.height * self.width) as usize;
        let start = c as usize * plane;
        &mut self.data[start..start + plane]
    }

    /// Index of the maximum element (argmax over the flattened tensor) —
    /// classification readout.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, -0.25, 3.75] {
            let q = quantize(x);
            assert!((dequantize(q) - x).abs() < 1.0 / 256.0);
        }
        // Saturation.
        assert_eq!(quantize(1000.0), i16::MAX);
        assert_eq!(quantize(-1000.0), i16::MIN);
    }

    #[test]
    fn requantization_matches_shift() {
        // 2.0 * 3.0 in Q8.8: (512 * 768) >> 8 = 1536 = 6.0.
        let acc = i32::from(quantize(2.0)) * i32::from(quantize(3.0));
        assert_eq!(requantize_acc(acc), quantize(6.0));
        assert_eq!(requantize_acc(i32::MAX), i16::MAX);
        assert_eq!(requantize_acc(i32::MIN), i16::MIN);
    }

    #[test]
    fn indexing_and_padding() {
        let mut t = Tensor::zeros(2, 3, 4);
        t.set(1, 2, 3, 42);
        assert_eq!(t.get(1, 2, 3), 42);
        assert_eq!(t.get_padded(1, 2, 3), 42);
        assert_eq!(t.get_padded(1, -1, 0), 0);
        assert_eq!(t.get_padded(1, 0, 99), 0);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::from_raw(1, 1, 4, vec![3, -9, 17, 5]);
        assert_eq!(t.argmax(), 2);
    }
}
