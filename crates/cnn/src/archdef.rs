//! The "CNN architecture definition" format (paper §IV-B1): the user-facing
//! text file the architecture-optimization stage parses into a DFG.
//!
//! Grammar (one directive per line, `#` comments):
//!
//! ```text
//! network lenet5
//! input 1x32x32
//! conv conv1 kernel=5 stride=1 pad=0 out=6
//! pool pool1 window=2 stride=2
//! relu relu1
//! fc   fc1   out=120
//! ```
//!
//! Layers chain in file order, matching the layer-by-layer execution
//! schedule of the streaming architectures the paper targets. Non-linear
//! topologies override the implicit chain edge with `from=`, naming one or
//! more earlier layers as producers:
//!
//! ```text
//! conv skip kernel=1 stride=1 pad=0 out=16 from=input
//! add  join from=relu2,skip
//! ```
//!
//! `avgpool` declares average pooling (same keys as `pool`); `add`/`mul`
//! declare element-wise two-input joins.

use crate::graph::{Network, NodeId};
use crate::layer::{ConvParams, EltwiseOp, FcParams, Layer, PoolParams, Shape};
use crate::CnnError;
use std::collections::HashMap;

/// Parse an architecture definition into a [`Network`].
pub fn parse_archdef(text: &str) -> Result<Network, CnnError> {
    let net = parse_archdef_lenient(text)?;
    net.validate()?;
    // Shape propagation catches geometric inconsistencies eagerly so the
    // user gets a parse-time error, not a synthesis-time one.
    net.input_shapes()?;
    Ok(net)
}

/// Parse without the eager structural/geometric validation.
///
/// The linter needs this: a shape-inconsistent network must come back as
/// a `Network` so the graph passes can report *every* defect as a
/// diagnostic, instead of the parser aborting at the first one. Syntax
/// errors are still errors.
pub fn parse_archdef_lenient(text: &str) -> Result<Network, CnnError> {
    let mut network: Option<Network> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a word");
        let err = |msg: &str| CnnError::Parse {
            line: lineno + 1,
            msg: msg.to_string(),
        };
        match directive {
            "network" => {
                let name = words.next().ok_or_else(|| err("missing network name"))?;
                if network.is_some() {
                    return Err(err("duplicate network directive"));
                }
                network = Some(Network::new(name));
            }
            "input" => {
                let net = network
                    .as_mut()
                    .ok_or_else(|| err("input before network"))?;
                let shape = words.next().ok_or_else(|| err("missing input shape"))?;
                let dims: Vec<u32> = shape
                    .split('x')
                    .map(|d| d.parse().map_err(|_| err("bad input dimension")))
                    .collect::<Result<_, _>>()?;
                if dims.len() != 3 {
                    return Err(err("input shape must be CxHxW"));
                }
                net.push_layer("input", Layer::Input(Shape::new(dims[0], dims[1], dims[2])));
            }
            "conv" | "pool" | "avgpool" | "relu" | "fc" | "add" | "mul" => {
                let net = network
                    .as_mut()
                    .ok_or_else(|| err("layer before network"))?;
                let name = words.next().ok_or_else(|| err("missing layer name"))?;
                // `from=` carries layer names, not numbers — peel it off
                // before the numeric key=value parse.
                let mut from: Option<&str> = None;
                let mut kv_words = Vec::new();
                for w in words {
                    match w.strip_prefix("from=") {
                        Some(list) => from = Some(list),
                        None => kv_words.push(w),
                    }
                }
                let kv = parse_kv(kv_words.into_iter(), lineno + 1)?;
                let get = |key: &str| -> Result<u32, CnnError> {
                    kv.get(key)
                        .copied()
                        .ok_or_else(|| err(&format!("missing {key}=")))
                };
                let layer = match directive {
                    "conv" => Layer::Conv(ConvParams {
                        kernel: get("kernel")?,
                        stride: kv.get("stride").copied().unwrap_or(1),
                        padding: kv.get("pad").copied().unwrap_or(0),
                        out_channels: get("out")?,
                    }),
                    "pool" => Layer::Pool(PoolParams::max(
                        get("window")?,
                        kv.get("stride").copied().unwrap_or_else(|| kv["window"]),
                    )),
                    "avgpool" => Layer::Pool(PoolParams::average(
                        get("window")?,
                        kv.get("stride").copied().unwrap_or_else(|| kv["window"]),
                    )),
                    "relu" => Layer::Relu,
                    "fc" => Layer::Fc(FcParams {
                        out_features: get("out")?,
                    }),
                    "add" => Layer::Eltwise(EltwiseOp::Add),
                    "mul" => Layer::Eltwise(EltwiseOp::Mul),
                    _ => unreachable!(),
                };
                match from {
                    None => {
                        net.push_layer(name, layer);
                    }
                    Some(list) => {
                        let mut sources = Vec::new();
                        for producer in list.split(',') {
                            let src = net
                                .nodes()
                                .iter()
                                .position(|n| n.name == producer)
                                .ok_or_else(|| {
                                    err(&format!("from= references unknown layer '{producer}'"))
                                })?;
                            sources.push(NodeId(src as u32));
                        }
                        let id = net.add_node(name, layer);
                        for src in sources {
                            net.add_edge(src, id);
                        }
                    }
                }
            }
            other => {
                return Err(err(&format!("unknown directive '{other}'")));
            }
        }
    }
    network.ok_or(CnnError::Parse {
        line: 0,
        msg: "no network directive".to_string(),
    })
}

/// Render a network back to the archdef format (round-trip support).
/// Chain networks render exactly as before; where a node's predecessors
/// differ from the implicit previous-line chain, an explicit `from=` is
/// emitted so branching topologies round-trip too.
pub fn to_archdef(network: &Network) -> String {
    use crate::layer::PoolKind;
    let mut out = format!("network {}\n", network.name);
    for (i, node) in network.nodes().iter().enumerate() {
        let line = match node.layer {
            Layer::Input(s) => format!("input {}x{}x{}", s.channels, s.height, s.width),
            Layer::Conv(p) => format!(
                "conv {} kernel={} stride={} pad={} out={}",
                node.name, p.kernel, p.stride, p.padding, p.out_channels
            ),
            Layer::Pool(p) => format!(
                "{} {} window={} stride={}",
                match p.kind {
                    PoolKind::Max => "pool",
                    PoolKind::Average => "avgpool",
                },
                node.name,
                p.window,
                p.stride
            ),
            Layer::Relu => format!("relu {}", node.name),
            Layer::Fc(p) => format!("fc {} out={}", node.name, p.out_features),
            Layer::Eltwise(op) => format!(
                "{} {}",
                match op {
                    EltwiseOp::Add => "add",
                    EltwiseOp::Mul => "mul",
                },
                node.name
            ),
        };
        out.push_str(&line);
        let preds: Vec<NodeId> = network.predecessors(NodeId(i as u32)).collect();
        let implicit_chain = preds.is_empty() || (preds.len() == 1 && preds[0].index() + 1 == i);
        if !implicit_chain {
            let names: Vec<&str> = preds
                .iter()
                .map(|p| network.node(*p).name.as_str())
                .collect();
            out.push_str(&format!(" from={}", names.join(",")));
        }
        out.push('\n');
    }
    out
}

fn parse_kv<'a>(
    words: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<HashMap<&'a str, u32>, CnnError> {
    let mut kv = HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or(CnnError::Parse {
            line,
            msg: format!("expected key=value, got '{w}'"),
        })?;
        let v: u32 = v.parse().map_err(|_| CnnError::Parse {
            line,
            msg: format!("bad value in '{w}'"),
        })?;
        kv.insert(k, v);
    }
    Ok(kv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    const LENET: &str = r#"
# LeNet-5 architecture definition
network lenet5
input 1x32x32
conv conv1 kernel=5 stride=1 pad=0 out=6
pool pool1 window=2 stride=2
relu relu1
conv conv2 kernel=5 stride=1 pad=0 out=16
pool pool2 window=2 stride=2
relu relu2
fc fc1 out=120
fc fc2 out=10
"#;

    #[test]
    fn parses_lenet() {
        let net = parse_archdef(LENET).unwrap();
        assert_eq!(net.name, "lenet5");
        assert_eq!(net.nodes().len(), 9);
        let reference = models::lenet5();
        assert_eq!(net.stats().unwrap(), reference.stats().unwrap());
    }

    #[test]
    fn round_trips_through_text() {
        let net = models::lenet5();
        let text = to_archdef(&net);
        let back = parse_archdef(&text).unwrap();
        assert_eq!(back.nodes().len(), net.nodes().len());
        assert_eq!(back.stats().unwrap(), net.stats().unwrap());
    }

    #[test]
    fn defaults_for_stride_and_padding() {
        let net = parse_archdef("network n\ninput 1x8x8\nconv c kernel=3 out=2\npool p window=2\n")
            .unwrap();
        let shapes = net.input_shapes().unwrap();
        assert_eq!(shapes[2].height, 6); // stride defaulted to 1, pad to 0
        assert_eq!(net.output_shape().unwrap().height, 3); // pool stride = window
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_archdef("network n\ninput 1x8x8\nconv c kernel=oops out=2\n").unwrap_err();
        match err {
            CnnError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(parse_archdef("input 1x8x8\n").is_err()); // before network
        assert!(parse_archdef("network a\nnetwork b\n").is_err());
        assert!(parse_archdef("network a\nwhatever x\n").is_err());
        assert!(parse_archdef("network a\ninput 1x8\n").is_err());
        assert!(parse_archdef("").is_err());
        // Geometrically impossible network is caught at parse time.
        assert!(parse_archdef("network a\ninput 1x4x4\nconv c kernel=9 out=1\n").is_err());
    }

    #[test]
    fn lenient_parse_defers_semantic_checks_but_not_syntax() {
        // The geometrically impossible network parses leniently ...
        let net = parse_archdef_lenient("network a\ninput 1x4x4\nconv c kernel=9 out=1\n").unwrap();
        assert_eq!(net.nodes().len(), 2);
        // ... but syntax errors are still errors.
        assert!(parse_archdef_lenient("network a\nconv c kernel=oops out=1\n").is_err());
        assert!(parse_archdef_lenient("").is_err());
    }
}
