//! The "CNN architecture definition" format (paper §IV-B1): the user-facing
//! text file the architecture-optimization stage parses into a DFG.
//!
//! Grammar (one directive per line, `#` comments):
//!
//! ```text
//! network lenet5
//! input 1x32x32
//! conv conv1 kernel=5 stride=1 pad=0 out=6
//! pool pool1 window=2 stride=2
//! relu relu1
//! fc   fc1   out=120
//! ```
//!
//! Layers chain in file order, matching the layer-by-layer execution
//! schedule of the streaming architectures the paper targets.

use crate::graph::Network;
use crate::layer::{ConvParams, FcParams, Layer, PoolParams, Shape};
use crate::CnnError;
use std::collections::HashMap;

/// Parse an architecture definition into a [`Network`].
pub fn parse_archdef(text: &str) -> Result<Network, CnnError> {
    let net = parse_archdef_lenient(text)?;
    net.validate()?;
    // Shape propagation catches geometric inconsistencies eagerly so the
    // user gets a parse-time error, not a synthesis-time one.
    net.input_shapes()?;
    Ok(net)
}

/// Parse without the eager structural/geometric validation.
///
/// The linter needs this: a shape-inconsistent network must come back as
/// a `Network` so the graph passes can report *every* defect as a
/// diagnostic, instead of the parser aborting at the first one. Syntax
/// errors are still errors.
pub fn parse_archdef_lenient(text: &str) -> Result<Network, CnnError> {
    let mut network: Option<Network> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a word");
        let err = |msg: &str| CnnError::Parse {
            line: lineno + 1,
            msg: msg.to_string(),
        };
        match directive {
            "network" => {
                let name = words.next().ok_or_else(|| err("missing network name"))?;
                if network.is_some() {
                    return Err(err("duplicate network directive"));
                }
                network = Some(Network::new(name));
            }
            "input" => {
                let net = network
                    .as_mut()
                    .ok_or_else(|| err("input before network"))?;
                let shape = words.next().ok_or_else(|| err("missing input shape"))?;
                let dims: Vec<u32> = shape
                    .split('x')
                    .map(|d| d.parse().map_err(|_| err("bad input dimension")))
                    .collect::<Result<_, _>>()?;
                if dims.len() != 3 {
                    return Err(err("input shape must be CxHxW"));
                }
                net.push_layer("input", Layer::Input(Shape::new(dims[0], dims[1], dims[2])));
            }
            "conv" | "pool" | "relu" | "fc" => {
                let net = network
                    .as_mut()
                    .ok_or_else(|| err("layer before network"))?;
                let name = words.next().ok_or_else(|| err("missing layer name"))?;
                let kv = parse_kv(words, lineno + 1)?;
                let get = |key: &str| -> Result<u32, CnnError> {
                    kv.get(key)
                        .copied()
                        .ok_or_else(|| err(&format!("missing {key}=")))
                };
                let layer = match directive {
                    "conv" => Layer::Conv(ConvParams {
                        kernel: get("kernel")?,
                        stride: kv.get("stride").copied().unwrap_or(1),
                        padding: kv.get("pad").copied().unwrap_or(0),
                        out_channels: get("out")?,
                    }),
                    "pool" => Layer::Pool(PoolParams {
                        window: get("window")?,
                        stride: kv.get("stride").copied().unwrap_or_else(|| kv["window"]),
                    }),
                    "relu" => Layer::Relu,
                    "fc" => Layer::Fc(FcParams {
                        out_features: get("out")?,
                    }),
                    _ => unreachable!(),
                };
                net.push_layer(name, layer);
            }
            other => {
                return Err(err(&format!("unknown directive '{other}'")));
            }
        }
    }
    network.ok_or(CnnError::Parse {
        line: 0,
        msg: "no network directive".to_string(),
    })
}

/// Render a network back to the archdef format (round-trip support).
pub fn to_archdef(network: &Network) -> String {
    let mut out = format!("network {}\n", network.name);
    for node in network.nodes() {
        match node.layer {
            Layer::Input(s) => {
                out.push_str(&format!("input {}x{}x{}\n", s.channels, s.height, s.width))
            }
            Layer::Conv(p) => out.push_str(&format!(
                "conv {} kernel={} stride={} pad={} out={}\n",
                node.name, p.kernel, p.stride, p.padding, p.out_channels
            )),
            Layer::Pool(p) => out.push_str(&format!(
                "pool {} window={} stride={}\n",
                node.name, p.window, p.stride
            )),
            Layer::Relu => out.push_str(&format!("relu {}\n", node.name)),
            Layer::Fc(p) => out.push_str(&format!("fc {} out={}\n", node.name, p.out_features)),
        }
    }
    out
}

fn parse_kv<'a>(
    words: impl Iterator<Item = &'a str>,
    line: usize,
) -> Result<HashMap<&'a str, u32>, CnnError> {
    let mut kv = HashMap::new();
    for w in words {
        let (k, v) = w.split_once('=').ok_or(CnnError::Parse {
            line,
            msg: format!("expected key=value, got '{w}'"),
        })?;
        let v: u32 = v.parse().map_err(|_| CnnError::Parse {
            line,
            msg: format!("bad value in '{w}'"),
        })?;
        kv.insert(k, v);
    }
    Ok(kv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    const LENET: &str = r#"
# LeNet-5 architecture definition
network lenet5
input 1x32x32
conv conv1 kernel=5 stride=1 pad=0 out=6
pool pool1 window=2 stride=2
relu relu1
conv conv2 kernel=5 stride=1 pad=0 out=16
pool pool2 window=2 stride=2
relu relu2
fc fc1 out=120
fc fc2 out=10
"#;

    #[test]
    fn parses_lenet() {
        let net = parse_archdef(LENET).unwrap();
        assert_eq!(net.name, "lenet5");
        assert_eq!(net.nodes().len(), 9);
        let reference = models::lenet5();
        assert_eq!(net.stats().unwrap(), reference.stats().unwrap());
    }

    #[test]
    fn round_trips_through_text() {
        let net = models::lenet5();
        let text = to_archdef(&net);
        let back = parse_archdef(&text).unwrap();
        assert_eq!(back.nodes().len(), net.nodes().len());
        assert_eq!(back.stats().unwrap(), net.stats().unwrap());
    }

    #[test]
    fn defaults_for_stride_and_padding() {
        let net = parse_archdef("network n\ninput 1x8x8\nconv c kernel=3 out=2\npool p window=2\n")
            .unwrap();
        let shapes = net.input_shapes().unwrap();
        assert_eq!(shapes[2].height, 6); // stride defaulted to 1, pad to 0
        assert_eq!(net.output_shape().unwrap().height, 3); // pool stride = window
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_archdef("network n\ninput 1x8x8\nconv c kernel=oops out=2\n").unwrap_err();
        match err {
            CnnError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(parse_archdef("input 1x8x8\n").is_err()); // before network
        assert!(parse_archdef("network a\nnetwork b\n").is_err());
        assert!(parse_archdef("network a\nwhatever x\n").is_err());
        assert!(parse_archdef("network a\ninput 1x8\n").is_err());
        assert!(parse_archdef("").is_err());
        // Geometrically impossible network is caught at parse time.
        assert!(parse_archdef("network a\ninput 1x4x4\nconv c kernel=9 out=1\n").is_err());
    }

    #[test]
    fn lenient_parse_defers_semantic_checks_but_not_syntax() {
        // The geometrically impossible network parses leniently ...
        let net = parse_archdef_lenient("network a\ninput 1x4x4\nconv c kernel=9 out=1\n").unwrap();
        assert_eq!(net.nodes().len(), 2);
        // ... but syntax errors are still errors.
        assert!(parse_archdef_lenient("network a\nconv c kernel=oops out=1\n").is_err());
        assert!(parse_archdef_lenient("").is_err());
    }
}
