//! Reference network definitions: LeNet-5 and VGG-16 as evaluated in the
//! paper, plus small synthetic networks for tests and examples.

use crate::graph::Network;
use crate::layer::{ConvParams, EltwiseOp, FcParams, Layer, PoolParams, Shape};

fn conv(out_channels: u32, kernel: u32, padding: u32) -> Layer {
    Layer::Conv(ConvParams {
        kernel,
        stride: 1,
        padding,
        out_channels,
    })
}

fn pool2() -> Layer {
    Layer::Pool(PoolParams::max(2, 2))
}

fn fc(out_features: u32) -> Layer {
    Layer::Fc(FcParams { out_features })
}

/// LeNet-5 as the paper builds it: two convolutions (5×5, valid padding,
/// stride 1), max-pool + ReLU after each, and two fully-connected layers
/// implemented as convolutions with kernel = input size.
///
/// Note: the paper's Table I quotes 26 K conv weights / 1.9 M conv MACs for
/// LeNet, which is inconsistent with its own per-layer counts (156 + 2416
/// parameters, 117 600 + 240 000 multiplications). We implement the canonical
/// network — whose counts match the paper's per-layer numbers exactly — and
/// record the Table I discrepancy in EXPERIMENTS.md.
pub fn lenet5() -> Network {
    let mut n = Network::new("lenet5");
    n.push_layer("input", Layer::Input(Shape::new(1, 32, 32)));
    n.push_layer("conv1", conv(6, 5, 0));
    n.push_layer("pool1", pool2());
    n.push_layer("relu1", Layer::Relu);
    n.push_layer("conv2", conv(16, 5, 0));
    n.push_layer("pool2", pool2());
    n.push_layer("relu2", Layer::Relu);
    n.push_layer("fc1", fc(120));
    n.push_layer("fc2", fc(10));
    n
}

/// VGG-16: thirteen 3×3 stride-1 same-padding convolutions in five blocks
/// with max-pooling between blocks, followed by three fully-connected
/// layers. Conv weights ≈ 14.7 M and FC weights ≈ 124 M, matching the
/// paper's Table I.
pub fn vgg16() -> Network {
    let mut n = Network::new("vgg16");
    n.push_layer("input", Layer::Input(Shape::new(3, 224, 224)));
    let blocks: [(u32, u32); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (b, (channels, convs)) in blocks.iter().enumerate() {
        for c in 0..*convs {
            n.push_layer(format!("conv{}_{}", b + 1, c + 1), conv(*channels, 3, 1));
            n.push_layer(format!("relu{}_{}", b + 1, c + 1), Layer::Relu);
        }
        n.push_layer(format!("pool{}", b + 1), pool2());
    }
    n.push_layer("fc1", fc(4096));
    n.push_layer("relu_fc1", Layer::Relu);
    n.push_layer("fc2", fc(4096));
    n.push_layer("relu_fc2", Layer::Relu);
    n.push_layer("fc3", fc(1000));
    n
}

/// AlexNet-style network: large strided first convolution (11×11, stride
/// 4), 3×3 overlapping pooling, and the classic 4096-wide classifier.
/// Exercises the stride>1 and large-kernel paths of every generator.
pub fn alexnet_like() -> Network {
    let mut n = Network::new("alexnet-like");
    n.push_layer("input", Layer::Input(Shape::new(3, 227, 227)));
    n.push_layer(
        "conv1",
        Layer::Conv(ConvParams {
            kernel: 11,
            stride: 4,
            padding: 0,
            out_channels: 96,
        }),
    );
    n.push_layer("relu1", Layer::Relu);
    n.push_layer("pool1", Layer::Pool(PoolParams::max(3, 2)));
    n.push_layer(
        "conv2",
        Layer::Conv(ConvParams {
            kernel: 5,
            stride: 1,
            padding: 2,
            out_channels: 256,
        }),
    );
    n.push_layer("relu2", Layer::Relu);
    n.push_layer("pool2", Layer::Pool(PoolParams::max(3, 2)));
    n.push_layer("conv3", conv(384, 3, 1));
    n.push_layer("relu3", Layer::Relu);
    n.push_layer("conv4", conv(384, 3, 1));
    n.push_layer("relu4", Layer::Relu);
    n.push_layer("conv5", conv(256, 3, 1));
    n.push_layer("relu5", Layer::Relu);
    n.push_layer("pool5", Layer::Pool(PoolParams::max(3, 2)));
    n.push_layer("fc1", fc(4096));
    n.push_layer("relu_fc1", Layer::Relu);
    n.push_layer("fc2", fc(4096));
    n.push_layer("relu_fc2", Layer::Relu);
    n.push_layer("fc3", fc(1000));
    n
}

/// A scaled-down VGG-like network (same topology shape, 16× fewer channels,
/// 32×32 input) used where full VGG-16 inference would be needlessly slow —
/// functional validation exercises the identical code path.
pub fn vgg_tiny() -> Network {
    let mut n = Network::new("vgg-tiny");
    n.push_layer("input", Layer::Input(Shape::new(3, 32, 32)));
    let blocks: [(u32, u32); 3] = [(4, 2), (8, 2), (16, 3)];
    for (b, (channels, convs)) in blocks.iter().enumerate() {
        for c in 0..*convs {
            n.push_layer(format!("conv{}_{}", b + 1, c + 1), conv(*channels, 3, 1));
            n.push_layer(format!("relu{}_{}", b + 1, c + 1), Layer::Relu);
        }
        n.push_layer(format!("pool{}", b + 1), pool2());
    }
    n.push_layer("fc1", fc(32));
    n.push_layer("fc2", fc(10));
    n
}

/// CIFAR-10 "quick" network (the Caffe example the fpgaConvNet-style
/// prototxt descriptor in `models/cifar10_quick.prototxt` mirrors): three
/// 5×5 same-padded convolutions with 3×3 stride-2 pooling — max after
/// conv1, average after conv2/conv3 — and a 64-wide classifier head.
pub fn cifar10_quick() -> Network {
    let mut n = Network::new("cifar10-quick");
    n.push_layer("input", Layer::Input(Shape::new(3, 32, 32)));
    n.push_layer("conv1", conv(32, 5, 2));
    n.push_layer("pool1", Layer::Pool(PoolParams::max(3, 2)));
    n.push_layer("relu1", Layer::Relu);
    n.push_layer("conv2", conv(32, 5, 2));
    n.push_layer("relu2", Layer::Relu);
    n.push_layer("pool2", Layer::Pool(PoolParams::average(3, 2)));
    n.push_layer("conv3", conv(64, 5, 2));
    n.push_layer("relu3", Layer::Relu);
    n.push_layer("pool3", Layer::Pool(PoolParams::average(3, 2)));
    n.push_layer("fc1", fc(64));
    n.push_layer("fc2", fc(10));
    n
}

/// A small ResNet: stem convolution, two residual blocks with identity
/// skip connections (the branching topology that forces the flow off the
/// linear-chain assumption), average pooling and a 10-class head.
pub fn resnet_small() -> Network {
    let mut n = Network::new("resnet-small");
    n.push_layer("input", Layer::Input(Shape::new(3, 32, 32)));
    n.push_layer("conv1", conv(16, 3, 1));
    let mut tail = n.push_layer("relu1", Layer::Relu);
    for b in 1..=2u32 {
        let ca = n.add_node(format!("conv{b}a"), conv(16, 3, 1));
        n.add_edge(tail, ca);
        let ra = n.add_node(format!("relu{b}a"), Layer::Relu);
        n.add_edge(ca, ra);
        let cb = n.add_node(format!("conv{b}b"), conv(16, 3, 1));
        n.add_edge(ra, cb);
        // Main path first so shape propagation reads the conv output;
        // the identity skip joins as the second operand.
        let join = n.add_node(format!("add{b}"), Layer::Eltwise(EltwiseOp::Add));
        n.add_edge(cb, join);
        n.add_edge(tail, join);
        tail = n.add_node(format!("relu{b}b"), Layer::Relu);
        n.add_edge(join, tail);
    }
    let pool = n.add_node("pool1", Layer::Pool(PoolParams::average(2, 2)));
    n.add_edge(tail, pool);
    let head = n.add_node("fc1", fc(10));
    n.add_edge(pool, head);
    n
}

/// Minimal two-layer network for unit tests.
pub fn toy() -> Network {
    let mut n = Network::new("toy");
    n.push_layer("input", Layer::Input(Shape::new(1, 8, 8)));
    n.push_layer("conv1", conv(2, 3, 0));
    n.push_layer("pool1", pool2());
    n.push_layer("relu1", Layer::Relu);
    n.push_layer("fc1", fc(4));
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Granularity, NodeId};

    #[test]
    fn lenet_structure_matches_paper() {
        let n = lenet5();
        let s = n.stats().unwrap();
        assert_eq!(s.conv_layers, 2);
        assert_eq!(s.fc_layers, 2);
        // Canonical per-layer counts the paper quotes in the text.
        assert_eq!(s.conv_weights, 156 + 2416);
        assert_eq!(s.conv_macs, 117_600 + 240_000);
        // Components at layer granularity: conv1 / pool1+relu1 / conv2 /
        // pool2+relu2 / fc1 / fc2 — Table III's six components.
        let comps = n.components(Granularity::Layer).unwrap();
        assert_eq!(comps.len(), 6);
        assert_eq!(comps[1].name, "pool1+relu1");
    }

    #[test]
    fn lenet_output_is_ten_classes() {
        assert_eq!(lenet5().output_shape().unwrap(), Shape::new(10, 1, 1));
    }

    #[test]
    fn vgg16_matches_table1() {
        let n = vgg16();
        let s = n.stats().unwrap();
        assert_eq!(s.conv_layers, 13);
        assert_eq!(s.fc_layers, 3);
        // Paper Table I: 14.7M conv weights, 15.3G conv MACs, 124M FC
        // weights / MACs, 138M total weights, 15.5G total MACs.
        assert!((14_000_000..15_500_000).contains(&s.conv_weights));
        assert!((15_000_000_000..15_700_000_000).contains(&s.conv_macs));
        assert!((123_000_000..125_000_000).contains(&s.fc_weights));
        assert!((123_000_000..125_000_000).contains(&s.fc_macs));
        assert!((137_000_000..140_000_000).contains(&s.total_weights()));
    }

    #[test]
    fn vgg16_block_granularity_gives_twelve_components() {
        // 5 conv blocks + 4 standalone pools (pool5 fuses nowhere; it is its
        // own component) + 3 FCs... the paper labels 12 components for VGG.
        let comps = vgg16().components(Granularity::Block).unwrap();
        assert_eq!(comps.len(), 13); // 5 conv blocks + 5 pools + 3 fc
    }

    #[test]
    fn alexnet_matches_published_counts() {
        let n = alexnet_like();
        let s = n.stats().unwrap();
        assert_eq!(s.conv_layers, 5);
        assert_eq!(s.fc_layers, 3);
        // conv1: 227x227 s4 valid -> 55x55.
        let shapes = n.input_shapes().unwrap();
        assert_eq!(shapes[2], crate::layer::Shape::new(96, 55, 55));
        // AlexNet: ~61M parameters, ~0.7G conv MACs.
        assert!(
            (58_000_000..64_000_000).contains(&s.total_weights()),
            "{}",
            s.total_weights()
        );
        assert!(
            (600_000_000..1_200_000_000).contains(&s.conv_macs),
            "{}",
            s.conv_macs
        );
        // 3x3-stride-2 pooling produces the classic 6x6x256 feature map.
        assert_eq!(n.components(Granularity::Layer).unwrap().len(), 11);
    }

    #[test]
    fn tiny_models_are_valid() {
        assert!(vgg_tiny().validate().is_ok());
        assert!(toy().validate().is_ok());
        assert_eq!(toy().output_shape().unwrap(), Shape::new(4, 1, 1));
    }

    #[test]
    fn cifar10_quick_shapes_match_caffe() {
        let n = cifar10_quick();
        let shapes = n.input_shapes().unwrap();
        // conv1 same-padded, pools are 3x3 stride 2: 32 -> 15 -> 7 -> 3.
        assert_eq!(shapes[2], Shape::new(32, 32, 32));
        assert_eq!(shapes[4], Shape::new(32, 15, 15));
        assert_eq!(shapes[7], Shape::new(32, 7, 7));
        assert_eq!(shapes[10], Shape::new(64, 3, 3));
        assert_eq!(n.output_shape().unwrap(), Shape::new(10, 1, 1));
    }

    #[test]
    fn resnet_small_branches_and_rejoins() {
        let n = resnet_small();
        assert!(n.validate().is_ok());
        assert_eq!(n.output_shape().unwrap(), Shape::new(10, 1, 1));
        // Each residual block keeps 16x32x32 through the join.
        let shapes = n.input_shapes().unwrap();
        let join = n
            .nodes()
            .iter()
            .position(|node| node.name == "add1")
            .unwrap();
        assert_eq!(shapes[join], Shape::new(16, 32, 32));
        // The skip source fans out to two consumers.
        let relu1 = NodeId(2);
        assert_eq!(n.successors(relu1).count(), 2);
        // Components: conv1+relu1 / (conva+relua / convb / add+relub) x2 /
        // pool / fc — joins and fanout points never fuse across branches.
        let comps = n.components(Granularity::Layer).unwrap();
        assert_eq!(comps.len(), 9);
        assert_eq!(comps[0].name, "conv1+relu1");
        assert_eq!(comps[3].name, "add1+relu1b");
        assert!(comps[3].signature(&n).starts_with("add+relu"));
    }
}
