//! Criterion benches for the RapidWright-analog layer: relocation,
//! component placement and full composition — the operations whose speed is
//! the pre-implemented flow's entire productivity story.

use criterion::{criterion_group, criterion_main, Criterion};
use pi_cnn::graph::Granularity;
use pi_fabric::{Device, TileCoord};
use pi_flow::{build_component_db, FlowConfig};
use pi_stitch::{compose, place_components, ComponentPlacerOptions, ComposeOptions};

fn bench_stitching(c: &mut Criterion) {
    let device = Device::xcku5p_like();
    let network = pi_cnn::models::lenet5();
    let cfg = FlowConfig::new().with_seeds([1]);
    let (db, _) = build_component_db(&network, &device, &cfg).expect("db builds");

    // Relocation of the largest LeNet component.
    let biggest = db
        .checkpoints()
        .max_by_key(|cp| cp.meta.pblock.area())
        .expect("db non-empty")
        .clone();
    c.bench_function("stitch/relocate_largest_component", |b| {
        b.iter(|| {
            pi_stitch::relocate_to(&biggest, &device, TileCoord::new(66, 8)).expect("relocates")
        })
    });

    // Component placement (Eq. 1-3 + retry loop) over the LeNet chain.
    let comps = network.components(Granularity::Layer).expect("components");
    let sigs: Vec<String> = comps.iter().map(|c| c.signature(&network)).collect();
    let cps: Vec<&pi_netlist::Checkpoint> =
        sigs.iter().map(|s| db.get(s).expect("in db")).collect();
    let edges: Vec<(usize, usize)> = (0..cps.len() - 1).map(|i| (i, i + 1)).collect();
    c.bench_function("stitch/place_components_lenet", |b| {
        b.iter(|| {
            place_components(&cps, &edges, &device, &ComponentPlacerOptions::default())
                .expect("places")
        })
    });

    // Full composition (Algorithm 1).
    c.bench_function("stitch/compose_lenet", |b| {
        b.iter(|| compose(&network, &db, &device, &ComposeOptions::default()).expect("composes"))
    });
}

criterion_group!(benches, bench_stitching);
criterion_main!(benches);
