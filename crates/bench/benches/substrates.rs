//! Criterion benches for the supporting substrates: fixed-point inference,
//! the best-fit allocator, synthesis elaboration and checkpoint
//! serialization.

use criterion::{criterion_group, criterion_main, Criterion};
use pi_cnn::graph::Granularity;
use pi_cnn::infer::{forward, Weights};
use pi_cnn::Tensor;
use pi_memalloc::BestFitAllocator;
use pi_synth::{synth_component, synth_network_flat, SynthOptions};

fn bench_inference(c: &mut Criterion) {
    let network = pi_cnn::models::lenet5();
    let weights = Weights::random(&network, 7).expect("weights");
    let input = Tensor::zeros(1, 32, 32);
    c.bench_function("infer/lenet_forward", |b| {
        b.iter(|| forward(&network, &weights, &input).expect("forward"))
    });

    let tiny = pi_cnn::models::vgg_tiny();
    let tweights = Weights::random(&tiny, 7).expect("weights");
    let tinput = Tensor::zeros(3, 32, 32);
    c.bench_function("infer/vgg_tiny_forward", |b| {
        b.iter(|| forward(&tiny, &tweights, &tinput).expect("forward"))
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("alloc/churn_1k", |b| {
        b.iter(|| {
            let mut a = BestFitAllocator::new(64 << 20, 64);
            let mut live = Vec::with_capacity(512);
            for i in 0..1024u64 {
                let size = 1 + (i * 2654435761) % 65536;
                match a.alloc(size) {
                    Ok(x) => live.push(x),
                    Err(_) => {
                        for x in live.drain(..) {
                            a.free(x.base).expect("frees");
                        }
                    }
                }
                if i % 3 == 0 {
                    if let Some(x) = live.pop() {
                        a.free(x.base).expect("frees");
                    }
                }
            }
            a.used()
        })
    });

    c.bench_function("alloc/plan_vgg_layout", |b| {
        let net = pi_cnn::models::vgg16();
        b.iter(|| pi_memalloc::plan_network_layout(&net, 2, 1 << 30).expect("plans"))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let network = pi_cnn::models::lenet5();
    let comps = network.components(Granularity::Layer).expect("components");
    c.bench_function("synth/lenet_conv1_component", |b| {
        b.iter(|| synth_component(&network, &comps[0], &SynthOptions::lenet_like()).expect("synth"))
    });
    let mut group = c.benchmark_group("synth/monolithic");
    group.sample_size(10);
    group.bench_function("lenet_flat", |b| {
        b.iter(|| {
            synth_network_flat(
                &network,
                Granularity::Layer,
                &SynthOptions::lenet_like().monolithic(),
            )
            .expect("synth")
        })
    });
    group.finish();
}

fn bench_checkpoints(c: &mut Criterion) {
    let network = pi_cnn::models::lenet5();
    let comps = network.components(Granularity::Layer).expect("components");
    let module = synth_component(&network, &comps[0], &SynthOptions::lenet_like()).expect("synth");
    let cp = pi_netlist::Checkpoint {
        meta: pi_netlist::CheckpointMeta {
            signature: comps[0].signature(&network),
            fmax_mhz: 500.0,
            resources: module.resources(),
            pblock: pi_fabric::Pblock::new(1, 64, 0, 63),
            device: "xcku5p-like".to_string(),
            latency_cycles: 34,
        },
        module,
    };
    let json = cp.to_json().expect("serializes");
    c.bench_function("dcp/serialize_conv1", |b| {
        b.iter(|| cp.to_json().expect("serializes"))
    });
    c.bench_function("dcp/deserialize_conv1", |b| {
        b.iter(|| pi_netlist::Checkpoint::from_json(&json).expect("parses"))
    });
}

criterion_group!(
    benches,
    bench_inference,
    bench_allocator,
    bench_synthesis,
    bench_checkpoints
);
criterion_main!(benches);
