//! Criterion benches for the implementation backend: placer, router, STA
//! and the phys_opt pass, at component and network scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pi_cnn::graph::Granularity;
use pi_fabric::{Device, Pblock};
use pi_pnr::{place_module, route_module, sta_module, PlaceOptions, RouteOptions};
use pi_synth::{synth_component, synth_network_flat, SynthOptions};

fn lenet_component(idx: usize) -> pi_netlist::Module {
    let network = pi_cnn::models::lenet5();
    let comps = network.components(Granularity::Layer).expect("components");
    synth_component(&network, &comps[idx], &SynthOptions::lenet_like()).expect("synthesizes")
}

fn bench_placer(c: &mut Criterion) {
    let device = Device::xcku5p_like();
    let conv1 = lenet_component(0);
    let pblock = Pblock::new(1, 64, 0, 63);
    c.bench_function("place/lenet_conv1_in_pblock", |b| {
        b.iter_batched(
            || conv1.clone(),
            |mut m| {
                m.pblock = Some(pblock);
                place_module(
                    &mut m,
                    &device,
                    &PlaceOptions {
                        seed: 1,
                        effort: 1.0,
                        region: Some(pblock),
                    },
                )
                .expect("places")
            },
            BatchSize::LargeInput,
        )
    });

    let flat = synth_network_flat(
        &pi_cnn::models::lenet5(),
        Granularity::Layer,
        &SynthOptions::lenet_like().monolithic(),
    )
    .expect("synthesizes");
    let mut group = c.benchmark_group("place/lenet_monolithic");
    group.sample_size(10);
    group.bench_function("effort_1", |b| {
        b.iter_batched(
            || flat.clone(),
            |mut m| {
                place_module(
                    &mut m,
                    &device,
                    &PlaceOptions {
                        seed: 1,
                        effort: 1.0,
                        region: None,
                    },
                )
                .expect("places")
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_router_and_sta(c: &mut Criterion) {
    let device = Device::xcku5p_like();
    let mut placed = lenet_component(0);
    let pblock = Pblock::new(1, 64, 0, 63);
    placed.pblock = Some(pblock);
    place_module(
        &mut placed,
        &device,
        &PlaceOptions {
            seed: 1,
            effort: 1.0,
            region: Some(pblock),
        },
    )
    .expect("places");

    c.bench_function("route/lenet_conv1", |b| {
        b.iter_batched(
            || placed.clone(),
            |mut m| route_module(&mut m, &device, &RouteOptions::default()).expect("routes"),
            BatchSize::LargeInput,
        )
    });

    let mut routed = placed.clone();
    let (_, congestion) =
        route_module(&mut routed, &device, &RouteOptions::default()).expect("routes");
    c.bench_function("sta/lenet_conv1", |b| {
        b.iter(|| sta_module(&routed, &device, Some(&congestion)).expect("sta"))
    });
}

criterion_group!(benches, bench_placer, bench_router_and_sta);
criterion_main!(benches);
