//! Experiment harness: everything needed to regenerate the paper's tables
//! and figures.
//!
//! Each experiment lives in [`experiments`] as a function returning a
//! rendered markdown [`Section`]; the `fig*`/`table*`/`ablation*` binaries
//! print one section each, and `all_experiments` runs the full set and
//! writes `EXPERIMENTS.md`. Heavyweight intermediate results (component
//! databases, flow runs) are cached in a [`Ctx`] so the combined run does
//! not repeat work.

pub mod experiments;
pub mod paper;

use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_flow::{
    build_component_db, run_baseline_flow, run_pre_implemented_flow, ArchOptOptions,
    BaselineOptions, BaselineReport, ComponentBuildReport, FunctionOptOptions, PreImplReport,
};
use pi_netlist::Design;
use pi_stitch::ComponentDb;
use pi_synth::SynthOptions;

/// One rendered experiment.
#[derive(Debug, Clone)]
pub struct Section {
    /// Paper artifact id, e.g. "Fig. 6".
    pub id: String,
    pub title: String,
    /// Markdown body (tables + commentary).
    pub body: String,
}

impl Section {
    pub fn render(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

/// A network's full set of flow artifacts.
pub struct NetworkRun {
    pub network: Network,
    pub granularity: Granularity,
    pub db: ComponentDb,
    pub component_reports: Vec<ComponentBuildReport>,
    pub db_build_time: std::time::Duration,
    pub preimpl_design: Design,
    pub preimpl: PreImplReport,
    pub baseline_design: Design,
    pub baseline: BaselineReport,
}

/// Shared, lazily-built experiment context. Everything is seeded and
/// deterministic, so all binaries agree with `all_experiments`.
#[derive(Default)]
pub struct Ctx {
    lenet: Option<NetworkRun>,
    vgg: Option<NetworkRun>,
}

/// Standard evaluation device (see DESIGN.md for the calibration notes).
pub fn device() -> Device {
    Device::xcku5p_like()
}

fn run_network(
    network: Network,
    granularity: Granularity,
    synth: SynthOptions,
) -> NetworkRun {
    let device = device();
    let fopts = FunctionOptOptions {
        synth,
        granularity,
        seeds: vec![1, 2, 3],
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let (db, component_reports) =
        build_component_db(&network, &device, &fopts).expect("component DB builds");
    let db_build_time = t0.elapsed();

    let aopts = ArchOptOptions {
        granularity,
        ..Default::default()
    };
    let (preimpl_design, preimpl) =
        run_pre_implemented_flow(&network, &db, &device, &aopts).expect("pre-implemented flow");

    let bopts = BaselineOptions {
        synth: synth.monolithic(),
        granularity,
        ..Default::default()
    };
    let (baseline_design, baseline) =
        run_baseline_flow(&network, &device, &bopts).expect("baseline flow");

    NetworkRun {
        network,
        granularity,
        db,
        component_reports,
        db_build_time,
        preimpl_design,
        preimpl,
        baseline_design,
        baseline,
    }
}

impl Ctx {
    pub fn new() -> Self {
        Self::default()
    }

    /// LeNet-5 runs (layer granularity, weights in ROM — the paper's
    /// configuration).
    pub fn lenet(&mut self) -> &NetworkRun {
        if self.lenet.is_none() {
            eprintln!("[ctx] building LeNet-5 runs (both flows)...");
            self.lenet = Some(run_network(
                pi_cnn::models::lenet5(),
                Granularity::Layer,
                SynthOptions::lenet_like(),
            ));
        }
        self.lenet.as_ref().expect("just built")
    }

    /// VGG-16 runs (block granularity, streamed weights — the paper's
    /// configuration). The baseline implementation takes ~30 s in release.
    pub fn vgg(&mut self) -> &NetworkRun {
        if self.vgg.is_none() {
            eprintln!("[ctx] building VGG-16 runs (both flows; ~1 min)...");
            self.vgg = Some(run_network(
                pi_cnn::models::vgg16(),
                Granularity::Block,
                SynthOptions::vgg_like(),
            ));
        }
        self.vgg.as_ref().expect("just built")
    }
}

/// Render a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Seconds with sensible precision.
pub fn fmt_s(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.1 {
        format!("{:.1} ms", s * 1000.0)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_s(std::time::Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_s(std::time::Duration::from_secs(2)), "2.00 s");
    }
}
