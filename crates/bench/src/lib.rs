//! Experiment harness: everything needed to regenerate the paper's tables
//! and figures.
//!
//! Each experiment lives in [`experiments`] as a function returning a
//! rendered markdown [`Section`]; the `fig*`/`table*`/`ablation*` binaries
//! print one section each, and `all_experiments` runs the full set and
//! writes `EXPERIMENTS.md`. Heavyweight intermediate results (component
//! databases, flow runs) are cached in a [`Ctx`] so the combined run does
//! not repeat work.

pub mod experiments;
pub mod paper;

use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_flow::{
    build_component_db, run_baseline_flow, run_pre_implemented_flow, BaselineReport,
    ComponentBuildReport, FlowConfig, PreImplReport,
};
use pi_netlist::Design;
use pi_obs::{Event, EventSink, FanoutSink, FileSink, MemorySink, Obs, Value};
use pi_stitch::ComponentDb;
use pi_synth::SynthOptions;
use std::sync::Arc;

/// One rendered experiment.
#[derive(Debug, Clone)]
pub struct Section {
    /// Paper artifact id, e.g. "Fig. 6".
    pub id: String,
    pub title: String,
    /// Markdown body (tables + commentary).
    pub body: String,
}

impl Section {
    pub fn render(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

/// A network's full set of flow artifacts.
pub struct NetworkRun {
    pub network: Network,
    pub granularity: Granularity,
    pub db: ComponentDb,
    pub component_reports: Vec<ComponentBuildReport>,
    pub db_build_time: std::time::Duration,
    pub preimpl_design: Design,
    pub preimpl: PreImplReport,
    pub baseline_design: Design,
    pub baseline: BaselineReport,
}

/// Shared, lazily-built experiment context. Everything is seeded and
/// deterministic, so all binaries agree with `all_experiments`.
///
/// The context owns the run's telemetry: a [`MemorySink`] is always
/// attached (so experiments can compute convergence summaries), and
/// [`Ctx::new`] additionally tees the stream to a JSON-Lines file when the
/// process was started with `--trace <path>`.
pub struct Ctx {
    lenet: Option<NetworkRun>,
    vgg: Option<NetworkRun>,
    sink: Arc<MemorySink>,
    obs: Obs,
    trace_path: Option<String>,
    history_dir: Option<String>,
}

impl Default for Ctx {
    fn default() -> Self {
        Self::with_trace(None)
    }
}

/// Standard evaluation device (see DESIGN.md for the calibration notes).
pub fn device() -> Device {
    Device::xcku5p_like()
}

fn run_network(network: Network, cfg: &FlowConfig) -> NetworkRun {
    let device = device();
    let t0 = std::time::Instant::now();
    let (db, component_reports) =
        build_component_db(&network, &device, cfg).expect("component DB builds");
    let db_build_time = t0.elapsed();

    let (preimpl_design, preimpl) =
        run_pre_implemented_flow(&network, &db, &device, cfg).expect("pre-implemented flow");

    let (baseline_design, baseline) =
        run_baseline_flow(&network, &device, cfg).expect("baseline flow");

    NetworkRun {
        network,
        granularity: cfg.granularity,
        db,
        component_reports,
        db_build_time,
        preimpl_design,
        preimpl,
        baseline_design,
        baseline,
    }
}

impl Ctx {
    /// Build a context, honoring `--trace <path>` and `--history <dir>`
    /// flags anywhere in the process arguments (every `pi-bench` binary
    /// accepts them).
    pub fn new() -> Self {
        let mut argv = std::env::args().skip(1);
        let mut trace = None;
        let mut history = None;
        while let Some(a) = argv.next() {
            if a == "--trace" {
                trace = argv.next();
            } else if a == "--history" {
                history = argv.next();
            }
        }
        Self::with_trace(trace).with_history(history)
    }

    /// Record this context's run reports into an append-only run history
    /// (see `pi_obs::history`) whenever a flowstat summary is written —
    /// the feed for `flowstat trend` drift gating over bench trajectories.
    pub fn with_history(mut self, dir: Option<String>) -> Self {
        self.history_dir = dir;
        self
    }

    /// Build a context with an explicit trace destination (`None` keeps the
    /// telemetry in memory only).
    pub fn with_trace(trace: Option<String>) -> Self {
        let sink = Arc::new(MemorySink::new());
        let obs = match &trace {
            Some(path) => {
                let file = FileSink::create(path).unwrap_or_else(|e| panic!("--trace {path}: {e}"));
                let tee: Vec<Arc<dyn EventSink>> = vec![sink.clone(), Arc::new(file)];
                Obs::new(Arc::new(FanoutSink::new(tee)))
            }
            None => Obs::new(sink.clone()),
        };
        Ctx {
            lenet: None,
            vgg: None,
            sink,
            obs,
            trace_path: trace,
            history_dir: None,
        }
    }

    /// The telemetry handle every flow run in this context reports through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Where `--trace` is being written, if anywhere.
    pub fn trace_path(&self) -> Option<&str> {
        self.trace_path.as_deref()
    }

    /// Everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.sink.snapshot()
    }

    /// A [`FlowConfig`] wired to this context's telemetry stream, with the
    /// harness' standard DSE width (seeds 1–3).
    pub fn config(&self, granularity: Granularity, synth: SynthOptions) -> FlowConfig {
        FlowConfig::new()
            .with_synth(synth)
            .with_granularity(granularity)
            .with_seeds([1, 2, 3])
            .with_obs(self.obs.clone())
    }

    /// Convergence summary of everything recorded so far (see
    /// [`convergence_summary`]).
    pub fn convergence(&self) -> ConvergenceSummary {
        convergence_summary(&self.events())
    }

    /// Full `flowstat` run report of everything recorded so far.
    pub fn run_report(&self) -> pi_obs::agg::RunReport {
        pi_obs::agg::RunReport::from_events(&self.events())
    }

    /// Write the `flowstat` text report of everything recorded so far next
    /// to a `BENCH_*.json` artifact (same stem, `.flowstat.txt`). The
    /// report is deterministic, so same-seed bench runs rewrite the file
    /// byte-identically.
    pub fn write_flowstat_summary(&self, json_path: &str) -> std::io::Result<String> {
        let path = match json_path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.flowstat.txt"),
            None => format!("{json_path}.flowstat.txt"),
        };
        let report = self.run_report();
        std::fs::write(&path, report.render_text())?;
        if let Some(dir) = &self.history_dir {
            // Labeled by artifact stem, so trend compares like with like.
            let label = std::path::Path::new(json_path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| json_path.to_string());
            let entry = pi_obs::history::HistoryEntry::from_report(label, &report);
            pi_obs::history::append(std::path::Path::new(dir), &entry)?;
        }
        Ok(path)
    }

    /// LeNet-5 runs (layer granularity, weights in ROM — the paper's
    /// configuration).
    pub fn lenet(&mut self) -> &NetworkRun {
        if self.lenet.is_none() {
            eprintln!("[ctx] building LeNet-5 runs (both flows)...");
            let cfg = self.config(Granularity::Layer, SynthOptions::lenet_like());
            self.lenet = Some(run_network(pi_cnn::models::lenet5(), &cfg));
        }
        self.lenet.as_ref().expect("just built")
    }

    /// VGG-16 runs (block granularity, streamed weights — the paper's
    /// configuration). The baseline implementation takes ~30 s in release.
    pub fn vgg(&mut self) -> &NetworkRun {
        if self.vgg.is_none() {
            eprintln!("[ctx] building VGG-16 runs (both flows; ~1 min)...");
            let cfg = self.config(Granularity::Block, SynthOptions::vgg_like());
            self.vgg = Some(run_network(pi_cnn::models::vgg16(), &cfg));
        }
        self.vgg.as_ref().expect("just built")
    }
}

/// Aggregated convergence behavior extracted from a telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceSummary {
    /// Distinct PathFinder negotiation runs seen (`iter` restarting at 0).
    pub route_runs: usize,
    /// Iterations the slowest router run needed to converge.
    pub max_router_iters: u64,
    /// Overused tiles left after the last iteration of the last run.
    pub final_overuse: u64,
    /// Simulated-annealing rounds across all placements.
    pub anneal_rounds: u64,
    /// Component-placer candidate decisions (Eq. 1–3 evaluations kept).
    pub placer_candidates: u64,
    /// Component-placer threshold-retry events (unplace-and-retry loop).
    pub placer_retries: u64,
    /// A* expansions summed over every router iteration (the router's
    /// work metric — what the Steiner/slack optimizations shrink).
    pub router_expansions: u64,
    /// Two-pin segments routed via Steiner decomposition.
    pub steiner_segments: u64,
    /// Rip-ups of negative-slack nets (slack-ordered negotiation).
    pub criticality_reroutes: u64,
    /// Parallel-merge conflicts re-routed against the live state.
    pub parallel_conflicts: u64,
}

impl std::fmt::Display for ConvergenceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} router runs (slowest converged in {} iterations, final overuse {}, \
             {} expansions, {} steiner segments, {} criticality re-routes, \
             {} merge conflicts), {} annealing rounds, \
             {} component-placer candidates, {} threshold retries",
            self.route_runs,
            self.max_router_iters,
            self.final_overuse,
            self.router_expansions,
            self.steiner_segments,
            self.criticality_reroutes,
            self.parallel_conflicts,
            self.anneal_rounds,
            self.placer_candidates,
            self.placer_retries
        )
    }
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(n) => Some(*n as u64),
            _ => None,
        })
}

/// Fold a telemetry stream into the convergence numbers the paper-facing
/// reports quote (router iterations-to-converge, final overuse, annealing
/// and stitch-placer activity).
pub fn convergence_summary(events: &[Event]) -> ConvergenceSummary {
    let mut summary = ConvergenceSummary::default();
    for e in events {
        match (e.scope.as_str(), e.name.as_str()) {
            ("pnr::route", "pathfinder_iter") => {
                let iter = field_u64(e, "iter").unwrap_or(0);
                if iter == 0 {
                    summary.route_runs += 1;
                }
                summary.max_router_iters = summary.max_router_iters.max(iter + 1);
                summary.final_overuse = field_u64(e, "overused").unwrap_or(0);
                summary.router_expansions += field_u64(e, "expansions").unwrap_or(0);
                summary.steiner_segments += field_u64(e, "steiner_segments").unwrap_or(0);
                summary.criticality_reroutes += field_u64(e, "criticality_reroutes").unwrap_or(0);
                summary.parallel_conflicts += field_u64(e, "parallel_conflicts").unwrap_or(0);
            }
            ("pnr::place", "anneal_round") => summary.anneal_rounds += 1,
            ("stitch::placer", "candidate") => summary.placer_candidates += 1,
            ("stitch::placer", "threshold_retry") => summary.placer_retries += 1,
            _ => {}
        }
    }
    summary
}

/// Render a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Seconds with sensible precision.
pub fn fmt_s(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.1 {
        format!("{:.1} ms", s * 1000.0)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_renders() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_s(std::time::Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_s(std::time::Duration::from_secs(2)), "2.00 s");
    }

    #[test]
    fn convergence_summary_folds_router_and_placer_events() {
        use pi_obs::EventKind;
        let mk = |scope: &str, name: &str, fields: Vec<(String, Value)>| Event {
            seq: 0,
            ts_us: 0,
            seed: 0,
            scope: scope.to_string(),
            name: name.to_string(),
            kind: EventKind::Point,
            fields,
        };
        let events = vec![
            mk(
                "pnr::route",
                "pathfinder_iter",
                vec![
                    ("iter".to_string(), Value::U64(0)),
                    ("overused".to_string(), Value::U64(5)),
                    ("expansions".to_string(), Value::U64(120)),
                    ("steiner_segments".to_string(), Value::U64(4)),
                    ("criticality_reroutes".to_string(), Value::U64(2)),
                    ("parallel_conflicts".to_string(), Value::U64(1)),
                ],
            ),
            mk(
                "pnr::route",
                "pathfinder_iter",
                vec![
                    ("iter".to_string(), Value::U64(1)),
                    ("overused".to_string(), Value::U64(0)),
                    ("expansions".to_string(), Value::U64(30)),
                    ("steiner_segments".to_string(), Value::U64(1)),
                ],
            ),
            mk("pnr::place", "anneal_round", vec![]),
            mk("stitch::placer", "candidate", vec![]),
            mk("stitch::placer", "threshold_retry", vec![]),
        ];
        let s = convergence_summary(&events);
        assert_eq!(s.route_runs, 1);
        assert_eq!(s.max_router_iters, 2);
        assert_eq!(s.final_overuse, 0);
        assert_eq!(s.anneal_rounds, 1);
        assert_eq!(s.placer_candidates, 1);
        assert_eq!(s.placer_retries, 1);
        assert_eq!(s.router_expansions, 150);
        assert_eq!(s.steiner_segments, 5);
        assert_eq!(s.criticality_reroutes, 2);
        assert_eq!(s.parallel_conflicts, 1);
        let line = s.to_string();
        assert!(line.contains("converged in 2 iterations"));
        assert!(line.contains("5 steiner segments"));
    }
}
