//! Regenerates the paper's fig1 motivation experiment. Run with --release.
fn main() {
    println!("{}", pi_bench::experiments::fig1_motivation().render());
}
