//! Regenerates the paper's table4 sota experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!("{}", pi_bench::experiments::table4_sota(&mut ctx).render());
}
