//! `models` — the descriptor frontend end-to-end: import every bundled
//! model descriptor under `models/` (AlexNet, CIFAR-10 quick and the
//! small ResNet ride in through `pi-model`, LeNet doubles as the golden
//! reference), run the pre-implemented flow on each, and verify the
//! LeNet that came in as JSON assembles the byte-identical accelerator
//! the built-in constructor does. Writes `BENCH_models.json` with the
//! per-network workload and flow numbers plus a flowstat profile of the
//! whole sweep.
//!
//! Run with `cargo run --release -p pi-bench --bin models`.

use pi_fabric::Device;
use pi_flow::{build_component_db, run_pre_implemented_flow, FlowConfig};
use pi_model::ModelFormat;
use pi_obs::agg::RunReport;
use pi_obs::MemorySink;
use pi_synth::SynthOptions;
use serde_json::json;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn models_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

struct RunRow {
    file: String,
    network: String,
    nodes: usize,
    weights: u64,
    macs: u64,
    db_build_s: f64,
    compose_s: f64,
    fmax_mhz: f64,
    stitched_nets: usize,
    summary: String,
}

fn run_descriptor(path: &Path, cfg: &FlowConfig, device: &Device) -> RunRow {
    let format = ModelFormat::from_path(path).expect("bundled descriptors have known extensions");
    let text = std::fs::read_to_string(path).expect("descriptor reads");
    let imp = pi_model::import(&text, format).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    assert!(
        imp.findings.is_empty(),
        "{}: {:?}",
        path.display(),
        imp.findings
    );
    let stats = imp.network.stats().expect("stats");
    let t0 = Instant::now();
    let (db, _) = build_component_db(&imp.network, device, cfg).expect("db builds");
    let db_build_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (design, report) =
        run_pre_implemented_flow(&imp.network, &db, device, cfg).expect("flow runs");
    let compose_s = t1.elapsed().as_secs_f64();
    assert!(design.fully_routed(), "{} not fully routed", path.display());
    RunRow {
        file: path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default(),
        network: imp.network.name.clone(),
        nodes: imp.network.nodes().len(),
        weights: stats.total_weights(),
        macs: stats.total_macs(),
        db_build_s,
        compose_s,
        fmax_mhz: report.compile.timing.fmax_mhz,
        stitched_nets: report.compose.stitched_nets,
        summary: report.deterministic_summary(),
    }
}

fn main() {
    let device = Device::xcku5p_like();
    let sink = Arc::new(MemorySink::new());
    // AlexNet's 4096-wide classifier needs the streamed-weight synthesis
    // the VGG experiments use; everything else fits the BRAM-resident
    // LeNet-style engines.
    let cfg_for = |synth: SynthOptions| {
        FlowConfig::new()
            .with_synth(synth)
            .with_seeds([1])
            .with_sink(sink.clone())
    };
    let cfg = cfg_for(SynthOptions::lenet_like());

    let mut rows = Vec::new();
    for (file, synth) in [
        ("lenet.json", SynthOptions::lenet_like()),
        ("alexnet.json", SynthOptions::vgg_like()),
        ("cifar10_quick.prototxt", SynthOptions::lenet_like()),
        ("resnet_small.json", SynthOptions::lenet_like()),
    ] {
        eprintln!("[models] {file}: import + pre-implemented flow...");
        rows.push(run_descriptor(
            &models_dir().join(file),
            &cfg_for(synth),
            &device,
        ));
    }

    // Golden check: the descriptor LeNet and the built-in constructor
    // assemble the identical accelerator.
    let builtin = pi_cnn::models::lenet5();
    let (db, _) = build_component_db(&builtin, &device, &cfg).expect("builtin db");
    let (_, report) = run_pre_implemented_flow(&builtin, &db, &device, &cfg).expect("builtin flow");
    let golden_identical = rows[0].summary == report.deterministic_summary();
    assert!(
        golden_identical,
        "descriptor LeNet diverged from models::lenet5()"
    );

    for r in &rows {
        println!(
            "{:<24} {:<14} {:>3} nodes {:>10} weights {:>12} MACs   \
             build {:>6.2}s compose {:>6.3}s   Fmax {:>4.0} MHz, {} stitched nets",
            r.file,
            r.network,
            r.nodes,
            r.weights,
            r.macs,
            r.db_build_s,
            r.compose_s,
            r.fmax_mhz,
            r.stitched_nets,
        );
    }
    println!("golden: lenet.json == models::lenet5(): {golden_identical}");

    let doc = json!({
        "bench": "model_descriptor_frontend",
        "golden_lenet_identical": golden_identical,
        "networks": rows.iter().map(|r| json!({
            "file": r.file,
            "network": r.network,
            "nodes": r.nodes as u64,
            "weights": r.weights,
            "macs": r.macs,
            "db_build_s": r.db_build_s,
            "compose_s": r.compose_s,
            "fmax_mhz": r.fmax_mhz,
            "stitched_nets": r.stitched_nets as u64,
        })).collect::<Vec<_>>(),
        "notes": "every network entered the flow through a checked-in pi-model \
                  descriptor (JSON op graph or prototxt layer config); the LeNet \
                  descriptor must assemble the byte-identical accelerator the \
                  built-in constructor does.",
    });
    std::fs::write(
        "BENCH_models.json",
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .expect("write BENCH_models.json");
    let report = RunReport::from_events(&sink.snapshot());
    std::fs::write("BENCH_models.flowstat.txt", report.render_text())
        .expect("write BENCH_models.flowstat.txt");
    eprintln!("[models] wrote BENCH_models.json + BENCH_models.flowstat.txt");
}
