//! `lint` — throughput and stability bench for the `pi-lint` dataflow
//! fixpoint engine.
//!
//! Runs the PL04xx dataflow analysis (worklist fixpoint over arrival
//! intervals → per-link FIFO occupancy bounds) on the bundled networks,
//! measures analysis wall time and fixpoint iteration counts, and writes
//! `BENCH_lint.json` plus a deterministic flowstat snapshot of the
//! captured `lint::dataflow` telemetry.
//!
//! The bench is self-gating (shared exit code 2):
//!
//! * the fixpoint must converge on every bundled network (no `PL0403`),
//! * every bundled network must lint clean at the stitcher's default
//!   link-FIFO depth — the shipped models are the calibration set,
//! * the ResNet skip-path minimum depth must not drift from the
//!   checked-in value: that number is the rate model's observable, and a
//!   silent change means the folding/cycle model moved under the
//!   analysis.
//!
//! Usage: `lint [--networks lenet5,resnet_small] [--out PATH]
//! [--trace PATH]`. `--trace` records the first network's event stream
//! (CI feeds it into `flowstat record --history` for trend gating).

use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_lint::{analyze_dataflow, LintConfig, LintEngine};
use pi_obs::agg::RunReport;
use pi_obs::{Event, EventSink, FanoutSink, FileSink, MemorySink, Obs};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

/// The ResNet skip edge into `add2+relu2b` dominates every bundled
/// minimum depth; the rate model puts it at 44 tokens (43 cycles of path
/// skew at one token per cycle, plus one in flight).
const RESNET_EXPECTED_MAX_DEPTH: u64 = 44;

struct NetResult {
    analysis_ms: f64,
    iterations: u64,
    edges: usize,
    max_min_depth: u64,
    diverged: bool,
    clean: bool,
    summary: String,
    events: Vec<Event>,
}

fn run_network(network: &Network, trace: Option<&str>) -> NetResult {
    let sink = Arc::new(MemorySink::new());
    let obs = match trace {
        Some(path) => {
            let file = FileSink::create(path).unwrap_or_else(|e| panic!("--trace {path}: {e}"));
            let tee: Vec<Arc<dyn EventSink>> = vec![sink.clone(), Arc::new(file)];
            Obs::new(Arc::new(FanoutSink::new(tee)))
        }
        None => Obs::new(sink.clone()),
    };
    let t0 = Instant::now();
    let analysis = analyze_dataflow(network, Granularity::Layer);
    let analysis_ms = t0.elapsed().as_secs_f64() * 1e3;
    let engine = LintEngine::new(LintConfig::new());
    let report = engine.lint_dataflow(network, Granularity::Layer, false, &obs);
    NetResult {
        analysis_ms,
        iterations: analysis.iterations,
        edges: analysis.edges.len(),
        max_min_depth: analysis.max_min_depth(),
        diverged: analysis.diverged,
        clean: report.is_clean(),
        summary: report.summary_line(),
        events: sink.snapshot(),
    }
}

fn main() {
    let mut networks = vec![
        "lenet5".to_string(),
        "alexnet_like".to_string(),
        "resnet_small".to_string(),
        "cifar10_quick".to_string(),
    ];
    let mut out = "BENCH_lint.json".to_string();
    let mut trace: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--networks" => {
                let v = argv.next().expect("--networks needs a value");
                networks = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--out" => out = argv.next().expect("--out needs a path"),
            "--trace" => trace = argv.next(),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let mut sections: Vec<(String, serde_json::Value)> = Vec::new();
    let mut all_events: Vec<Event> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();

    for (i, name) in networks.iter().enumerate() {
        let network = match name.as_str() {
            "lenet5" => pi_cnn::models::lenet5(),
            "alexnet_like" => pi_cnn::models::alexnet_like(),
            "resnet_small" => pi_cnn::models::resnet_small(),
            "cifar10_quick" => pi_cnn::models::cifar10_quick(),
            "vgg16" => pi_cnn::models::vgg16(),
            other => panic!("unknown network {other:?}"),
        };
        let r = run_network(&network, (i == 0).then_some(trace.as_deref()).flatten());
        println!(
            "{name:<14} {:>7.3} ms   {:>4} iterations   {:>3} links   max min-depth {:>3}   {}",
            r.analysis_ms, r.iterations, r.edges, r.max_min_depth, r.summary,
        );
        if r.diverged {
            gate_failures.push(format!("{name}: fixpoint diverged"));
        }
        if !r.clean {
            gate_failures.push(format!(
                "{name}: bundled network no longer lints clean ({})",
                r.summary
            ));
        }
        if name == "resnet_small" && r.max_min_depth != RESNET_EXPECTED_MAX_DEPTH {
            gate_failures.push(format!(
                "resnet_small: skip-path minimum depth drifted ({} != {RESNET_EXPECTED_MAX_DEPTH})",
                r.max_min_depth
            ));
        }
        sections.push((
            name.clone(),
            json!({
                "analysis_ms": r.analysis_ms,
                "iterations": r.iterations,
                "links": r.edges,
                "max_min_depth": r.max_min_depth,
                "diverged": r.diverged,
                "clean": r.clean,
            }),
        ));
        all_events.extend(r.events);
    }

    let doc = json!({
        "bench": "lint_dataflow",
        "networks": serde_json::Value::Map(sections),
        "notes": "iterations is total worklist visits of the arrival-interval fixpoint; \
                  max_min_depth the deepest per-link FIFO requirement the analysis proves. \
                  Both are schedule-independent; analysis_ms is wall-clock and excluded \
                  from any determinism comparison. The gate requires convergence, clean \
                  bundled models at the default link depth, and a stable ResNet skip \
                  minimum.",
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    let report = RunReport::from_events(&all_events);
    let summary_path = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.flowstat.txt"),
        None => format!("{out}.flowstat.txt"),
    };
    std::fs::write(&summary_path, report.render_text())
        .unwrap_or_else(|e| panic!("write {summary_path}: {e}"));
    eprintln!("[lint] wrote {out} + {summary_path}");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("[lint] GATE: {f}");
        }
        std::process::exit(2);
    }
}
