//! Regenerates the paper's fig7 vgg experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!("{}", pi_bench::experiments::fig7_vgg(&mut ctx).render());
}
