//! Regenerates the paper's ablation flow options experiment. Run with --release.
fn main() {
    println!(
        "{}",
        pi_bench::experiments::ablation_flow_options().render()
    );
}
