//! Runs every experiment and writes EXPERIMENTS.md at the workspace root.
//!
//! Usage: `cargo run -p pi-bench --release --bin all_experiments`
use std::fmt::Write as _;

fn main() {
    let started = std::time::Instant::now();
    let mut ctx = pi_bench::Ctx::new();
    let sections = pi_bench::experiments::all(&mut ctx);

    let mut out = String::new();
    out.push_str(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Reproduction of every table and figure from *\"Exploring a Layer-based\n\
         Pre-implemented Flow for Mapping CNN on FPGA\"* (IPPS 2021) on the pure-Rust\n\
         toolflow in this repository. Regenerate with:\n\n\
         ```\n\
         cargo run -p pi-bench --release --bin all_experiments\n\
         ```\n\n\
         Absolute numbers come from this repository's device/delay models (the\n\
         substrate is a simulator, not the authors' Vivado + xcku5p testbed); the\n\
         comparisons to read are the *shapes*: who wins, by roughly what factor,\n\
         and which trends the paper reports. Known calibration offsets and paper\n\
         inconsistencies are noted inline under each artifact. All runs are\n\
         seeded and deterministic.\n\n\
         Test triage (seed repository): the only failures ever observed in the\n\
         seed tier-1 suite were build failures from the package registry being\n\
         unreachable in the build environment, not logic defects; all external\n\
         crates are now vendored as offline stand-ins under `vendor/`, and the\n\
         full workspace test suite passes with zero failures. The vendored\n\
         `rayon` stand-in runs a real worker pool (thread count from\n\
         `PI_THREADS`, default all cores); results and telemetry streams are\n\
         identical at every thread count, because parallel maps return in\n\
         input index order and per-item events are buffered and flushed in\n\
         that same order.\n\n\
         Bench trajectory: every `pi-bench` binary accepts `--history DIR`\n\
         to append its run's compacted flowstat metrics to\n\
         `DIR/history.jsonl`, so the `BENCH_*.json` snapshots below become\n\
         a gated time series — `flowstat trend --history DIR\n\
         --fail-on-regression` compares the newest run against the rolling\n\
         median of the window and exits non-zero on drift (`ci.sh` runs\n\
         the same gate on LeNet traces; see DESIGN.md §16).\n\n",
    );
    for s in &sections {
        out.push_str(&s.render());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "---\nGenerated in {:.1} s on {} threads.",
        started.elapsed().as_secs_f64(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    // Workspace root = two levels above this crate's manifest.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let path = root.join("EXPERIMENTS.md");
    std::fs::write(&path, &out).expect("EXPERIMENTS.md is writable");
    // Machine-readable twin for downstream tooling.
    let json: Vec<serde_json::Value> = sections
        .iter()
        .map(|s| {
            serde_json::json!({
                "id": s.id,
                "title": s.title,
                "body_markdown": s.body,
            })
        })
        .collect();
    let json_path = root.join("target").join("experiments.json");
    if let Ok(encoded) = serde_json::to_string_pretty(&json) {
        let _ = std::fs::create_dir_all(root.join("target"));
        let _ = std::fs::write(&json_path, encoded);
    }
    // Deterministic flowstat profile of everything the run emitted.
    let flowstat_path = root.join("target").join("experiments.flowstat.txt");
    let _ = std::fs::write(&flowstat_path, ctx.run_report().render_text());
    println!("{out}");
    eprintln!(
        "wrote {}, {} and {}",
        path.display(),
        json_path.display(),
        flowstat_path.display()
    );
}
