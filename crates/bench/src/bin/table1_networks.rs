//! Regenerates the paper's table1 networks experiment. Run with --release.
fn main() {
    println!("{}", pi_bench::experiments::table1_networks().render());
}
