//! Regenerates the paper's fig6 productivity experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!(
        "{}",
        pi_bench::experiments::fig6_productivity(&mut ctx).render()
    );
}
