//! Extension: Q-CLE architecture class with one replicated checkpoint.
fn main() {
    println!("{}", pi_bench::experiments::ablation_cle().render());
}
