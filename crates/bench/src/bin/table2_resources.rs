//! Regenerates the paper's table2 resources experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!(
        "{}",
        pi_bench::experiments::table2_resources(&mut ctx).render()
    );
}
