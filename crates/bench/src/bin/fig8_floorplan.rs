//! Renders the assembled VGG-16 floorplan (the paper's Fig. 8).
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!(
        "{}",
        pi_bench::experiments::fig8_floorplan(&mut ctx).render()
    );
}
