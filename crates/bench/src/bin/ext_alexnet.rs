//! Generalization experiment: AlexNet-style network through both flows.
fn main() {
    println!("{}", pi_bench::experiments::ext_alexnet().render());
}
