//! `router` — speed/quality comparison of the Steiner/slack/parallel
//! router against the pre-change star router.
//!
//! Runs the full pre-implemented flow per network twice — once with the
//! optimizations off ([`RouteOptions::star_baseline`]: distance-ordered
//! star routing in net index order, the pre-change algorithm) and once
//! with the defaults on (Steiner decomposition + slack-ordered
//! negotiation) — folds each variant's telemetry into router work metrics
//! (negotiation passes, A* expansions, rip-ups, final overuse) and writes
//! `BENCH_router.json` plus a deterministic flowstat snapshot.
//!
//! The bench is self-gating: it exits 2 (the shared gate exit code) when
//! the optimized router does more A* work than the baseline or loses
//! Fmax — the quality claim in ROADMAP item 3 must hold on every run, not
//! just the one that produced the checked-in numbers.
//!
//! Usage: `router [--networks lenet,vgg] [--seeds N] [--out PATH]
//! [--trace PATH]`. `--trace` records the optimized variant of the first
//! network's stream (CI diffs it against a checked-in seed snapshot).

use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_flow::{build_component_db, run_pre_implemented_flow, FlowConfig};
use pi_obs::agg::RunReport;
use pi_obs::{Event, EventSink, FanoutSink, FileSink, MemorySink, Obs};
use pi_pnr::RouteOptions;
use pi_synth::SynthOptions;
use serde_json::json;
use std::sync::Arc;

struct VariantResult {
    passes: u64,
    expansions: u64,
    ripups: u64,
    final_overused: u64,
    steiner_segments: u64,
    criticality_reroutes: u64,
    parallel_conflicts: u64,
    fmax_mhz: f64,
    events: Vec<Event>,
}

fn run_variant(
    network: &Network,
    device: &Device,
    granularity: Granularity,
    synth: SynthOptions,
    seeds: u64,
    route: RouteOptions,
    trace: Option<&str>,
) -> VariantResult {
    let sink = Arc::new(MemorySink::new());
    let obs = match trace {
        Some(path) => {
            let file = FileSink::create(path).unwrap_or_else(|e| panic!("--trace {path}: {e}"));
            let tee: Vec<Arc<dyn EventSink>> = vec![sink.clone(), Arc::new(file)];
            Obs::new(Arc::new(FanoutSink::new(tee)))
        }
        None => Obs::new(sink.clone()),
    };
    let cfg = FlowConfig::new()
        .with_synth(synth)
        .with_granularity(granularity)
        .with_seeds(1..=seeds)
        .with_route(route)
        .with_obs(obs);
    let (db, _) = build_component_db(network, device, &cfg).expect("component DB builds");
    let (_, report) =
        run_pre_implemented_flow(network, &db, device, &cfg).expect("pre-implemented flow");
    let events = sink.snapshot();
    let folded = RunReport::from_events(&events);
    VariantResult {
        passes: folded.route.iter().map(|t| t.iters()).sum(),
        expansions: folded.route.iter().map(|t| t.total_expansions()).sum(),
        ripups: folded.route.iter().map(|t| t.total_ripups()).sum(),
        final_overused: folded.route.iter().map(|t| t.final_overused()).sum(),
        steiner_segments: folded.route.iter().map(|t| t.steiner_segments).sum(),
        criticality_reroutes: folded.route.iter().map(|t| t.criticality_reroutes).sum(),
        parallel_conflicts: folded.route.iter().map(|t| t.parallel_conflicts).sum(),
        fmax_mhz: report.compile.timing.fmax_mhz,
        events,
    }
}

fn main() {
    let mut networks = vec!["lenet".to_string(), "vgg".to_string()];
    let mut seeds = 3u64;
    let mut out = "BENCH_router.json".to_string();
    let mut trace: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--networks" => {
                let v = argv.next().expect("--networks needs a value");
                networks = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--seeds" => {
                seeds = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds needs a number");
            }
            "--out" => out = argv.next().expect("--out needs a path"),
            "--trace" => trace = argv.next(),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let device = Device::xcku5p_like();
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut sections: Vec<(String, serde_json::Value)> = Vec::new();
    let mut all_events: Vec<Event> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();

    for (i, name) in networks.iter().enumerate() {
        let (network, granularity, synth) = match name.as_str() {
            "lenet" => (
                pi_cnn::models::lenet5(),
                Granularity::Layer,
                SynthOptions::lenet_like(),
            ),
            "vgg" => (
                pi_cnn::models::vgg16(),
                Granularity::Block,
                SynthOptions::vgg_like(),
            ),
            other => panic!("unknown network {other:?} (expected lenet or vgg)"),
        };
        eprintln!("[router] {name}: star baseline...");
        let base = run_variant(
            &network,
            &device,
            granularity,
            synth,
            seeds,
            RouteOptions::star_baseline(),
            None,
        );
        eprintln!("[router] {name}: steiner + slack-ordered...");
        let opt = run_variant(
            &network,
            &device,
            granularity,
            synth,
            seeds,
            RouteOptions::default(),
            (i == 0).then_some(trace.as_deref()).flatten(),
        );
        let pct = |b: u64, o: u64| -> f64 {
            if b == 0 {
                0.0
            } else {
                (b as f64 - o as f64) / b as f64 * 100.0
            }
        };
        println!(
            "{name:<6} passes {:>4} -> {:>4} ({:+.1}%)   expansions {:>9} -> {:>9} ({:+.1}%)   \
             Fmax {:>6.1} -> {:>6.1} MHz   {} steiner segs, {} crit re-routes",
            base.passes,
            opt.passes,
            pct(base.passes, opt.passes),
            base.expansions,
            opt.expansions,
            pct(base.expansions, opt.expansions),
            base.fmax_mhz,
            opt.fmax_mhz,
            opt.steiner_segments,
            opt.criticality_reroutes,
        );
        if opt.expansions > base.expansions {
            gate_failures.push(format!(
                "{name}: optimized router expanded more nodes ({} > {})",
                opt.expansions, base.expansions
            ));
        }
        if opt.fmax_mhz < base.fmax_mhz - 1e-9 {
            gate_failures.push(format!(
                "{name}: optimized router lost Fmax ({:.3} < {:.3} MHz)",
                opt.fmax_mhz, base.fmax_mhz
            ));
        }
        let variant = |v: &VariantResult| {
            json!({
                "passes": v.passes,
                "expansions": v.expansions,
                "ripups": v.ripups,
                "final_overused": v.final_overused,
                "steiner_segments": v.steiner_segments,
                "criticality_reroutes": v.criticality_reroutes,
                "parallel_conflicts": v.parallel_conflicts,
                "fmax_mhz": v.fmax_mhz,
            })
        };
        sections.push((
            name.clone(),
            json!({
                "baseline_star": variant(&base),
                "steiner_slack": variant(&opt),
                "expansions_saved_pct": pct(base.expansions, opt.expansions),
                "passes_saved_pct": pct(base.passes, opt.passes),
                "fmax_delta_mhz": opt.fmax_mhz - base.fmax_mhz,
            }),
        ));
        all_events.extend(opt.events);
    }

    let doc = json!({
        "bench": "router_quality_speed",
        "host_cores": host_cores,
        "seeds": seeds,
        "networks": serde_json::Value::Map(sections),
        "notes": "baseline_star is the pre-change router (RouteOptions::star_baseline()): \
                  distance-ordered star routing, index-ordered negotiation. steiner_slack \
                  is the shipping default. expansions is total A* open-set pops — the \
                  router's work metric; the gate requires the optimized router to do no \
                  more work at equal-or-better Fmax. Deterministic at any PI_THREADS.",
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .unwrap_or_else(|e| panic!("write {out}: {e}"));
    let report = RunReport::from_events(&all_events);
    let summary_path = match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.flowstat.txt"),
        None => format!("{out}.flowstat.txt"),
    };
    std::fs::write(&summary_path, report.render_text())
        .unwrap_or_else(|e| panic!("write {summary_path}: {e}"));
    eprintln!("[router] wrote {out} + {summary_path} (host_cores = {host_cores})");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("[router] GATE: {f}");
        }
        std::process::exit(2);
    }
}
