//! Regenerates the paper's ablation placement experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!(
        "{}",
        pi_bench::experiments::ablation_placement(&mut ctx).render()
    );
}
