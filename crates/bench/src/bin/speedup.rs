//! `speedup` — wall-clock comparison of the parallel execution backend.
//!
//! Runs the LeNet-5 and VGG-16 flows at 1 worker thread (forced sequential
//! path) and at `PI_THREADS`-or-4 workers, times each phase, verifies the
//! results are identical, and writes `BENCH_parallel.json` with the
//! per-phase times, speedups and a trajectory point for tracking across
//! commits. Numbers are honest: `host_cores` records how much hardware
//! parallelism actually existed — on a single-core host the parallel
//! schedule cannot beat the sequential one, it can only prove it does not
//! regress.
//!
//! Run with `cargo run --release --bin speedup`.

use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_flow::{build_component_db, run_pre_implemented_flow, FlowConfig};
use pi_obs::agg::RunReport;
use pi_obs::{MemorySink, Obs};
use pi_synth::SynthOptions;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

struct RunTimes {
    build_db_s: f64,
    compose_s: f64,
    fmax_mhz: f64,
    checkpoints: usize,
}

fn run_once(
    network: &Network,
    device: &Device,
    granularity: Granularity,
    synth: SynthOptions,
    threads: usize,
    obs: &Obs,
) -> RunTimes {
    let cfg = FlowConfig::new()
        .with_synth(synth)
        .with_granularity(granularity)
        .with_seeds([1, 2, 3])
        .with_threads(threads)
        .with_obs(obs.clone());
    let t0 = Instant::now();
    let (db, _) = build_component_db(network, device, &cfg).expect("component DB builds");
    let build_db_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (_, report) =
        run_pre_implemented_flow(network, &db, device, &cfg).expect("pre-implemented flow");
    let compose_s = t1.elapsed().as_secs_f64();
    RunTimes {
        build_db_s,
        compose_s,
        fmax_mhz: report.compile.timing.fmax_mhz,
        checkpoints: db.len(),
    }
}

fn main() {
    let device = Device::xcku5p_like();
    // One capture across every run: the flowstat summary written next to
    // BENCH_parallel.json covers the sequential and parallel runs of both
    // networks (their deterministic streams are identical pairwise).
    let sink = Arc::new(MemorySink::new());
    let obs = Obs::new(sink.clone());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_threads = std::env::var("PI_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 1)
        .unwrap_or(4);

    let mut networks: Vec<(String, serde_json::Value)> = Vec::new();
    let mut vgg_build_speedup = 0.0f64;
    for (name, network, granularity, synth) in [
        (
            "lenet5",
            pi_cnn::models::lenet5(),
            Granularity::Layer,
            SynthOptions::lenet_like(),
        ),
        (
            "vgg16",
            pi_cnn::models::vgg16(),
            Granularity::Block,
            SynthOptions::vgg_like(),
        ),
    ] {
        eprintln!("[speedup] {name}: 1 thread...");
        let seq = run_once(&network, &device, granularity, synth, 1, &obs);
        eprintln!("[speedup] {name}: {parallel_threads} threads...");
        let par = run_once(
            &network,
            &device,
            granularity,
            synth,
            parallel_threads,
            &obs,
        );
        assert_eq!(
            seq.fmax_mhz, par.fmax_mhz,
            "{name}: results must not depend on thread count"
        );
        let build_speedup = seq.build_db_s / par.build_db_s;
        let compose_speedup = seq.compose_s / par.compose_s;
        if name == "vgg16" {
            vgg_build_speedup = build_speedup;
        }
        println!(
            "{name:<8} build_db {:>7.2}s -> {:>7.2}s ({build_speedup:.2}x)   \
             compose {:>6.2}s -> {:>6.2}s ({compose_speedup:.2}x)   \
             {} checkpoints, Fmax {:.0} MHz (identical)",
            seq.build_db_s,
            par.build_db_s,
            seq.compose_s,
            par.compose_s,
            seq.checkpoints,
            seq.fmax_mhz,
        );
        // A measured ratio is only a *speedup claim* when the host could
        // actually run threads side by side; on one core it is scheduler
        // noise and recording it as a speedup would be dishonest.
        let claim = |ratio: f64| -> serde_json::Value {
            if host_cores > 1 {
                json!(ratio)
            } else {
                serde_json::Value::Null
            }
        };
        networks.push((
            name.to_string(),
            json!({
                "checkpoints": seq.checkpoints,
                "fmax_mhz": seq.fmax_mhz,
                "results_identical": true,
                "build_db": json!({
                    "seq_s": seq.build_db_s,
                    "par_s": par.build_db_s,
                    "speedup": claim(build_speedup),
                }),
                "compose": json!({
                    "seq_s": seq.compose_s,
                    "par_s": par.compose_s,
                    "speedup": claim(compose_speedup),
                }),
            }),
        ));
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let headline = if host_cores > 1 {
        json!(vgg_build_speedup)
    } else {
        eprintln!(
            "[speedup] host has 1 core: refusing to claim a speedup headline \
             (the run only proves the parallel schedule does not regress)"
        );
        serde_json::Value::Null
    };
    let doc = json!({
        "bench": "parallel_speedup",
        "host_cores": host_cores,
        "thread_counts": json!([1, parallel_threads]),
        "networks": serde_json::Value::Map(networks),
        "trajectory": json!([
            json!({
                "unix_time": unix_time,
                "host_cores": host_cores,
                "threads": parallel_threads,
                "vgg16_build_db_speedup": headline.clone(),
            }),
        ]),
        "speedup_headline": headline,
        "notes": "build_db is the function-optimization phase (components x seeds \
                  fan-out, the flow's dominant parallel region). Speedup scales with \
                  host_cores; speedup fields are null when host_cores == 1 — a \
                  single-core host cannot substantiate a speedup claim, the run \
                  degenerates to a no-regression check of the scheduler overhead.",
    });
    std::fs::write(
        "BENCH_parallel.json",
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .expect("write BENCH_parallel.json");
    let report = RunReport::from_events(&sink.snapshot());
    std::fs::write("BENCH_parallel.flowstat.txt", report.render_text())
        .expect("write BENCH_parallel.flowstat.txt");
    eprintln!(
        "[speedup] wrote BENCH_parallel.json + BENCH_parallel.flowstat.txt \
         (host_cores = {host_cores})"
    );
}
