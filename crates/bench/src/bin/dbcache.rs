//! `dbcache` — warm-vs-cold cost of the persistent component-database
//! cache (the productivity claim behind pre-implementation: build the
//! checkpoints once, reuse them for every subsequent architecture run).
//!
//! Runs the LeNet-5 flow twice against the same `--db-dir`: a **cold** run
//! on an empty cache (every component pre-implemented, then persisted) and
//! a **warm** run that must serve every checkpoint from disk — zero
//! pre-implementations, verified via the cache counters. Asserts the warm
//! run assembles a byte-identical accelerator and is strictly faster than
//! cold build + generation, then writes `BENCH_dbcache.json` with the
//! times and a trajectory point for tracking across commits.
//!
//! Run with `cargo run --release --bin dbcache`.

use pi_fabric::Device;
use pi_flow::{build_component_db_cached, run_pre_implemented_flow, DbCacheStats, FlowConfig};
use pi_obs::agg::RunReport;
use pi_obs::MemorySink;
use pi_synth::SynthOptions;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

struct RunTimes {
    build_db_s: f64,
    compose_s: f64,
    stats: DbCacheStats,
    summary: String,
}

fn run_once(cfg: &FlowConfig) -> RunTimes {
    let network = pi_cnn::models::lenet5();
    let device = Device::xcku5p_like();
    let t0 = Instant::now();
    let (db, _, stats) =
        build_component_db_cached(&network, &device, cfg).expect("component DB builds");
    let build_db_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (_, report) =
        run_pre_implemented_flow(&network, &db, &device, cfg).expect("pre-implemented flow");
    let compose_s = t1.elapsed().as_secs_f64();
    RunTimes {
        build_db_s,
        compose_s,
        stats,
        summary: report.deterministic_summary(),
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pi-bench-dbcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // One telemetry capture across both runs: the flowstat summary shows
    // the cold run's full activity next to the warm run's cache hits.
    let sink = Arc::new(MemorySink::new());
    let cfg = FlowConfig::new()
        .with_synth(SynthOptions::lenet_like())
        .with_seeds([1, 2, 3])
        .with_db_dir(&dir)
        .with_sink(sink.clone());

    eprintln!("[dbcache] lenet5: cold (empty cache)...");
    let cold = run_once(&cfg);
    assert_eq!(
        cold.stats.hits, 0,
        "cold run must start from an empty cache"
    );
    assert!(cold.stats.misses > 0);

    eprintln!("[dbcache] lenet5: warm (populated cache)...");
    let warm = run_once(&cfg);
    assert!(
        warm.stats.all_hits(),
        "warm run pre-implemented components: {:?}",
        warm.stats
    );
    assert_eq!(warm.stats.hits, cold.stats.misses);
    assert_eq!(
        cold.summary, warm.summary,
        "warm-cache run must assemble the identical accelerator"
    );

    let cold_total = cold.build_db_s + cold.compose_s;
    let warm_total = warm.build_db_s + warm.compose_s;
    assert!(
        warm_total < cold_total,
        "warm generation ({warm_total:.3}s) not below cold build+generation ({cold_total:.3}s)"
    );
    let speedup = cold_total / warm_total;
    println!(
        "lenet5   cold {:>7.3}s (build {:>6.3}s + compose {:>6.3}s)   \
         warm {:>7.3}s ({} hits, {} bytes off disk)   {speedup:.2}x, identical result",
        cold_total,
        cold.build_db_s,
        cold.compose_s,
        warm_total,
        warm.stats.hits,
        warm.stats.bytes_loaded,
    );

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = json!({
        "bench": "db_cache_warm_vs_cold",
        "network": "lenet5",
        "checkpoints": warm.stats.hits,
        "results_identical": true,
        "cold": json!({
            "build_db_s": cold.build_db_s,
            "compose_s": cold.compose_s,
            "total_s": cold_total,
            "cache_misses": cold.stats.misses,
        }),
        "warm": json!({
            "build_db_s": warm.build_db_s,
            "compose_s": warm.compose_s,
            "total_s": warm_total,
            "cache_hits": warm.stats.hits,
            "bytes_loaded": warm.stats.bytes_loaded,
        }),
        "speedup": speedup,
        "trajectory": json!([
            json!({
                "unix_time": unix_time,
                "cold_total_s": cold_total,
                "warm_total_s": warm_total,
                "speedup": speedup,
            }),
        ]),
        "notes": "cold = empty --db-dir (pre-implement everything, persist); warm = \
                  same dir reopened (every checkpoint loaded + verified off disk, \
                  zero pre-implementations). Warm time is the per-architecture cost \
                  the paper's reuse story amortizes the build into.",
    });
    std::fs::write(
        "BENCH_dbcache.json",
        serde_json::to_string_pretty(&doc).expect("serialize") + "\n",
    )
    .expect("write BENCH_dbcache.json");
    let report = RunReport::from_events(&sink.snapshot());
    std::fs::write("BENCH_dbcache.flowstat.txt", report.render_text())
        .expect("write BENCH_dbcache.flowstat.txt");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "[dbcache] wrote BENCH_dbcache.json + BENCH_dbcache.flowstat.txt \
         (speedup = {speedup:.2}x)"
    );
}
