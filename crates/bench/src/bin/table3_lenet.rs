//! Regenerates the paper's table3 lenet experiment. Run with --release.
fn main() {
    let mut ctx = pi_bench::Ctx::new();
    println!("{}", pi_bench::experiments::table3_lenet(&mut ctx).render());
}
