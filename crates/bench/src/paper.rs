//! The paper's published numbers, used for side-by-side comparison in every
//! experiment. These are *citations*, not measurements of this codebase.

/// Fig. 1a/1b: the motivation experiment's reported gains (percent) of the
/// RapidWright flow over the Vivado flow, per kernel.
pub struct Fig1Ref {
    pub kernel: &'static str,
    pub compile_gain_pct: f64,
    pub fmax_gain_pct: f64,
}

pub const FIG1: [Fig1Ref; 4] = [
    Fig1Ref {
        kernel: "MM",
        compile_gain_pct: 5.0,
        fmax_gain_pct: 19.0,
    },
    Fig1Ref {
        kernel: "OP",
        compile_gain_pct: 18.0,
        fmax_gain_pct: 33.0,
    },
    Fig1Ref {
        kernel: "RC",
        compile_gain_pct: 37.0,
        fmax_gain_pct: 9.0,
    },
    Fig1Ref {
        kernel: "SM",
        compile_gain_pct: 7.0,
        fmax_gain_pct: 8.0,
    },
];

/// Table I reference values as printed in the paper. (The LeNet row is
/// internally inconsistent with the paper's own per-layer counts — see
/// EXPERIMENTS.md.)
pub struct Table1Ref {
    pub network: &'static str,
    pub conv_layers: &'static str,
    pub conv_weights: &'static str,
    pub conv_macs: &'static str,
    pub fc_layers: &'static str,
    pub fc_weights: &'static str,
    pub fc_macs: &'static str,
    pub total_weights: &'static str,
    pub total_macs: &'static str,
}

pub const TABLE1: [Table1Ref; 2] = [
    Table1Ref {
        network: "LeNet-5",
        conv_layers: "2",
        conv_weights: "26 K",
        conv_macs: "1.9 M",
        fc_layers: "2",
        fc_weights: "406 K",
        fc_macs: "405 K",
        total_weights: "431 K",
        total_macs: "2.3 M",
    },
    Table1Ref {
        network: "VGG-16",
        conv_layers: "16",
        conv_weights: "14.7 M",
        conv_macs: "15.3 G",
        fc_layers: "3",
        fc_weights: "124 M",
        fc_macs: "124 M",
        total_weights: "138 M",
        total_macs: "15.5 G",
    },
];

/// Table II reference: (LUTs, FFs, BRAMs, DSPs) with the paper's
/// percentages in parentheses.
pub struct Table2Ref {
    pub row: &'static str,
    pub luts: &'static str,
    pub ffs: &'static str,
    pub brams: &'static str,
    pub dsps: &'static str,
}

pub const TABLE2: [Table2Ref; 4] = [
    Table2Ref {
        row: "LeNet (classic)",
        luts: "32021 (9.65%)",
        ffs: "8538 (1.29%)",
        brams: "463 (21.44%)",
        dsps: "144 (5.21%)",
    },
    Table2Ref {
        row: "LeNet (pre-impl)",
        luts: "29491 (8.89%)",
        ffs: "8442 (1.26%)",
        brams: "457 (21.16%)",
        dsps: "144 (5.21%)",
    },
    Table2Ref {
        row: "VGG-16 (classic)",
        luts: "282870 (85.28%)",
        ffs: "215763 (32.53%)",
        brams: "854 (38.54%)",
        dsps: "2116 (76.66%)",
    },
    Table2Ref {
        row: "VGG-16 (pre-impl)",
        luts: "261321 (78.79%)",
        ffs: "180754 (27.25%)",
        brams: "786 (36.39%)",
        dsps: "2123 (76.92%)",
    },
];

/// Fig. 6: design-generation times. The paper gives pre-implemented times
/// and productivity gains; baselines are implied.
pub struct Fig6Ref {
    pub network: &'static str,
    pub preimpl_min: f64,
    pub productivity_gain_pct: f64,
    pub stitch_share_pct: f64,
}

pub const FIG6: [Fig6Ref; 2] = [
    Fig6Ref {
        network: "LeNet-5",
        preimpl_min: 16.54,
        productivity_gain_pct: 69.0,
        stitch_share_pct: 5.0,
    },
    Fig6Ref {
        network: "VGG-16",
        preimpl_min: 52.87,
        productivity_gain_pct: 61.0,
        stitch_share_pct: 9.0,
    },
];

/// Table III: LeNet performance exploration (frequency MHz, latency ns).
pub struct Table3Ref {
    pub row: &'static str,
    pub freq_mhz: f64,
    pub latency_ns: f64,
}

pub const TABLE3: [Table3Ref; 8] = [
    Table3Ref {
        row: "Full Network",
        freq_mhz: 375.0,
        latency_ns: 249.7,
    },
    Table3Ref {
        row: "Conv1",
        freq_mhz: 562.0,
        latency_ns: 37.33,
    },
    Table3Ref {
        row: "Pool1+ReLU1",
        freq_mhz: 633.0,
        latency_ns: 12.93,
    },
    Table3Ref {
        row: "Conv2",
        freq_mhz: 475.0,
        latency_ns: 63.46,
    },
    Table3Ref {
        row: "Pool2+ReLU",
        freq_mhz: 588.0,
        latency_ns: 22.51,
    },
    Table3Ref {
        row: "FC1",
        freq_mhz: 497.0,
        latency_ns: 49.32,
    },
    Table3Ref {
        row: "FC2",
        freq_mhz: 543.0,
        latency_ns: 25.05,
    },
    Table3Ref {
        row: "Our work",
        freq_mhz: 437.0,
        latency_ns: 249.10,
    },
];

/// Fig. 7: VGG performance exploration (frequency MHz, latency ms).
pub struct Fig7Ref {
    pub row: &'static str,
    pub freq_mhz: f64,
    pub latency_ms: f64,
}

pub const FIG7: [Fig7Ref; 14] = [
    Fig7Ref {
        row: "VGG (baseline)",
        freq_mhz: 200.0,
        latency_ms: 55.13,
    },
    Fig7Ref {
        row: "Component 1",
        freq_mhz: 367.0,
        latency_ms: 1.54,
    },
    Fig7Ref {
        row: "Component 2",
        freq_mhz: 475.0,
        latency_ms: 0.021,
    },
    Fig7Ref {
        row: "Component 3",
        freq_mhz: 341.0,
        latency_ms: 4.32,
    },
    Fig7Ref {
        row: "Component 4",
        freq_mhz: 461.0,
        latency_ms: 0.034,
    },
    Fig7Ref {
        row: "Component 5",
        freq_mhz: 326.0,
        latency_ms: 3.97,
    },
    Fig7Ref {
        row: "Component 6",
        freq_mhz: 454.0,
        latency_ms: 0.035,
    },
    Fig7Ref {
        row: "Component 7",
        freq_mhz: 313.0,
        latency_ms: 4.3,
    },
    Fig7Ref {
        row: "Component 8",
        freq_mhz: 432.0,
        latency_ms: 0.041,
    },
    Fig7Ref {
        row: "Component 9",
        freq_mhz: 308.0,
        latency_ms: 4.56,
    },
    Fig7Ref {
        row: "Component 10",
        freq_mhz: 300.0,
        latency_ms: 1.62,
    },
    Fig7Ref {
        row: "Component 11",
        freq_mhz: 300.0,
        latency_ms: 1.62,
    },
    Fig7Ref {
        row: "Component 12",
        freq_mhz: 375.0,
        latency_ms: 0.91,
    },
    Fig7Ref {
        row: "Our work",
        freq_mhz: 243.0,
        latency_ms: 56.67,
    },
];

/// Table IV: VGG-16 comparison with state-of-the-art accelerators. All rows
/// except "this repo" are literature citations in the paper as well.
pub struct Table4Ref {
    pub work: &'static str,
    pub fpga: &'static str,
    pub freq_mhz: &'static str,
    pub precision: &'static str,
    pub dsp_util: &'static str,
    pub latency_ms: &'static str,
}

pub const TABLE4: [Table4Ref; 4] = [
    Table4Ref {
        work: "[?] (cited)",
        fpga: "ZC706",
        freq_mhz: "200",
        precision: "fixed 16",
        dsp_util: "90%",
        latency_ms: "40.7",
    },
    Table4Ref {
        work: "Caffeine [19] (cited)",
        fpga: "Xilinx KU460",
        freq_mhz: "200",
        precision: "fixed 16",
        dsp_util: "38%",
        latency_ms: "-",
    },
    Table4Ref {
        work: "McDanel et al. [12] (cited)",
        fpga: "VC707",
        freq_mhz: "170",
        precision: "fixed 16",
        dsp_util: "4%",
        latency_ms: "2.28",
    },
    Table4Ref {
        work: "Paper's own",
        fpga: "Kintex KU060",
        freq_mhz: "263",
        precision: "fixed 16",
        dsp_util: "76%",
        latency_ms: "42.68",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_have_expected_shapes() {
        assert_eq!(FIG1.len(), 4);
        assert_eq!(TABLE2.len(), 4);
        assert_eq!(TABLE3.len(), 8);
        assert_eq!(FIG7.len(), 14);
        // The paper's own Table III claim: our-work frequency is the row
        // the 1.75x headline refers to.
        assert_eq!(TABLE3[7].freq_mhz, 437.0);
    }
}
