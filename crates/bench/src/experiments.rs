//! One function per paper artifact. Every function returns a markdown
//! [`Section`] with our measurements next to the paper's published numbers.

use crate::paper;
use crate::{device, fmt_s, md_table, Ctx, Section};
use pi_cnn::cycles;
use pi_cnn::graph::Granularity;
use pi_flow::{
    build_component_db, plan_partpins, run_pre_implemented_flow, size_pblock, FlowConfig,
};
use pi_netlist::{Checkpoint, CheckpointMeta, Design, DesignKind};
use pi_pnr::compile::CompileOptions;
use pi_pnr::{
    compile_flat, place_module, route_assembled, route_module, sta_module, PlaceOptions,
    RouteOptions,
};
use pi_stitch::{ComponentDb, ComponentPlacerOptions};
use pi_synth::{synth_kernel, KernelKind};
use std::time::Instant;

/// E1 — Fig. 1: the motivation experiment. Four 3×3 PE-block kernels built
/// with the full flow ("Vivado") and as pre-implemented components
/// ("RapidWright"); compile time and Fmax compared.
pub fn fig1_motivation() -> Section {
    let device = device();
    let mut rows = Vec::new();
    for (kind, reference) in KernelKind::ALL.iter().zip(&paper::FIG1) {
        // Traditional flow: full implementation of the block.
        let mut base = synth_kernel(*kind, 3, 3).expect("kernel synthesizes");
        let t0 = Instant::now();
        let base_report =
            compile_flat(&mut base, &device, &CompileOptions::with_seed(1)).expect("compiles");
        let base_time = t0.elapsed();

        // Pre-implemented flow: OOC implementation once (not charged), then
        // generation = relocate + finish routing.
        let mut ooc = synth_kernel(*kind, 3, 3).expect("kernel synthesizes");
        let pblock = size_pblock(&ooc.resources(), &device, 0.7).expect("pblock fits");
        ooc.pblock = Some(pblock);
        plan_partpins(&mut ooc, &pblock).expect("partpins anchor the ports");
        place_module(
            &mut ooc,
            &device,
            &PlaceOptions {
                seed: 1,
                effort: 2.0,
                region: Some(pblock),
            },
        )
        .expect("places");
        plan_partpins(&mut ooc, &pblock).expect("partpins refine");
        let _ = route_module(&mut ooc, &device, &RouteOptions::default()).expect("routes");
        ooc.lock();
        let fmax_ooc = sta_module(&ooc, &device, None).expect("sta").fmax_mhz;
        let cp = Checkpoint {
            meta: CheckpointMeta {
                signature: kind.abbrev().to_string(),
                fmax_mhz: fmax_ooc,
                resources: ooc.resources(),
                pblock,
                device: device.name().to_string(),
                latency_cycles: 0,
            },
            module: ooc,
        };
        let t1 = Instant::now();
        let module = pi_stitch::relocate_to(&cp, &device, pi_fabric::TileCoord::new(1, 0))
            .expect("relocates");
        let mut design = Design::new(
            format!("{}_asm", kind.abbrev()),
            device.name(),
            DesignKind::Assembled,
        );
        design.add_instance(kind.abbrev(), module);
        let pre_report =
            route_assembled(&mut design, &device, &RouteOptions::default()).expect("routes");
        let pre_time = t1.elapsed();

        let compile_gain = 100.0 * (1.0 - pre_time.as_secs_f64() / base_time.as_secs_f64());
        let fmax_gain = 100.0 * (pre_report.timing.fmax_mhz / base_report.timing.fmax_mhz - 1.0);
        rows.push(vec![
            reference.kernel.to_string(),
            fmt_s(base_time),
            fmt_s(pre_time),
            format!("{compile_gain:.0}%"),
            format!("{:.0}%", reference.compile_gain_pct),
            format!("{:.0}", base_report.timing.fmax_mhz),
            format!("{:.0}", pre_report.timing.fmax_mhz),
            format!("{fmax_gain:.0}%"),
            format!("{:.0}%", reference.fmax_gain_pct),
        ]);
    }
    Section {
        id: "Fig. 1".to_string(),
        title: "Motivation: 3×3 PE blocks, traditional vs pre-implemented flow".to_string(),
        body: md_table(
            &[
                "kernel",
                "compile (trad.)",
                "compile (pre-impl)",
                "gain (ours)",
                "gain (paper)",
                "Fmax trad. MHz",
                "Fmax pre-impl MHz",
                "Fmax gain (ours)",
                "Fmax gain (paper)",
            ],
            &rows,
        ),
    }
}

fn fmt_count(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.1} G", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.1} M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1} K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// E2 — Table I: computational characteristics of the two networks.
pub fn table1_networks() -> Section {
    let mut rows = Vec::new();
    for (net, reference) in [pi_cnn::models::lenet5(), pi_cnn::models::vgg16()]
        .into_iter()
        .zip(&paper::TABLE1)
    {
        let s = net.stats().expect("stats");
        rows.push(vec![
            net.name.clone(),
            format!("{} ({})", s.conv_layers, reference.conv_layers),
            format!("{} ({})", fmt_count(s.conv_weights), reference.conv_weights),
            format!("{} ({})", fmt_count(s.conv_macs), reference.conv_macs),
            format!("{} ({})", s.fc_layers, reference.fc_layers),
            format!("{} ({})", fmt_count(s.fc_weights), reference.fc_weights),
            format!("{} ({})", fmt_count(s.fc_macs), reference.fc_macs),
            format!(
                "{} ({})",
                fmt_count(s.total_weights()),
                reference.total_weights
            ),
            format!("{} ({})", fmt_count(s.total_macs()), reference.total_macs),
        ]);
    }
    Section {
        id: "Table I".to_string(),
        title: "Network workloads — measured (paper in parentheses)".to_string(),
        body: md_table(
            &[
                "network",
                "# conv",
                "conv weights",
                "conv MACs",
                "# FC",
                "FC weights",
                "FC MACs",
                "total weights",
                "total MACs",
            ],
            &rows,
        ) + "\nNote: the paper's LeNet row (26 K conv weights, 1.9 M conv MACs) is \
            inconsistent with its own per-layer counts (156 + 2416 weights, \
            117 600 + 240 000 multiplications); our column matches the per-layer \
            counts. The VGG row lists 13 conv layers — the canonical VGG-16 the \
            weight/MAC totals imply; the paper says \"16\".\n",
    }
}

/// E3 — Table II: FPGA resource utilization, classic vs pre-implemented.
pub fn table2_resources(ctx: &mut Ctx) -> Section {
    let device = device();
    let totals = device.totals();
    let fmt_util = |v: u64, cap: u64| format!("{} ({:.2}%)", v, 100.0 * v as f64 / cap as f64);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    {
        let run = ctx.lenet();
        data.push((
            ["LeNet (classic)", "LeNet (pre-impl)"],
            run.baseline.compile.resources,
            run.preimpl_design.resources(),
        ));
    }
    {
        let run = ctx.vgg();
        data.push((
            ["VGG-16 (classic)", "VGG-16 (pre-impl)"],
            run.baseline.compile.resources,
            run.preimpl_design.resources(),
        ));
    }
    for (labels, base, pre) in data {
        for (label, r) in [(labels[0], base), (labels[1], pre)] {
            let reference = paper::TABLE2
                .iter()
                .find(|p| p.row == label)
                .expect("label matches reference");
            rows.push(vec![
                label.to_string(),
                format!("{} [{}]", fmt_util(r.luts, totals.luts), reference.luts),
                format!("{} [{}]", fmt_util(r.ffs, totals.ffs), reference.ffs),
                format!("{} [{}]", fmt_util(r.brams, totals.brams), reference.brams),
                format!("{} [{}]", fmt_util(r.dsps, totals.dsps), reference.dsps),
            ]);
        }
    }
    Section {
        id: "Table II".to_string(),
        title: "Resource utilization — measured [paper]".to_string(),
        body: md_table(
            &["design", "CLB LUTs", "CLB registers", "BRAMs", "DSPs"],
            &rows,
        ) + "\nShape check: the pre-implemented build of each network uses fewer \
               LUTs/FFs/BRAMs than the classic build at equal DSPs — the paper's \
               §V-C observation. Absolute DSP counts land on the paper's (~2k for \
               VGG); utilization percentages read lower because our modeled device \
               carries more capacity (see DESIGN.md).\n",
    }
}

/// E4 — Fig. 6: design-generation time and the stitching share.
pub fn fig6_productivity(ctx: &mut Ctx) -> Section {
    let mut rows = Vec::new();
    let mut data = Vec::new();
    {
        let run = ctx.lenet();
        data.push((
            run.network.name.clone(),
            run.baseline.total_time(),
            run.preimpl.total_time(),
            run.preimpl.stitch_share(),
            run.db_build_time,
        ));
    }
    {
        let run = ctx.vgg();
        data.push((
            run.network.name.clone(),
            run.baseline.total_time(),
            run.preimpl.total_time(),
            run.preimpl.stitch_share(),
            run.db_build_time,
        ));
    }
    for ((name, base_t, pre_t, stitch_share, db_time), reference) in
        data.into_iter().zip(&paper::FIG6)
    {
        let gain = 100.0 * (1.0 - pre_t.as_secs_f64() / base_t.as_secs_f64());
        rows.push(vec![
            name,
            fmt_s(base_t),
            fmt_s(pre_t),
            format!("{gain:.0}% ({:.0}%)", reference.productivity_gain_pct),
            format!(
                "{:.0}% ({:.0}%)",
                stitch_share * 100.0,
                reference.stitch_share_pct
            ),
            fmt_s(db_time),
        ]);
    }
    Section {
        id: "Fig. 6".to_string(),
        title: "Design generation time — measured (paper in parentheses)".to_string(),
        body: md_table(
            &[
                "network",
                "baseline impl time",
                "pre-impl generation",
                "productivity gain",
                "stitch share",
                "one-time DB build",
            ],
            &rows,
        ) + "\nThe productivity gain exceeds the paper's 61–69% because our \
             incremental router genuinely touches only the stitched nets, while \
             Vivado's final route re-processes the whole checkpoint. The one-time \
             component-database build (the paper's semi-manual function \
             optimization) is shown separately, as the paper also excludes it.\n"
            + &format!(
                "\nConvergence (from the telemetry stream of these runs): {}. \
                 Re-run any pi-bench binary with `--trace <path>` to dump the \
                 full JSON-Lines stream.\n",
                ctx.convergence()
            ),
    }
}

/// E5 — Table III: LeNet performance exploration.
pub fn table3_lenet(ctx: &mut Ctx) -> Section {
    let run = ctx.lenet();
    let mut rows = Vec::new();

    // Full-network row: every component at its own exploration clock.
    let total_ns: f64 = run
        .component_reports
        .iter()
        .map(|r| cycles::latency_ns(r.latency_cycles, r.fmax_mhz))
        .sum();
    let min_fmax = run
        .component_reports
        .iter()
        .map(|r| r.fmax_mhz)
        .fold(f64::INFINITY, f64::min);
    rows.push(vec![
        "Full Network".to_string(),
        format!("{:.0} ({:.0})", min_fmax, paper::TABLE3[0].freq_mhz),
        format!("{:.1} ({:.1})", total_ns, paper::TABLE3[0].latency_ns),
    ]);
    for (r, reference) in run.component_reports.iter().zip(&paper::TABLE3[1..7]) {
        rows.push(vec![
            r.name.clone(),
            format!("{:.0} ({:.0})", r.fmax_mhz, reference.freq_mhz),
            format!(
                "{:.1} ({:.1})",
                cycles::latency_ns(r.latency_cycles, r.fmax_mhz),
                reference.latency_ns
            ),
        ]);
    }
    let ours = &run.preimpl;
    rows.push(vec![
        "Our work (assembled)".to_string(),
        format!(
            "{:.0} ({:.0})",
            ours.compile.timing.fmax_mhz,
            paper::TABLE3[7].freq_mhz
        ),
        format!(
            "{:.1} ({:.1})",
            ours.latency.pipeline_ns,
            paper::TABLE3[7].latency_ns
        ),
    ]);
    let base = &run.baseline;
    rows.push(vec![
        "Baseline (monolithic)".to_string(),
        format!("{:.0} (n/a)", base.compile.timing.fmax_mhz),
        format!("{:.1} (n/a)", base.latency.pipeline_ns),
    ]);
    let ratio = ours.compile.timing.fmax_mhz / base.compile.timing.fmax_mhz;
    Section {
        id: "Table III".to_string(),
        title: "LeNet performance exploration — measured (paper in parentheses)".to_string(),
        body: md_table(
            &["component", "frequency MHz", "pipeline latency ns"],
            &rows,
        ) + &format!(
            "\nAssembled-vs-baseline Fmax ratio: {ratio:.2}x (paper claims \
                 1.75x). Shape checks: conv2 is slower than conv1 (more input \
                 channels, deeper accumulation), pools are the fastest \
                 components, and the assembled frequency is bounded by the \
                 slowest component.\n"
        ),
    }
}

/// E6 — Fig. 7: VGG performance exploration.
pub fn fig7_vgg(ctx: &mut Ctx) -> Section {
    let run = ctx.vgg();
    let mut rows = Vec::new();
    let base = &run.baseline;
    rows.push(vec![
        "VGG (baseline)".to_string(),
        format!(
            "{:.0} ({:.0})",
            base.compile.timing.fmax_mhz,
            paper::FIG7[0].freq_mhz
        ),
        format!(
            "{:.2} ({:.2})",
            base.latency.frame_ms,
            paper::FIG7[0].latency_ms
        ),
    ]);
    for (i, (r, lat)) in run
        .component_reports
        .iter()
        .zip(&run.preimpl.latency.per_component)
        .enumerate()
    {
        let reference = paper::FIG7.get(i + 1);
        let ms = cycles::latency_ms(lat.frame_cycles, r.fmax_mhz);
        rows.push(vec![
            format!("Component {} ({})", i + 1, r.name),
            match reference {
                Some(p) => format!("{:.0} ({:.0})", r.fmax_mhz, p.freq_mhz),
                None => format!("{:.0}", r.fmax_mhz),
            },
            match reference {
                Some(p) => format!("{:.3} ({:.3})", ms, p.latency_ms),
                None => format!("{ms:.3}"),
            },
        ]);
    }
    let ours = &run.preimpl;
    let last = paper::FIG7.last().expect("nonempty");
    rows.push(vec![
        "Our work (assembled)".to_string(),
        format!("{:.0} ({:.0})", ours.compile.timing.fmax_mhz, last.freq_mhz),
        format!("{:.2} ({:.2})", ours.latency.frame_ms, last.latency_ms),
    ]);
    let ratio = ours.compile.timing.fmax_mhz / base.compile.timing.fmax_mhz;
    Section {
        id: "Fig. 7".to_string(),
        title: "VGG performance exploration — measured (paper in parentheses)".to_string(),
        body: md_table(&["row", "frequency MHz", "frame latency ms"], &rows)
            + &format!(
                "\nAssembled-vs-baseline Fmax ratio: {ratio:.2}x (paper: 1.22x). \
                 Our component count is 13 (5 conv blocks + 5 pools + 3 FC); the \
                 paper labels 12 — its pool5 appears folded into component 9. \
                 Heavy conv blocks are the slowest components and pools the \
                 fastest, matching the alternating pattern of the paper's \
                 figure.\n"
            ),
    }
}

/// E7 — Table IV: comparison with state-of-the-art accelerators.
pub fn table4_sota(ctx: &mut Ctx) -> Section {
    let device = device();
    let run = ctx.vgg();
    let mut rows: Vec<Vec<String>> = paper::TABLE4
        .iter()
        .map(|p| {
            vec![
                p.work.to_string(),
                p.fpga.to_string(),
                p.freq_mhz.to_string(),
                p.precision.to_string(),
                p.dsp_util.to_string(),
                p.latency_ms.to_string(),
            ]
        })
        .collect();
    let dsp_util = 100.0 * run.preimpl_design.resources().dsps as f64 / device.totals().dsps as f64;
    rows.push(vec![
        "This repo (measured)".to_string(),
        device.name().to_string(),
        format!("{:.0}", run.preimpl.compile.timing.fmax_mhz),
        "fixed 16".to_string(),
        format!("{dsp_util:.0}%"),
        format!("{:.2}", run.preimpl.latency.frame_ms),
    ]);
    Section {
        id: "Table IV".to_string(),
        title: "VGG-16 vs state-of-the-art (literature rows are citations)".to_string(),
        body: md_table(
            &[
                "work",
                "FPGA",
                "Fmax MHz",
                "precision",
                "DSP util",
                "latency ms",
            ],
            &rows,
        ) + "\nAs in the paper, the cited rows come from different devices and \
             setups and are qualitative reference only. The paper's headline — \
             highest clock frequency among the compared designs, latency in the \
             tens of milliseconds — holds for our reproduction.\n",
    }
}

/// E8 — Fig. 8: the assembled VGG floorplan with labelled components.
pub fn fig8_floorplan(ctx: &mut Ctx) -> Section {
    let device = device();
    let run = ctx.vgg();
    let sketch = pi_pnr::report::floorplan_sketch(&run.preimpl_design, &device, 96);
    Section {
        id: "Fig. 8".to_string(),
        title: "VGG-16 assembled floorplan (component pblocks on the device)".to_string(),
        body: format!(
            "```text\n{sketch}```\nVertical bars are the I/O columns (fabric \
             discontinuities); letters are component pblocks placed by the \
             Eq. 1-3 component placer. Compare with the paper's Fig. 8 chip \
             plot of labelled VGG components.\n"
        ),
    }
}

/// A3 — extension: the CLE architecture class (paper §III, after Shen et
/// al.): Q shared convolutional layer engines, one checkpoint replicated Q
/// times — the purest form of the flow's reuse story.
pub fn ablation_cle() -> Section {
    use pi_synth::cle::{cle_frame_cycles, partition_conv_layers, synth_cle};
    let device = device();
    let network = pi_cnn::models::vgg16();
    let opts = pi_synth::SynthOptions::vgg_like();
    let mut rows = Vec::new();
    for q in [1usize, 2, 4] {
        let partition = partition_conv_layers(&network, q).expect("partitions");
        // Size one CLE for the heaviest group: every group then fits, and
        // all Q engines are instances of the same checkpoint.
        let heaviest = partition
            .macs
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| **m)
            .map(|(i, _)| i)
            .expect("q >= 1");
        let mut module =
            synth_cle(&network, &partition.groups[heaviest], &opts).expect("synthesizes");
        let per_cle = module.resources();

        // Pre-implement once.
        let t0 = Instant::now();
        let pblock = size_pblock(&per_cle, &device, 0.7).expect("pblock fits");
        module.pblock = Some(pblock);
        plan_partpins(&mut module, &pblock).expect("partpins anchor the ports");
        place_module(
            &mut module,
            &device,
            &PlaceOptions {
                seed: 1,
                effort: 2.0,
                region: Some(pblock),
            },
        )
        .expect("places");
        plan_partpins(&mut module, &pblock).expect("partpins refine");
        let _ = route_module(&mut module, &device, &RouteOptions::default()).expect("routes");
        module.lock();
        let impl_time = t0.elapsed();
        let cp = Checkpoint {
            meta: CheckpointMeta {
                signature: format!("cle_q{q}"),
                fmax_mhz: sta_module(&module, &device, None).expect("sta").fmax_mhz,
                resources: per_cle,
                pblock,
                device: device.name().to_string(),
                latency_cycles: 0,
            },
            module,
        };

        // Replicate Q times and stitch the frame pipeline.
        let t1 = Instant::now();
        let refs: Vec<&Checkpoint> = std::iter::repeat_n(&cp, q).collect();
        let edges: Vec<(usize, usize)> = (0..q.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        let placement = pi_stitch::place_components(
            &refs,
            &edges,
            &device,
            &pi_stitch::ComponentPlacerOptions::default(),
        )
        .expect("places components");
        let mut design = Design::new(format!("cle_q{q}"), device.name(), DesignKind::Assembled);
        for (i, anchor) in placement.anchors.iter().enumerate() {
            let m = pi_stitch::relocate_to(&cp, &device, *anchor).expect("relocates");
            design.add_instance(format!("cle{i}"), m);
        }
        for &(a, b) in &edges {
            let (pa, _) = design
                .instance(pi_netlist::InstId(a as u32))
                .module
                .port_by_name("dout")
                .expect("port");
            let (pb, _) = design
                .instance(pi_netlist::InstId(b as u32))
                .module
                .port_by_name("din")
                .expect("port");
            design
                .connect_top(
                    format!("cle{a}_to_{b}"),
                    (pi_netlist::InstId(a as u32), pa),
                    vec![(pi_netlist::InstId(b as u32), pb)],
                    16,
                )
                .expect("stitches");
        }
        let _ = pi_flow::pipeline_top_nets(&mut design);
        let report =
            route_assembled(&mut design, &device, &RouteOptions::default()).expect("routes");
        let gen_time = t1.elapsed();

        // Frame rate: groups pipeline across CLEs, so the bottleneck group
        // sets the interval.
        let bottleneck = partition
            .groups
            .iter()
            .map(|g| cle_frame_cycles(&network, g, per_cle.dsps).expect("cycles"))
            .max()
            .unwrap_or(0);
        let interval_ms = pi_cnn::cycles::latency_ms(bottleneck, report.timing.fmax_mhz);
        rows.push(vec![
            format!("Q = {q}"),
            per_cle.dsps.to_string(),
            (per_cle.luts * q as u64).to_string(),
            format!("{:.2}", partition.imbalance()),
            format!("{:.0}", report.timing.fmax_mhz),
            format!("{interval_ms:.1}"),
            fmt_s(impl_time),
            fmt_s(gen_time),
        ]);
    }
    Section {
        id: "Extension A3".to_string(),
        title: "CLE architecture class: Q replicated engines (VGG-16 conv layers)".to_string(),
        body: md_table(
            &[
                "config",
                "DSPs/CLE",
                "total LUTs",
                "LPT imbalance",
                "assembled MHz",
                "frame interval ms",
                "one-time impl",
                "generation",
            ],
            &rows,
        ) + "\nAll Q engines come from one checkpoint: implementation cost is \
             paid once regardless of Q, and generation stays in milliseconds — \
             the replication scenario §III says makes SIMD-class accelerators \
             \"suitable candidates for RapidWright implementation\". More CLEs \
             buy throughput at linear area cost until the fixed engine size \
             (set by the heaviest group) stops shrinking.\n",
    }
}

/// A1 — ablation over the function-optimization design considerations the
/// paper lists in §IV-A (port planning, pblock tightness, DSE width).
pub fn ablation_flow_options() -> Section {
    let device = device();
    let network = pi_cnn::models::lenet5();
    let lenet_cfg = || FlowConfig::new().with_synth(pi_synth::SynthOptions::lenet_like());
    let variants: Vec<(&str, FlowConfig)> = vec![
        (
            "default (planned ports, tight pblocks, 3 seeds)",
            lenet_cfg(),
        ),
        ("no port planning", lenet_cfg().with_plan_partpins(false)),
        (
            "loose pblocks (25% target utilization)",
            lenet_cfg().with_pblock_utilization(0.25),
        ),
        ("single placement seed", lenet_cfg().with_seeds([1])),
    ];
    let mut rows = Vec::new();
    for (label, cfg) in variants {
        let (db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
        let min_fmax = reports
            .iter()
            .map(|r| r.fmax_mhz)
            .fold(f64::INFINITY, f64::min);
        let result = run_pre_implemented_flow(&network, &db, &device, &cfg);
        match result {
            Ok((_, report)) => rows.push(vec![
                label.to_string(),
                format!("{min_fmax:.0}"),
                format!("{:.0}", report.compile.timing.fmax_mhz),
                fmt_s(report.total_time()),
            ]),
            Err(e) => rows.push(vec![
                label.to_string(),
                format!("{min_fmax:.0}"),
                format!("failed: {e}"),
                "-".to_string(),
            ]),
        }
    }
    Section {
        id: "Ablation A1".to_string(),
        title: "Function-optimization options (LeNet-5)".to_string(),
        body: md_table(
            &[
                "variant",
                "slowest component MHz",
                "assembled MHz",
                "generation time",
            ],
            &rows,
        ) + "\nUnplanned ports leave partition pins wherever the pblock put \
             them, so the stitched boundary wires lengthen — the paper's \
             warning about strategic port planning. Loose pblocks waste area \
             and relocation flexibility for little or no frequency benefit. \
             The seed sweep is the paper's performance-exploration loop: more \
             seeds never hurt.\n",
    }
}

/// A2 — ablation over the component placer's Eq. 1–3 parameters.
pub fn ablation_placement(ctx: &mut Ctx) -> Section {
    let device = device();
    let (network, db): (pi_cnn::Network, ComponentDb) = {
        let run = ctx.lenet();
        (run.network.clone(), run.db.clone())
    };
    let variants: Vec<(&str, ComponentPlacerOptions)> = vec![
        ("default", ComponentPlacerOptions::default()),
        (
            "no congestion term (Eq. 2-3 off)",
            ComponentPlacerOptions {
                congestion_weight: 0.0,
                ..Default::default()
            },
        ),
        (
            "tight threshold (30 tiles)",
            ComponentPlacerOptions {
                timing_threshold: 30.0,
                max_retries: 8,
                ..Default::default()
            },
        ),
        (
            "no retry loop",
            ComponentPlacerOptions {
                max_retries: 0,
                ..Default::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, placer) in variants {
        let cfg = FlowConfig::new()
            .with_granularity(Granularity::Layer)
            .with_placer(placer)
            .with_obs(ctx.obs().clone());
        match run_pre_implemented_flow(&network, &db, &device, &cfg) {
            Ok((_, report)) => rows.push(vec![
                label.to_string(),
                format!("{:.0}", report.compose.placement.timing_cost),
                format!("{:.2}", report.compose.placement.congestion_cost),
                report.compose.placement.retries.to_string(),
                format!("{:.0}", report.compile.timing.fmax_mhz),
            ]),
            Err(e) => rows.push(vec![
                label.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("failed: {e}"),
            ]),
        }
    }
    Section {
        id: "Ablation A2".to_string(),
        title: "Component placement cost model (Eq. 1-3, LeNet-5)".to_string(),
        body: md_table(
            &[
                "variant",
                "Eq.1 timing cost (tiles)",
                "Eq.3 congestion cost",
                "retries",
                "assembled MHz",
            ],
            &rows,
        ),
    }
}

/// A4 — generalization beyond the paper's two benchmarks: AlexNet-style
/// network (11×11 stride-4 conv, overlapping 3×3 pooling) through both
/// flows.
pub fn ext_alexnet() -> Section {
    let device = device();
    let network = pi_cnn::models::alexnet_like();
    let cfg = FlowConfig::new()
        .with_synth(pi_synth::SynthOptions::vgg_like())
        .with_seeds([1, 2]);
    let t0 = Instant::now();
    let (db, reports) = build_component_db(&network, &device, &cfg).expect("db builds");
    let db_time = t0.elapsed();
    let (design, pre) =
        run_pre_implemented_flow(&network, &db, &device, &cfg).expect("flow succeeds");
    let (_, base) = pi_flow::run_baseline_flow(&network, &device, &cfg).expect("baseline");

    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.name.clone(),
            format!("{:.0}", r.fmax_mhz),
            r.resources.luts.to_string(),
            r.resources.dsps.to_string(),
        ]);
    }
    let comparison = pi_flow::FlowComparison::new(&network.name, &base, &pre);
    Section {
        id: "Extension A4".to_string(),
        title: "Generalization: AlexNet-style network through both flows".to_string(),
        body: md_table(&["component", "Fmax MHz", "LUTs", "DSPs"], &rows)
            + &format!(
                "\n```text\n{comparison}\n```\nComponent database built once in {:.1} s; {} instances assembled and routed ({} stitched nets), design fully routed: {}. The flow generalizes beyond the paper's two benchmarks with no code changes — only a new architecture definition.\n",
                db_time.as_secs_f64(),
                design.instances().len(),
                design.top_nets().len(),
                design.fully_routed(),
            ),
    }
}

/// Every experiment, in paper order.
pub fn all(ctx: &mut Ctx) -> Vec<Section> {
    vec![
        fig1_motivation(),
        table1_networks(),
        table2_resources(ctx),
        fig6_productivity(ctx),
        table3_lenet(ctx),
        fig7_vgg(ctx),
        table4_sota(ctx),
        fig8_floorplan(ctx),
        ablation_flow_options(),
        ablation_placement(ctx),
        ablation_cle(),
        ext_alexnet(),
    ]
}
