//! `PL04xx` — streaming dataflow analysis of a stitched pipeline.
//!
//! The stitcher turns a CNN into a chain of pre-implemented components
//! linked by stream FIFOs. On linear chains any FIFO depth works: the
//! producer fills, the consumer drains, backpressure throttles. On
//! reconvergent topologies (ResNet skips joining at an Eltwise) the early
//! operand's FIFO must absorb the *path latency skew* — every token the
//! short path produces while the long path is still filling its pipeline.
//! If the skew exceeds the link capacity, backpressure propagates to the
//! shared ancestor, the long path starves, and the pipeline deadlocks: a
//! cyclic wait no amount of runtime can clear.
//!
//! The analysis propagates first-token *arrival intervals* (cycles from
//! frame start) over the component graph with the worklist fixpoint core
//! in [`crate::engine`]: a component's arrival is the synchronizing `sup`
//! of each predecessor's arrival offset by that predecessor's pipeline
//! depth ([`pi_cnn::cycles::component_pipeline_depth`]). Token rates come
//! from the folding model: a component emitting `T` tokens over `F` frame
//! cycles ([`pi_cnn::cycles::frame_cycles`] with the analytic DSP count)
//! produces at `T/F` tokens per cycle, so an operand waiting `S` cycles
//! buffers `ceil(S·T/F)` tokens — plus one in-flight slot — giving the
//! per-edge occupancy bound and minimum FIFO depth. Per-edge token counts
//! are also balance-checked (SDF consistency: producer tokens per frame
//! must equal what the consumer port expects).
//!
//! Findings: `PL0400` (join skew unbuffereable within capacity — the
//! deadlock), `PL0401` (any link whose computed minimum exceeds capacity),
//! `PL0402` (token-rate imbalance), `PL0403` (fixpoint widened to top
//! before stabilizing — cyclic graph, nothing proven). When the graph is
//! too broken for the rate model (cycles, shape failures) the analysis
//! falls back to a unit-rate node-level graph so it still terminates and
//! still reports divergence instead of crashing or silently passing.

use crate::diag::Diagnostic;
use crate::engine::{fixpoint_intervals, Interval};
use pi_cnn::graph::{Granularity, Network};
use pi_cnn::{cycles, CnnError};
use std::collections::BTreeMap;

/// One analyzed inter-component stream link.
#[derive(Debug, Clone)]
pub struct EdgeFlow {
    /// Producer component index (order of `Network::components`).
    pub source: usize,
    /// Consumer component index.
    pub sink: usize,
    pub source_name: String,
    pub sink_name: String,
    /// Consumer port the stitcher assigns (`din`, or `din2` for a join's
    /// second operand).
    pub port: &'static str,
    /// Tokens the producer emits per frame (its output elements).
    pub tokens_per_frame: u64,
    /// Tokens the consumer port expects per frame.
    pub expected_tokens: u64,
    /// Synchronization wait this operand sees at the consumer: the gap
    /// between its own earliest arrival and the join's latest operand.
    pub skew_cycles: u64,
    /// Token occupancy bounds of the link FIFO during pipeline fill.
    pub occupancy: Interval,
    /// Minimum FIFO depth that absorbs the skew without backpressure.
    pub min_depth: u64,
    /// True when the consumer synchronizes two operand streams — the
    /// reconvergent case where an undersized FIFO deadlocks rather than
    /// merely throttles.
    pub reconvergent: bool,
}

/// The analysis result: per-link flows plus fixpoint bookkeeping. This is
/// what `FlowConfig::with_fifo_autosize` feeds back into stitching and
/// what the `lint` bench bin measures.
#[derive(Debug, Clone)]
pub struct DataflowAnalysis {
    pub network_name: String,
    /// Actors the fixpoint ran over (components, or nodes in fallback).
    pub actors: usize,
    pub edges: Vec<EdgeFlow>,
    /// Node evaluations the worklist performed before stabilizing.
    pub iterations: u64,
    /// The fixpoint widened to top — bounds below are not trustworthy.
    pub diverged: bool,
    /// The rate model could not run (graph cycle or shape failure); the
    /// analysis degraded to a unit-rate node-level graph. The message
    /// explains why.
    pub fallback: Option<String>,
}

impl DataflowAnalysis {
    /// Computed minimum depth per component edge, for the stitcher.
    pub fn depth_map(&self) -> BTreeMap<(usize, usize), u64> {
        self.edges
            .iter()
            .map(|e| ((e.source, e.sink), e.min_depth))
            .collect()
    }

    /// Largest computed minimum depth over all links (1 when no links).
    pub fn max_min_depth(&self) -> u64 {
        self.edges.iter().map(|e| e.min_depth).max().unwrap_or(1)
    }

    /// Evaluate the flows against a link capacity. With `autosize` the
    /// capacity of each link is its own computed minimum — the state the
    /// flow builds under `with_fifo_autosize` — so `PL0400`/`PL0401`
    /// cannot fire and only rate imbalance and divergence remain.
    pub fn lint(&self, link_fifo_depth: u64, autosize: bool) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let net = &self.network_name;
        if let Some(why) = &self.fallback {
            out.push(Diagnostic::new(
                "PL0403",
                format!("network:{net}/dataflow"),
                format!(
                    "rate model unavailable ({why}); fell back to the \
                     unit-rate node graph — FIFO bounds not proven"
                ),
            ));
        }
        if self.diverged {
            out.push(Diagnostic::new(
                "PL0403",
                format!("network:{net}/dataflow"),
                format!(
                    "fixpoint widened to top after {} iterations over {} \
                     actors (cyclic dataflow?): occupancy bounds and \
                     deadlock-freedom could not be proven",
                    self.iterations, self.actors
                ),
            ));
        }
        if self.fallback.is_some() {
            // Unit-rate bounds are placeholders; reporting depths computed
            // from them would be noise on top of the PL0403 above.
            return out;
        }
        for e in &self.edges {
            if e.tokens_per_frame != e.expected_tokens {
                out.push(Diagnostic::new(
                    "PL0402",
                    format!("network:{net}/link:{}->{}", e.source_name, e.sink_name),
                    format!(
                        "rate mismatch on `{}`: `{}` produces {} tokens per \
                         frame, `{}` consumes {}",
                        e.port, e.source_name, e.tokens_per_frame, e.sink_name, e.expected_tokens
                    ),
                ));
            }
            if e.occupancy.is_top() {
                continue; // divergence already reported as PL0403
            }
            let capacity = if autosize {
                e.min_depth.max(1)
            } else {
                link_fifo_depth
            };
            if e.min_depth > capacity {
                out.push(Diagnostic::new(
                    "PL0401",
                    format!("network:{net}/link:{}->{}", e.source_name, e.sink_name),
                    format!(
                        "link FIFO undersized: occupancy reaches {} tokens \
                         during pipeline fill, minimum depth {} exceeds \
                         capacity {capacity}",
                        e.occupancy.hi, e.min_depth
                    ),
                ));
                if e.reconvergent {
                    out.push(Diagnostic::new(
                        "PL0400",
                        format!("network:{net}/component:{}", e.sink_name),
                        format!(
                            "potential deadlock at join `{}`: operand from \
                             `{}` must buffer {} cycles of path skew \
                             (≥ {} tokens) but the link FIFO holds \
                             {capacity} — backpressure reaches the shared \
                             producer and both paths stall",
                            e.sink_name, e.source_name, e.skew_cycles, e.min_depth
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Run the dataflow analysis over a network at the given granularity.
pub fn analyze(network: &Network, granularity: Granularity) -> DataflowAnalysis {
    match analyze_components(network, granularity) {
        Ok(a) => a,
        Err(e) => analyze_fallback(network, e),
    }
}

/// The precise path: actors are the fused components the stitcher will
/// instantiate, rates come from the shape/folding model.
fn analyze_components(
    network: &Network,
    granularity: Granularity,
) -> Result<DataflowAnalysis, CnnError> {
    let comps = network.components(granularity)?;
    let n = comps.len();

    // Per-component rate model.
    let mut depth = Vec::with_capacity(n);
    let mut frame = Vec::with_capacity(n);
    let mut tokens = Vec::with_capacity(n);
    for c in &comps {
        depth.push(cycles::component_pipeline_depth(network, c)?);
        let macs = cycles::component_macs(network, c)?;
        let dsps = pi_synth::component::component_dsp_estimate(network, c)
            .map_err(|e| CnnError::ShapeMismatch(e.to_string()))?;
        let out_tokens = c.output_shape.elements().max(1);
        frame.push(cycles::frame_cycles(macs, out_tokens, dsps).max(1));
        tokens.push(out_tokens);
    }

    // Component edges, exactly as `pi_stitch::compose` derives them:
    // network-edge order, deduplicated.
    let mut node_to_comp = BTreeMap::new();
    for (ci, comp) in comps.iter().enumerate() {
        for node in &comp.nodes {
            node_to_comp.insert(*node, ci);
        }
    }
    let mut comp_edges: Vec<(usize, usize)> = Vec::new();
    for (a, b) in network.edges() {
        match (node_to_comp.get(a), node_to_comp.get(b)) {
            (Some(&ca), Some(&cb)) if ca != cb && !comp_edges.contains(&(ca, cb)) => {
                comp_edges.push((ca, cb));
            }
            _ => {}
        }
    }

    let (preds, succs) = adjacency(n, &comp_edges);
    let seeds: Vec<(usize, Interval)> = (0..n)
        .filter(|&i| preds[i].is_empty())
        .map(|i| (i, Interval::point(0)))
        .collect();
    let outcome = fixpoint_intervals(&preds, &succs, &seeds, |p, _n, v| v.offset(depth[p]));

    // Per-edge flows. An edge's operand "arrives" at the consumer after
    // the producer's pipeline: A_e = arrival(src) + depth(src). A
    // synchronizing consumer fires at the latest A_e; everything the
    // early operand produces until then queues in its link FIFO.
    let mut edges = Vec::with_capacity(comp_edges.len());
    for &(ca, cb) in &comp_edges {
        let incoming: Vec<usize> = incoming_sorted(&comp_edges, cb);
        let port = match incoming.iter().position(|&a| a == ca) {
            Some(0) => "din",
            _ => "din2",
        };
        let arrivals: Vec<Interval> = incoming
            .iter()
            .filter_map(|&a| outcome.values[a].map(|v| v.offset(depth[a])))
            .collect();
        let latest = arrivals.iter().map(|a| a.hi).max().unwrap_or(0);
        let this = outcome.values[ca].map(|v| v.offset(depth[ca]));
        let (skew, occupancy) = match this {
            Some(a) if a.is_top() || latest == Interval::TOP_HI => {
                (Interval::TOP_HI, Interval::new_top())
            }
            Some(a) => {
                let skew = latest.saturating_sub(a.lo);
                // Tokens emitted over `skew` producer cycles, rounded up.
                let buffered = (skew.saturating_mul(tokens[ca])).div_ceil(frame[ca]);
                (
                    skew,
                    Interval {
                        lo: 0,
                        hi: buffered,
                    },
                )
            }
            // Producer unreachable from the input: orphan territory
            // (PL0202); nothing flows, nothing queues.
            None => (0, Interval::point(0)),
        };
        let min_depth = if occupancy.is_top() {
            Interval::TOP_HI
        } else {
            occupancy.hi + 1 // +1: the in-flight token at the consumer
        };
        edges.push(EdgeFlow {
            source: ca,
            sink: cb,
            source_name: comps[ca].name.clone(),
            sink_name: comps[cb].name.clone(),
            port,
            tokens_per_frame: tokens[ca],
            expected_tokens: comps[cb].input_shape.elements(),
            skew_cycles: skew,
            occupancy,
            min_depth,
            reconvergent: incoming.len() >= 2,
        });
    }

    Ok(DataflowAnalysis {
        network_name: network.name.clone(),
        actors: n,
        edges,
        iterations: outcome.iterations,
        diverged: outcome.diverged,
        fallback: None,
    })
}

/// The degraded path: when components/shapes cannot be derived (the graph
/// has a cycle, a layer rejects its shape) run the fixpoint over the raw
/// node graph with unit depths and rates. Guarantees termination and
/// turns a structural cycle into a widening-to-top divergence report
/// instead of an analysis crash.
fn analyze_fallback(network: &Network, why: CnnError) -> DataflowAnalysis {
    let n = network.nodes().len();
    let node_edges: Vec<(usize, usize)> = network
        .edges()
        .iter()
        .map(|(a, b)| (a.index(), b.index()))
        .collect();
    let (preds, succs) = adjacency(n, &node_edges);
    let seeds: Vec<(usize, Interval)> = (0..n)
        .filter(|&i| preds[i].is_empty())
        .map(|i| (i, Interval::point(0)))
        .collect();
    let outcome = fixpoint_intervals(&preds, &succs, &seeds, |_p, _n, v| v.offset(1));
    DataflowAnalysis {
        network_name: network.name.clone(),
        actors: n,
        edges: Vec::new(),
        iterations: outcome.iterations,
        diverged: outcome.diverged,
        fallback: Some(why.to_string()),
    }
}

/// Pure depth rule, exposed for the monotonicity property tests: the
/// minimum FIFO depth for an operand waiting `skew_cycles` on a producer
/// emitting `tokens_per_frame` tokens over `frame_cycles` cycles.
pub fn min_depth_for_skew(skew_cycles: u64, tokens_per_frame: u64, frame_cycles: u64) -> u64 {
    skew_cycles
        .saturating_mul(tokens_per_frame)
        .div_ceil(frame_cycles.max(1))
        + 1
}

impl Interval {
    fn new_top() -> Self {
        Interval {
            lo: 0,
            hi: Interval::TOP_HI,
        }
    }
}

fn adjacency(n: usize, edges: &[(usize, usize)]) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut preds = vec![Vec::new(); n];
    let mut succs = vec![Vec::new(); n];
    for &(a, b) in edges {
        if a < n && b < n {
            preds[b].push(a);
            succs[a].push(b);
        }
    }
    (preds, succs)
}

/// Incoming edge sources of component `cb`, sorted — the stitcher's
/// deterministic `din`/`din2` port assignment.
fn incoming_sorted(edges: &[(usize, usize)], cb: usize) -> Vec<usize> {
    let mut incoming: Vec<usize> = edges
        .iter()
        .filter(|(_, b)| *b == cb)
        .map(|(a, _)| *a)
        .collect();
    incoming.sort_unstable();
    incoming
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;

    #[test]
    fn linear_chains_have_unit_depths() {
        let a = analyze(&models::lenet5(), Granularity::Layer);
        assert!(a.fallback.is_none() && !a.diverged, "{a:?}");
        assert!(!a.edges.is_empty());
        for e in &a.edges {
            assert_eq!(e.min_depth, 1, "{e:?}");
            assert_eq!(e.tokens_per_frame, e.expected_tokens, "{e:?}");
            assert!(!e.reconvergent);
        }
        assert!(a
            .lint(pi_netlist::DEFAULT_LINK_FIFO_DEPTH, false)
            .is_empty());
    }

    #[test]
    fn resnet_skip_edges_need_skew_buffering_within_default_capacity() {
        let a = analyze(&models::resnet_small(), Granularity::Layer);
        assert!(a.fallback.is_none() && !a.diverged, "{a:?}");
        let skips: Vec<&EdgeFlow> = a
            .edges
            .iter()
            .filter(|e| e.reconvergent && e.skew_cycles > 0)
            .collect();
        assert_eq!(skips.len(), 2, "two skip operands: {:?}", a.edges);
        for e in &skips {
            assert!(
                e.min_depth > 1 && e.min_depth <= pi_netlist::DEFAULT_LINK_FIFO_DEPTH,
                "{e:?}"
            );
        }
        assert!(a
            .lint(pi_netlist::DEFAULT_LINK_FIFO_DEPTH, false)
            .is_empty());
    }

    #[test]
    fn cyclic_graph_falls_back_and_reports_divergence() {
        use pi_cnn::layer::{Layer, Shape};
        let mut n = Network::new("cyclic");
        let input = n.add_node("input", Layer::Input(Shape::new(1, 8, 8)));
        let a = n.add_node("a", Layer::Relu);
        let b = n.add_node("b", Layer::Relu);
        n.add_edge(input, a);
        n.add_edge(a, b);
        n.add_edge(b, a);
        let out = analyze(&n, Granularity::Layer);
        assert!(out.fallback.is_some());
        assert!(out.diverged, "{out:?}");
        let diags = out.lint(64, false);
        assert!(diags.iter().any(|d| d.code == "PL0403"), "{diags:?}");
    }

    #[test]
    fn min_depth_rule_is_monotone_and_tight() {
        assert_eq!(min_depth_for_skew(0, 100, 10), 1);
        assert_eq!(min_depth_for_skew(10, 1, 1), 11);
        // One token per 4 cycles, 43-cycle wait: ceil(43/4)+1.
        assert_eq!(min_depth_for_skew(43, 1, 4), 12);
    }
}
