//! Diagnostics data model: lint codes, severities, levels, waivers and
//! the per-run [`LintConfig`].
//!
//! Every finding any pass can emit has a stable code in [`REGISTRY`]
//! (`PL01xx` netlist, `PL02xx` CNN dataflow graph, `PL03xx`
//! checkpoint/database/physical). Codes are append-only: renumbering
//! would silently invalidate waiver files and CI greps downstream.

use std::collections::BTreeMap;
use std::fmt;

/// How serious a rendered finding is. Derived from the effective
/// [`Level`] of the finding's code: `Deny` renders as an error, `Warn`
/// as a warning, `Allow` suppresses the finding entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not fail a lint gate unless `--deny-warnings`.
    Warning,
    /// Hard error; always fails the lint gate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Per-code policy knob, rustc-style: `allow` drops findings, `warn`
/// reports without failing, `deny` makes them errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Suppress findings with this code (still counted as "allowed").
    Allow,
    /// Report as a warning.
    Warn,
    /// Report as an error.
    Deny,
}

impl Level {
    /// Parse a CLI/config spelling.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

/// One registered lint: stable code, human name, default level and a
/// one-line summary for `pilint codes`.
#[derive(Debug, Clone, Copy)]
pub struct LintCode {
    /// Stable identifier, e.g. `PL0103`.
    pub code: &'static str,
    /// Kebab-case name, e.g. `floating-output`.
    pub name: &'static str,
    /// Level applied when the config has no override.
    pub default: Level,
    /// One-line description.
    pub summary: &'static str,
}

/// Every lint the engine can emit, ordered by code.
pub const REGISTRY: &[LintCode] = &[
    // ---- PL00xx: lint-configuration hygiene ----
    LintCode {
        code: "PL0001",
        name: "unused-waiver",
        default: Level::Warn,
        summary: "a waiver entry matched no finding in this run — the defect \
                  it was written for is gone (or the origin prefix is stale) \
                  and the waiver now only masks future regressions",
    },
    // ---- PL01xx: netlist structure ----
    LintCode {
        code: "PL0101",
        name: "multi-driven",
        default: Level::Deny,
        summary: "a module output port is sunk by more than one net, or an \
                  instance input port is driven by more than one top-level net",
    },
    LintCode {
        code: "PL0102",
        name: "dangling-input",
        default: Level::Warn,
        summary: "an input port drives no net inside the module",
    },
    LintCode {
        code: "PL0103",
        name: "floating-output",
        default: Level::Warn,
        summary: "an output port is driven by no net inside the module",
    },
    LintCode {
        code: "PL0104",
        name: "width-mismatch",
        default: Level::Deny,
        summary: "endpoint port widths disagree with each other or with the \
                  net that connects them",
    },
    LintCode {
        code: "PL0105",
        name: "combinational-loop",
        default: Level::Deny,
        summary: "a cycle through unregistered cells (Tarjan SCC over the \
                  combinational subgraph)",
    },
    LintCode {
        code: "PL0106",
        name: "unreachable-cells",
        default: Level::Warn,
        summary: "cells with no connectivity path to any module port \
                  (dead-logic elimination candidates)",
    },
    LintCode {
        code: "PL0107",
        name: "fanout-hotspot",
        default: Level::Warn,
        summary: "a net's endpoint count exceeds the configured fan-out \
                  threshold",
    },
    LintCode {
        code: "PL0140",
        name: "undecomposed-fanout",
        default: Level::Warn,
        summary: "a routed net's fan-out exceeds the Steiner-worthwhile \
                  threshold but its wirelength tracks the fan-out star, not \
                  the Steiner-tree estimate (routed without decomposition)",
    },
    LintCode {
        code: "PL0141",
        name: "uncriticalized-critical-net",
        default: Level::Warn,
        summary: "a routed design has negative-slack nets whose routes \
                  detour beyond the direct-path estimate (the router left \
                  timing-critical nets uncriticalized)",
    },
    // ---- PL015x: model-descriptor import (pi-model findings) ----
    LintCode {
        code: "PL0150",
        name: "unsupported-op",
        default: Level::Deny,
        summary: "a model descriptor uses an operator the flow cannot map \
                  (the message carries the nearest supported spelling)",
    },
    LintCode {
        code: "PL0151",
        name: "unfoldable-batchnorm",
        default: Level::Warn,
        summary: "a BatchNormalization does not exclusively follow a Conv, \
                  so it cannot fold into the conv weights and is treated as \
                  identity",
    },
    LintCode {
        code: "PL0152",
        name: "join-channel-mismatch",
        default: Level::Deny,
        summary: "an element-wise join merges streams with different channel \
                  counts",
    },
    LintCode {
        code: "PL0153",
        name: "model-malformed",
        default: Level::Deny,
        summary: "any other malformed-descriptor defect: syntax error, \
                  dangling edge, duplicate name, missing attribute",
    },
    // ---- PL016x: telemetry trace streams (pi-obs JSONL) ----
    LintCode {
        code: "PL0160",
        name: "trace-span-imbalance",
        default: Level::Deny,
        summary: "a telemetry stream's span tree is unbalanced: a span_end \
                  with no matching open span, or a span still open at end of \
                  stream",
    },
    LintCode {
        code: "PL0161",
        name: "trace-seq-regression",
        default: Level::Deny,
        summary: "event sequence numbers are not strictly increasing — the \
                  stream was reordered, truncated-and-respliced, or merged \
                  without renumbering",
    },
    // ---- PL02xx: CNN dataflow graph ----
    LintCode {
        code: "PL0201",
        name: "shape-mismatch",
        default: Level::Deny,
        summary: "tensor-shape propagation failed: a layer rejects its input \
                  shape or predecessors disagree on the interface shape",
    },
    LintCode {
        code: "PL0202",
        name: "orphan-node",
        default: Level::Deny,
        summary: "a graph node is unreachable from the input layer",
    },
    LintCode {
        code: "PL0203",
        name: "dfg-cycle",
        default: Level::Deny,
        summary: "the dataflow graph contains a cycle",
    },
    LintCode {
        code: "PL0204",
        name: "input-misplaced",
        default: Level::Deny,
        summary: "the graph has no input layer, several input layers, or an \
                  input layer with predecessors",
    },
    LintCode {
        code: "PL0205",
        name: "degenerate-layer",
        default: Level::Deny,
        summary: "a layer parameter is degenerate (zero kernel, stride, \
                  window, channel or feature count)",
    },
    LintCode {
        code: "PL0206",
        name: "bandwidth-exceeded",
        default: Level::Warn,
        summary: "a component-boundary tensor exceeds the per-frame memory \
                  controller cycle budget",
    },
    LintCode {
        code: "PL0207",
        name: "bare-elementwise",
        default: Level::Warn,
        summary: "an element-wise layer forms its own component instead of \
                  fusing, wasting a memory controller",
    },
    // ---- PL03xx: checkpoints, component database, physical DRC ----
    LintCode {
        code: "PL0301",
        name: "missing-component",
        default: Level::Deny,
        summary: "a network component's signature has no checkpoint in the \
                  component database",
    },
    LintCode {
        code: "PL0302",
        name: "checkpoint-unlocked",
        default: Level::Deny,
        summary: "a checkpointed module is not locked (placement and routing \
                  must be frozen before reuse)",
    },
    LintCode {
        code: "PL0303",
        name: "pblock-contract",
        default: Level::Deny,
        summary: "a checkpoint breaks its pblock contract: module pblock \
                  absent or different from the envelope, or placed cells \
                  outside it",
    },
    LintCode {
        code: "PL0304",
        name: "partpin-contract",
        default: Level::Deny,
        summary: "a stream port has no partition pin or its pin is off the \
                  pblock boundary ring",
    },
    LintCode {
        code: "PL0305",
        name: "clock-contract",
        default: Level::Deny,
        summary: "a checkpoint has no clock port or its clock tree is not \
                  pre-routed",
    },
    LintCode {
        code: "PL0306",
        name: "device-mismatch",
        default: Level::Deny,
        summary: "checkpoints disagree about the target device, or differ \
                  from the device being linted against",
    },
    LintCode {
        code: "PL0307",
        name: "meta-mismatch",
        default: Level::Deny,
        summary: "checkpoint envelope metadata disagrees with the module it \
                  wraps (resource counts, non-positive Fmax)",
    },
    LintCode {
        code: "PL0308",
        name: "incomplete-impl",
        default: Level::Deny,
        summary: "a checkpointed module is not fully placed and routed",
    },
    // ---- PL031x: physical DRC (folded from stitch::verify) ----
    LintCode {
        code: "PL0310",
        name: "drc-unplaced-cell",
        default: Level::Deny,
        summary: "a cell in an assembled design has no placement",
    },
    LintCode {
        code: "PL0311",
        name: "drc-wrong-site",
        default: Level::Deny,
        summary: "a cell is placed on an incompatible or out-of-bounds site",
    },
    LintCode {
        code: "PL0312",
        name: "drc-site-conflict",
        default: Level::Deny,
        summary: "two cells are placed on the same site",
    },
    LintCode {
        code: "PL0313",
        name: "drc-outside-pblock",
        default: Level::Deny,
        summary: "a placed cell lies outside its instance's pblock",
    },
    LintCode {
        code: "PL0314",
        name: "drc-pblock-overlap",
        default: Level::Deny,
        summary: "two instance pblocks overlap",
    },
    LintCode {
        code: "PL0315",
        name: "drc-partpin-off-pblock",
        default: Level::Deny,
        summary: "a partition pin is off its pblock boundary",
    },
    LintCode {
        code: "PL0316",
        name: "drc-route-off-grid",
        default: Level::Deny,
        summary: "a routed net uses a tile outside the device grid",
    },
    LintCode {
        code: "PL0317",
        name: "drc-not-locked",
        default: Level::Deny,
        summary: "an assembled instance is not locked",
    },
    LintCode {
        code: "PL0318",
        name: "drc-unrouted",
        default: Level::Deny,
        summary: "a top-level net in an assembled design has no route",
    },
    // ---- PL04xx: streaming dataflow analysis (fixpoint FIFO/rate model) ----
    LintCode {
        code: "PL0400",
        name: "potential-deadlock",
        default: Level::Deny,
        summary: "a reconvergent join's early operand cannot buffer the path \
                  latency skew within the link FIFO capacity — backpressure \
                  reaches the shared producer and the pipeline deadlocks",
    },
    LintCode {
        code: "PL0401",
        name: "undersized-fifo",
        default: Level::Warn,
        summary: "a stream link needs a deeper FIFO than the configured \
                  capacity (the message carries the computed minimum depth)",
    },
    LintCode {
        code: "PL0402",
        name: "rate-mismatch",
        default: Level::Deny,
        summary: "a producer's tokens per frame disagree with what the \
                  consumer port expects (SDF balance violation)",
    },
    LintCode {
        code: "PL0403",
        name: "analysis-diverged",
        default: Level::Warn,
        summary: "the fixpoint dataflow analysis widened to top before \
                  stabilizing (usually a graph cycle): FIFO bounds and \
                  deadlock-freedom could not be proven",
    },
];

/// Look a code up in [`REGISTRY`].
pub fn lookup(code: &str) -> Option<&'static LintCode> {
    REGISTRY.iter().find(|c| c.code == code)
}

/// One finding. Ordering (and therefore rendered output) is fully
/// determined by `(code, origin, message)` so reports are byte-identical
/// regardless of the schedule that produced the findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Registry code, e.g. `PL0104`.
    pub code: &'static str,
    /// Effective severity after config levels are applied.
    pub severity: Severity,
    /// Where the finding is anchored, e.g. `module:conv1/port:din`.
    pub origin: String,
    /// Human-readable description of this specific finding.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding with the registry-default severity; the engine
    /// re-derives severity from the config when it finalizes a pass.
    pub fn new(code: &'static str, origin: impl Into<String>, message: impl Into<String>) -> Self {
        let severity = match lookup(code).map(|c| c.default) {
            Some(Level::Deny) => Severity::Error,
            _ => Severity::Warning,
        };
        Diagnostic {
            code,
            severity,
            origin: origin.into(),
            message: message.into(),
        }
    }

    /// The deterministic sort key.
    pub fn sort_key(&self) -> (&'static str, &str, &str) {
        (self.code, &self.origin, &self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.origin
        )
    }
}

/// A waiver suppresses matching findings without changing the code's
/// level for everything else. `origin_prefix == "*"` matches any origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Registry code the waiver applies to.
    pub code: String,
    /// Origin prefix to match, or `*` for all origins.
    pub origin_prefix: String,
}

impl Waiver {
    /// Does this waiver suppress the given finding?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.code == d.code
            && (self.origin_prefix == "*" || d.origin.starts_with(&self.origin_prefix))
    }
}

/// Parse a waiver file: one `CODE ORIGIN_PREFIX` pair per line, `#`
/// starts a comment, blank lines ignored. Unknown codes are errors so a
/// typo cannot silently waive nothing.
pub fn parse_waivers(text: &str) -> Result<Vec<Waiver>, String> {
    let mut waivers = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let code = parts.next().unwrap_or("");
        let prefix = parts
            .next()
            .ok_or_else(|| format!("waiver line {}: expected CODE ORIGIN_PREFIX", lineno + 1))?;
        if parts.next().is_some() {
            return Err(format!(
                "waiver line {}: trailing tokens after ORIGIN_PREFIX",
                lineno + 1
            ));
        }
        if lookup(code).is_none() {
            return Err(format!(
                "waiver line {}: unknown lint code {code}",
                lineno + 1
            ));
        }
        waivers.push(Waiver {
            code: code.to_string(),
            origin_prefix: prefix.to_string(),
        });
    }
    Ok(waivers)
}

/// Per-run lint policy: level overrides, waivers and the numeric
/// thresholds the passes consult. Thresholds are *analysis* knobs, not
/// implementation knobs — they must never enter
/// `FlowConfig::cache_fingerprint`, since linting cannot change what a
/// checkpoint contains.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Per-code level overrides; codes not present use registry defaults.
    pub levels: BTreeMap<String, Level>,
    /// Waivers applied before levels.
    pub waivers: Vec<Waiver>,
    /// `PL0107` trips when a net's endpoint count exceeds this.
    pub fanout_threshold: usize,
    /// `PL0140` considers a routed net's fan-out Steiner-worthwhile when
    /// it has at least this many located terminals.
    pub steiner_fanout: usize,
    /// `PL0206` trips when a component-boundary tensor has more elements
    /// than this per-frame cycle budget.
    pub frame_cycle_budget: u64,
    /// Token capacity the dataflow pass assumes for every stitched stream
    /// link (`PL0400`/`PL0401` trip when a computed minimum exceeds it).
    pub link_fifo_depth: u64,
    /// Treat surviving warnings as gate failures.
    pub deny_warnings: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            levels: BTreeMap::new(),
            waivers: Vec::new(),
            fanout_threshold: 64,
            steiner_fanout: 4,
            frame_cycle_budget: pi_synth::cost::TARGET_FRAME_CYCLES,
            link_fifo_depth: pi_netlist::DEFAULT_LINK_FIFO_DEPTH,
            deny_warnings: false,
        }
    }
}

impl LintConfig {
    /// A config with registry-default levels and no waivers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override one code's level (rustc `-A` / `-W` / `-D` equivalent).
    pub fn with_level(mut self, code: impl Into<String>, level: Level) -> Self {
        self.levels.insert(code.into(), level);
        self
    }

    /// Shorthand for [`Self::with_level`] with [`Level::Allow`].
    pub fn allow(self, code: impl Into<String>) -> Self {
        self.with_level(code, Level::Allow)
    }

    /// Shorthand for [`Self::with_level`] with [`Level::Warn`].
    pub fn warn(self, code: impl Into<String>) -> Self {
        self.with_level(code, Level::Warn)
    }

    /// Shorthand for [`Self::with_level`] with [`Level::Deny`].
    pub fn deny(self, code: impl Into<String>) -> Self {
        self.with_level(code, Level::Deny)
    }

    /// Install waivers (replacing any previous set).
    pub fn with_waivers(mut self, waivers: Vec<Waiver>) -> Self {
        self.waivers = waivers;
        self
    }

    /// Set the `PL0107` fan-out threshold.
    pub fn with_fanout_threshold(mut self, threshold: usize) -> Self {
        self.fanout_threshold = threshold;
        self
    }

    /// Set the `PL0140` Steiner-worthwhile terminal-count threshold.
    pub fn with_steiner_fanout(mut self, threshold: usize) -> Self {
        self.steiner_fanout = threshold;
        self
    }

    /// Set the `PL0206` per-frame cycle budget.
    pub fn with_frame_cycle_budget(mut self, budget: u64) -> Self {
        self.frame_cycle_budget = budget;
        self
    }

    /// Set the link FIFO token capacity the dataflow pass checks against.
    pub fn with_link_fifo_depth(mut self, depth: u64) -> Self {
        self.link_fifo_depth = depth;
        self
    }

    /// Make surviving warnings trip the gate.
    pub fn with_deny_warnings(mut self, deny: bool) -> Self {
        self.deny_warnings = deny;
        self
    }

    /// Effective level for a code: override, else registry default,
    /// else `Warn` for codes the registry does not know.
    pub fn level_of(&self, code: &str) -> Level {
        if let Some(l) = self.levels.get(code) {
            return *l;
        }
        lookup(code).map(|c| c.default).unwrap_or(Level::Warn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "registry out of order: {} before {}",
                pair[0].code,
                pair[1].code
            );
        }
    }

    #[test]
    fn lookup_finds_every_code() {
        for c in REGISTRY {
            assert_eq!(lookup(c.code).unwrap().name, c.name);
        }
        assert!(lookup("PL9999").is_none());
    }

    #[test]
    fn levels_override_defaults() {
        let cfg = LintConfig::new().allow("PL0101").deny("PL0102");
        assert_eq!(cfg.level_of("PL0101"), Level::Allow);
        assert_eq!(cfg.level_of("PL0102"), Level::Deny);
        assert_eq!(cfg.level_of("PL0103"), Level::Warn);
        assert_eq!(cfg.level_of("PL0104"), Level::Deny);
    }

    #[test]
    fn waiver_parsing_and_matching() {
        let text = "# comment\nPL0107 module:conv1  # trailing comment\nPL0104 *\n";
        let waivers = parse_waivers(text).unwrap();
        assert_eq!(waivers.len(), 2);
        let d = Diagnostic::new("PL0107", "module:conv1/net:x", "big fanout");
        assert!(waivers[0].matches(&d));
        let other = Diagnostic::new("PL0107", "module:fc1/net:x", "big fanout");
        assert!(!waivers[0].matches(&other));
        let w = Diagnostic::new("PL0104", "anything", "w");
        assert!(waivers[1].matches(&w));
    }

    #[test]
    fn waiver_parse_errors() {
        assert!(parse_waivers("PL0104").is_err(), "missing prefix");
        assert!(parse_waivers("PL9999 *").is_err(), "unknown code");
        assert!(parse_waivers("PL0104 * extra").is_err(), "trailing token");
    }

    #[test]
    fn diagnostic_display_is_rustc_style() {
        let d = Diagnostic::new("PL0101", "module:m/port:q", "driven twice");
        assert_eq!(
            d.to_string(),
            "error[PL0101]: driven twice\n  --> module:m/port:q"
        );
    }
}
