//! Netlist-structure lints (`PL01xx`) over [`pi_netlist::Module`] and
//! the top level of a [`pi_netlist::Design`].
//!
//! These catch what `Module::validate` deliberately tolerates: a
//! multi-driven output port, an input port that feeds nothing, a
//! floating output, endpoint width disagreements, combinational cycles
//! and dead logic. Everything here is pure structure — no device or
//! timing knowledge — so the passes run in microseconds even on the
//! VGG-scale modules the synthesizer emits.

use crate::diag::{Diagnostic, LintConfig};
use pi_netlist::{Design, Direction, Endpoint, Module};
use std::collections::BTreeMap;

/// How many element names an aggregated diagnostic spells out before
/// eliding the rest.
const NAME_SAMPLE: usize = 4;

fn sample_names(names: &[String]) -> String {
    let shown: Vec<&str> = names.iter().take(NAME_SAMPLE).map(String::as_str).collect();
    if names.len() > NAME_SAMPLE {
        format!("{}, ...", shown.join(", "))
    } else {
        shown.join(", ")
    }
}

/// Run every module-level netlist lint. `origin_base` anchors the
/// diagnostics, e.g. `module:conv1` or `db:conv_k5.../module`.
pub fn lint_module(origin_base: &str, module: &Module, config: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    port_drive_lints(origin_base, module, &mut out);
    width_lints(origin_base, module, &mut out);
    combinational_loop_lints(origin_base, module, &mut out);
    unreachable_cell_lints(origin_base, module, &mut out);
    fanout_lints(origin_base, module, config, &mut out);
    steiner_lints(origin_base, module, config, &mut out);
    out
}

/// PL0101 / PL0102 / PL0103: per-port drive and sink multiplicity.
///
/// Inside a module an *input* port is a signal source (it should drive
/// at least one net) and an *output* port is a signal sink (it should be
/// sunk by exactly one net — two nets merging onto one output is a
/// short).
fn port_drive_lints(base: &str, module: &Module, out: &mut Vec<Diagnostic>) {
    let mut sources = vec![0usize; module.ports().len()];
    let mut sinks = vec![0usize; module.ports().len()];
    for net in module.nets() {
        if let Endpoint::Port(p) = net.source {
            sources[p.index()] += 1;
        }
        for s in &net.sinks {
            if let Endpoint::Port(p) = s {
                sinks[p.index()] += 1;
            }
        }
    }
    for (i, port) in module.ports().iter().enumerate() {
        let origin = format!("{base}/port:{}", port.name);
        match port.dir {
            Direction::Input => {
                if sources[i] == 0 {
                    out.push(Diagnostic::new(
                        "PL0102",
                        origin,
                        format!("input port `{}` drives no net", port.name),
                    ));
                }
            }
            Direction::Output => {
                if sinks[i] == 0 {
                    out.push(Diagnostic::new(
                        "PL0103",
                        origin,
                        format!("output port `{}` is driven by no net", port.name),
                    ));
                } else if sinks[i] > 1 {
                    out.push(Diagnostic::new(
                        "PL0101",
                        origin,
                        format!(
                            "output port `{}` is driven by {} nets (multi-driven)",
                            port.name, sinks[i]
                        ),
                    ));
                }
            }
        }
    }
}

/// PL0104: endpoint width consistency. Cell pins carry no widths in this
/// model, so the check is confined to nets that connect ports to ports —
/// exactly the feed-through paths whose widths must agree.
fn width_lints(base: &str, module: &Module, out: &mut Vec<Diagnostic>) {
    for net in module.nets() {
        let Endpoint::Port(src) = net.source else {
            continue;
        };
        let src_port = module.port(src);
        for sink in &net.sinks {
            let Endpoint::Port(dst) = sink else { continue };
            let dst_port = module.port(*dst);
            if src_port.width != dst_port.width {
                out.push(Diagnostic::new(
                    "PL0104",
                    format!("{base}/net:{}", net.name),
                    format!(
                        "net `{}` connects port `{}` (width {}) to port `{}` (width {})",
                        net.name, src_port.name, src_port.width, dst_port.name, dst_port.width
                    ),
                ));
            }
        }
    }
}

/// PL0105: combinational loops. Builds the cell→cell edge list induced
/// on unregistered cells only, then runs an iterative Tarjan SCC; any
/// SCC of size > 1 (or a self-loop) is a loop. Plain combinational
/// *chains* — which the synthesizer legitimately emits — have trivial
/// SCCs and stay clean.
fn combinational_loop_lints(base: &str, module: &Module, out: &mut Vec<Diagnostic>) {
    let n = module.cells().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for net in module.nets() {
        let Endpoint::Cell(src) = net.source else {
            continue;
        };
        if module.cell(src).registered {
            continue;
        }
        for sink in &net.sinks {
            let Endpoint::Cell(dst) = sink else { continue };
            if module.cell(*dst).registered {
                continue;
            }
            if src == *dst {
                self_loop[src.index()] = true;
            } else {
                adj[src.index()].push(dst.index());
            }
        }
    }

    for scc in tarjan_sccs(&adj) {
        let looped = scc.len() > 1 || self_loop[scc[0]];
        if !looped {
            continue;
        }
        let mut names: Vec<String> = scc
            .iter()
            .map(|&c| module.cells()[c].name.clone())
            .collect();
        names.sort();
        out.push(Diagnostic::new(
            "PL0105",
            format!("{base}/cell:{}", names[0]),
            format!(
                "combinational loop through {} cell(s): {}",
                scc.len(),
                sample_names(&names)
            ),
        ));
    }
}

/// Iterative Tarjan strongly-connected components. Returns each SCC as a
/// sorted list of node indices; singleton SCCs are included (callers
/// filter). Iterative because synthesized FC modules can be deep enough
/// to overflow a recursive walk.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSET: usize = usize::MAX;
    let n = adj.len();
    let (mut index, mut low) = (vec![UNSET; n], vec![0usize; n]);
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    // (node, next-edge-cursor) frames replace recursion.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = counter;
        low[start] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&(v, cursor)) = frames.last() {
            if cursor < adj[v].len() {
                frames.last_mut().expect("frame exists").1 += 1;
                let w = adj[v][cursor];
                if index[w] == UNSET {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// PL0106: cells with no connectivity path to any port. Treats each net
/// as an undirected hyperedge and floods from every port-touching net;
/// whatever stays unmarked can be deleted without changing any port's
/// behaviour. One aggregated diagnostic per module to avoid a flood.
fn unreachable_cell_lints(base: &str, module: &Module, out: &mut Vec<Diagnostic>) {
    if module.ports().is_empty() || module.cells().is_empty() {
        return;
    }
    let mut cell_nets: Vec<Vec<usize>> = vec![Vec::new(); module.cells().len()];
    let mut worklist: Vec<usize> = Vec::new();
    let mut net_seen = vec![false; module.nets().len()];
    for (ni, net) in module.nets().iter().enumerate() {
        let mut touches_port = false;
        for e in net.endpoints() {
            match e {
                Endpoint::Cell(c) => cell_nets[c.index()].push(ni),
                Endpoint::Port(_) => touches_port = true,
            }
        }
        if touches_port {
            net_seen[ni] = true;
            worklist.push(ni);
        }
    }
    let mut cell_seen = vec![false; module.cells().len()];
    while let Some(ni) = worklist.pop() {
        for e in module.nets()[ni].endpoints() {
            let Endpoint::Cell(c) = e else { continue };
            if cell_seen[c.index()] {
                continue;
            }
            cell_seen[c.index()] = true;
            for &next in &cell_nets[c.index()] {
                if !net_seen[next] {
                    net_seen[next] = true;
                    worklist.push(next);
                }
            }
        }
    }
    let dead: Vec<String> = module
        .cells()
        .iter()
        .enumerate()
        .filter(|(i, _)| !cell_seen[*i])
        .map(|(_, c)| c.name.clone())
        .collect();
    if !dead.is_empty() {
        out.push(Diagnostic::new(
            "PL0106",
            format!("{base}/cells"),
            format!(
                "{} cell(s) unreachable from any port (dead logic): {}",
                dead.len(),
                sample_names(&dead)
            ),
        ));
    }
}

/// PL0107: fan-out hotspots — nets whose endpoint count exceeds the
/// configured threshold and would need replication or extra pipelining
/// in a real device.
fn fanout_lints(base: &str, module: &Module, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for net in module.nets() {
        if net.is_clock {
            continue; // clock trees use dedicated routing; fan-out is free
        }
        if net.degree() > config.fanout_threshold {
            out.push(Diagnostic::new(
                "PL0107",
                format!("{base}/net:{}", net.name),
                format!(
                    "net `{}` has fan-out {} (threshold {})",
                    net.name,
                    net.degree(),
                    config.fanout_threshold
                ),
            ));
        }
    }
}

/// Sum of rectilinear segment lengths of the net's Steiner topology — the
/// wirelength a decomposed route would target.
fn steiner_estimate(terminals: &[pi_fabric::TileCoord]) -> u64 {
    pi_pnr::steiner_topology(terminals)
        .iter()
        .map(|(a, b)| u64::from(a.manhattan(b)))
        .sum()
}

/// Locate a net's terminals: placed cells and partition-pinned ports,
/// driver first. Unlocatable endpoints are skipped.
fn located_terminals(module: &Module, net: &pi_netlist::Net) -> Vec<pi_fabric::TileCoord> {
    net.endpoints()
        .filter_map(|e| match e {
            Endpoint::Cell(c) => module.cells()[c.index()].placement,
            Endpoint::Port(p) => module.ports()[p.index()].partpin,
        })
        .collect()
}

/// PL0140: routed fan-out nets whose wirelength tracks the fan-out star
/// instead of the (cheaper) Steiner-tree estimate — the router spent wire
/// a decomposition would have saved. A 25% allowance absorbs legitimate
/// congestion detours.
fn steiner_lints(base: &str, module: &Module, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for net in module.nets() {
        if net.is_clock {
            continue;
        }
        let Some(route) = &net.route else { continue };
        let terminals = located_terminals(module, net);
        if terminals.len() < config.steiner_fanout {
            continue;
        }
        let driver = terminals[0];
        let star: u64 = terminals[1..]
            .iter()
            .map(|t| u64::from(t.manhattan(&driver)))
            .sum();
        let est = steiner_estimate(&terminals);
        if est >= star {
            continue; // a star is already optimal; nothing to decompose
        }
        let actual = route.tiles.len().saturating_sub(1) as u64;
        if actual * 4 > est * 5 {
            out.push(Diagnostic::new(
                "PL0140",
                format!("{base}/net:{}", net.name),
                format!(
                    "net `{}` (fan-out {}) routed {} tiles; its Steiner tree \
                     estimates {} (star {}) — routed without decomposition",
                    net.name,
                    terminals.len(),
                    actual,
                    est,
                    star
                ),
            ));
        }
    }
}

/// Top-level design structure lints: PL0101 for instance input ports
/// driven by more than one top net, PL0104 for top-net width mismatches
/// against their endpoint ports. Per-instance module internals are
/// linted separately (the engine fans those out in parallel).
pub fn lint_design_structure(design: &Design) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let base = format!("design:{}", design.name);
    // (instance, port) -> number of top nets sinking it; BTreeMap for
    // deterministic iteration order.
    let mut sink_count: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for net in design.top_nets() {
        let (src_inst, src_port) = net.source;
        let src = design.instance(src_inst).module.port(src_port);
        if net.width != src.width {
            out.push(Diagnostic::new(
                "PL0104",
                format!("{base}/net:{}", net.name),
                format!(
                    "top net `{}` (width {}) driven by port `{}` of width {}",
                    net.name, net.width, src.name, src.width
                ),
            ));
        }
        for &(inst, port) in &net.sinks {
            *sink_count.entry((inst.0, port.0)).or_insert(0) += 1;
            let dst = design.instance(inst).module.port(port);
            if net.width != dst.width {
                out.push(Diagnostic::new(
                    "PL0104",
                    format!("{base}/net:{}", net.name),
                    format!(
                        "top net `{}` (width {}) sinks port `{}` of width {}",
                        net.name, net.width, dst.name, dst.width
                    ),
                ));
            }
        }
    }
    for ((inst, port), n) in sink_count {
        if n > 1 {
            let inst_id = pi_netlist::InstId(inst);
            let instance = design.instance(inst_id);
            let pname = &instance.module.port(pi_netlist::PortId(port)).name;
            out.push(Diagnostic::new(
                "PL0101",
                format!("{base}/inst:{}/port:{}", instance.name, pname),
                format!(
                    "input port `{}` of instance `{}` is driven by {} top nets",
                    pname, instance.name, n
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::{Cell, CellKind, ModuleBuilder, StreamRole};

    fn reg(b: &mut ModuleBuilder, name: &str) -> pi_netlist::CellId {
        b.cell(Cell::new(name, CellKind::full_slice()))
    }

    fn comb(b: &mut ModuleBuilder, name: &str) -> pi_netlist::CellId {
        b.cell(Cell::new(name, CellKind::full_slice()).combinational())
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_module_lints_clean() {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let a = reg(&mut b, "a");
        let c = comb(&mut b, "c");
        b.connect("n_in", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect("n_mid", Endpoint::Cell(a), [Endpoint::Cell(c)]);
        b.connect("n_out", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        assert!(lint_module("module:m", &m, &LintConfig::new()).is_empty());
    }

    #[test]
    fn detects_dangling_input_and_multidriven_output() {
        let mut b = ModuleBuilder::new("m");
        let _din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let a = reg(&mut b, "a");
        let c = reg(&mut b, "c");
        b.connect(
            "n0",
            Endpoint::Cell(a),
            [Endpoint::Cell(c), Endpoint::Port(dout)],
        );
        b.connect("n1", Endpoint::Cell(c), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        let codes = codes_of(&lint_module("module:m", &m, &LintConfig::new()));
        assert!(codes.contains(&"PL0101"), "multi-driven dout: {codes:?}");
        assert!(codes.contains(&"PL0102"), "dangling din: {codes:?}");
    }

    #[test]
    fn detects_floating_output() {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let _dout = b.output("dout", StreamRole::Sink, 8);
        let a = reg(&mut b, "a");
        let c = reg(&mut b, "c");
        b.connect("n0", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect("n1", Endpoint::Cell(a), [Endpoint::Cell(c)]);
        let m = b.finish().unwrap();
        let codes = codes_of(&lint_module("module:m", &m, &LintConfig::new()));
        assert!(codes.contains(&"PL0103"), "{codes:?}");
    }

    #[test]
    fn detects_width_mismatch_on_port_to_port_net() {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 16);
        b.connect("thru", Endpoint::Port(din), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        let codes = codes_of(&lint_module("module:m", &m, &LintConfig::new()));
        assert!(codes.contains(&"PL0104"), "{codes:?}");
    }

    #[test]
    fn detects_combinational_loop_but_not_chain() {
        // Chain: x -> y (both combinational) — legal.
        let mut b = ModuleBuilder::new("chain");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let x = comb(&mut b, "x");
        let y = comb(&mut b, "y");
        b.connect("n0", Endpoint::Port(din), [Endpoint::Cell(x)]);
        b.connect("n1", Endpoint::Cell(x), [Endpoint::Cell(y)]);
        b.connect("n2", Endpoint::Cell(y), [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        let codes = codes_of(&lint_module("module:chain", &m, &LintConfig::new()));
        assert!(!codes.contains(&"PL0105"), "chain is not a loop: {codes:?}");

        // Loop: x -> y -> x.
        let mut b = ModuleBuilder::new("lp");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let x = comb(&mut b, "x");
        let y = comb(&mut b, "y");
        b.connect("n0", Endpoint::Port(din), [Endpoint::Cell(x)]);
        b.connect("n1", Endpoint::Cell(x), [Endpoint::Cell(y)]);
        b.connect(
            "n2",
            Endpoint::Cell(y),
            [Endpoint::Cell(x), Endpoint::Port(dout)],
        );
        let m = b.finish().unwrap();
        let diags = lint_module("module:lp", &m, &LintConfig::new());
        let loops: Vec<_> = diags.iter().filter(|d| d.code == "PL0105").collect();
        assert_eq!(loops.len(), 1, "{diags:?}");
        assert!(loops[0].message.contains("2 cell(s)"));
    }

    #[test]
    fn detects_unreachable_cells_aggregated() {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let a = reg(&mut b, "a");
        b.connect("n0", Endpoint::Port(din), [Endpoint::Cell(a)]);
        b.connect("n1", Endpoint::Cell(a), [Endpoint::Port(dout)]);
        // Island: u -> v, disconnected from every port.
        let u = reg(&mut b, "u");
        let v = reg(&mut b, "v");
        b.connect("n2", Endpoint::Cell(u), [Endpoint::Cell(v)]);
        let m = b.finish().unwrap();
        let diags = lint_module("module:m", &m, &LintConfig::new());
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "PL0106").collect();
        assert_eq!(dead.len(), 1, "one aggregated diagnostic: {diags:?}");
        assert!(dead[0].message.contains("2 cell(s)"));
    }

    #[test]
    fn fanout_threshold_is_configurable() {
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let cells: Vec<_> = (0..6).map(|i| reg(&mut b, &format!("c{i}"))).collect();
        let sinks: Vec<_> = cells.iter().map(|&c| Endpoint::Cell(c)).collect();
        b.connect("wide", Endpoint::Port(din), sinks);
        for (i, &c) in cells.iter().enumerate() {
            b.connect(format!("o{i}"), Endpoint::Cell(c), [Endpoint::Port(dout)]);
        }
        let m = b.finish().unwrap();
        let cfg = LintConfig::new().with_fanout_threshold(4);
        let codes = codes_of(&lint_module("module:m", &m, &cfg));
        assert!(codes.contains(&"PL0107"), "{codes:?}");
        let calm = LintConfig::new().with_fanout_threshold(100);
        let codes = codes_of(&lint_module("module:m", &m, &calm));
        assert!(!codes.contains(&"PL0107"), "{codes:?}");
    }

    #[test]
    fn flags_undecomposed_fanout_routes() {
        use pi_fabric::TileCoord;
        use pi_netlist::Route;
        // T-shaped fan-out: driver (5,0), sinks (0,5) (10,5) (5,10). The
        // Steiner tree through (5,5) needs 20 tile steps, the star 30.
        let mut b = ModuleBuilder::new("m");
        let din = b.input("din", StreamRole::Source, 8);
        let drv = reg(&mut b, "drv");
        let sinks: Vec<_> = (0..3).map(|i| reg(&mut b, &format!("s{i}"))).collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(drv)]);
        b.connect(
            "fan",
            Endpoint::Cell(drv),
            sinks.iter().map(|&c| Endpoint::Cell(c)).collect::<Vec<_>>(),
        );
        let mut m = b.finish().unwrap();
        m.set_placement(drv, TileCoord::new(5, 0)).unwrap();
        m.set_placement(sinks[0], TileCoord::new(0, 5)).unwrap();
        m.set_placement(sinks[1], TileCoord::new(10, 5)).unwrap();
        m.set_placement(sinks[2], TileCoord::new(5, 10)).unwrap();
        let fan = m
            .nets()
            .iter()
            .position(|n| n.name == "fan")
            .expect("fan net exists");
        // Star-length route (31 tiles = 30 steps): wirelength the
        // decomposition would have saved — PL0140 trips.
        m.nets_mut().unwrap()[fan].route = Some(Route {
            tiles: vec![TileCoord::new(5, 0); 31],
        });
        let codes = codes_of(&lint_module("module:m", &m, &LintConfig::new()));
        assert!(codes.contains(&"PL0140"), "{codes:?}");
        // Steiner-length route (+1 tile of slack): clean.
        m.nets_mut().unwrap()[fan].route = Some(Route {
            tiles: vec![TileCoord::new(5, 0); 22],
        });
        let codes = codes_of(&lint_module("module:m", &m, &LintConfig::new()));
        assert!(!codes.contains(&"PL0140"), "{codes:?}");
        // Raising the terminal-count threshold silences the lint.
        m.nets_mut().unwrap()[fan].route = Some(Route {
            tiles: vec![TileCoord::new(5, 0); 31],
        });
        let calm = LintConfig::new().with_steiner_fanout(8);
        let codes = codes_of(&lint_module("module:m", &m, &calm));
        assert!(!codes.contains(&"PL0140"), "{codes:?}");
    }
}
