//! Model-descriptor lints (`PL015x`): run the `pi-model` importer in
//! lenient mode, render its findings as diagnostics, and — when a
//! network came out the other end — chain the `PL02xx` graph passes so
//! one invocation reports both the import defects and the structural
//! ones.

use crate::diag::{Diagnostic, LintConfig};
use crate::graph::lint_network;
use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_model::{import_lenient, ImportFinding, ModelFormat};

/// Map one importer finding onto the diagnostics model. Every
/// [`ImportFinding`] code is registered (`PL015x`, or a `PL02xx` graph
/// code for structural defects the importer detects itself).
pub fn finding_to_diagnostic(finding: &ImportFinding) -> Diagnostic {
    Diagnostic::new(
        finding.code,
        format!("model:{}", finding.origin),
        finding.message.clone(),
    )
}

/// Lint a model descriptor: importer findings plus (on a successful
/// import) the graph-family pass over the resulting network. Returns
/// the network too so callers can keep walking it (shape tables, flow
/// hand-off).
pub fn lint_model(
    text: &str,
    format: ModelFormat,
    granularity: Granularity,
    config: &LintConfig,
) -> (Option<Network>, Vec<Diagnostic>) {
    let (import, findings) = import_lenient(text, format);
    let mut raw: Vec<Diagnostic> = findings.iter().map(finding_to_diagnostic).collect();
    let network = import.map(|imp| imp.network);
    if let Some(network) = &network {
        raw.extend(lint_network(network, granularity, config));
    }
    (network, raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_descriptor_yields_no_diagnostics() {
        let text = pi_model::json::to_json_descriptor(&pi_cnn::models::resnet_small()).unwrap();
        let (net, raw) = lint_model(
            &text,
            ModelFormat::Json,
            Granularity::Layer,
            &LintConfig::new(),
        );
        assert!(net.is_some());
        assert!(raw.is_empty(), "{raw:?}");
    }

    #[test]
    fn importer_findings_become_registered_diagnostics() {
        let text = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [{"name": "c", "op": "Convolve", "inputs": ["input"]}],
  "outputs": ["c"]
}"#;
        let (net, raw) = lint_model(
            text,
            ModelFormat::Json,
            Granularity::Layer,
            &LintConfig::new(),
        );
        assert!(net.is_none());
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].code, pi_model::UNSUPPORTED_OP);
        assert!(crate::diag::lookup(raw[0].code).is_some());
        assert!(
            raw[0].origin.starts_with("model:nodes[0]"),
            "{}",
            raw[0].origin
        );
    }

    #[test]
    fn graph_lints_chain_after_successful_import() {
        let text = r#"{
  "name": "x",
  "input": {"name": "input", "shape": [1, 8, 8]},
  "nodes": [
    {"name": "r", "op": "Relu", "inputs": ["input"]},
    {"name": "bn", "op": "BatchNormalization", "inputs": ["r"]},
    {"name": "f", "op": "Gemm", "inputs": ["bn"], "attrs": {"out": 10}}
  ],
  "outputs": ["f"]
}"#;
        let (net, raw) = lint_model(
            text,
            ModelFormat::Json,
            Granularity::Layer,
            &LintConfig::new(),
        );
        assert!(net.is_some());
        assert!(raw.iter().any(|d| d.code == pi_model::UNFOLDABLE_BATCHNORM));
    }
}
