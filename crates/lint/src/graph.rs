//! CNN dataflow-graph lints (`PL02xx`) over [`pi_cnn::Network`].
//!
//! These run *before* any synthesis: an inconsistent graph caught here
//! saves the full pre-implementation of every component downstream. The
//! pass does its own Kahn topological peel and shape propagation instead
//! of calling [`Network::input_shapes`], which aborts at the first
//! defect — a linter must keep going and report everything.

use crate::diag::{Diagnostic, LintConfig};
use pi_cnn::graph::Granularity;
use pi_cnn::{Layer, Network, NodeId, Shape};
use std::collections::BTreeMap;

/// Run every graph-level lint. `granularity` selects the component
/// partition used by the bandwidth/fusion lints (PL0206/PL0207).
pub fn lint_network(
    network: &Network,
    granularity: Granularity,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let base = format!("network:{}", network.name);
    input_lints(&base, network, &mut out);
    degenerate_layer_lints(&base, network, &mut out);
    let order = cycle_and_orphan_lints(&base, network, &mut out);
    shape_lints(&base, network, &order, &mut out);
    component_lints(&base, network, granularity, config, &mut out);
    out
}

fn node_origin(base: &str, network: &Network, id: NodeId) -> String {
    format!("{base}/node:{}", network.node(id).name)
}

/// PL0204: exactly one input layer, with no predecessors.
fn input_lints(base: &str, network: &Network, out: &mut Vec<Diagnostic>) {
    let inputs: Vec<NodeId> = (0..network.nodes().len() as u32)
        .map(NodeId)
        .filter(|&id| matches!(network.node(id).layer, Layer::Input(_)))
        .collect();
    match inputs.len() {
        0 => out.push(Diagnostic::new(
            "PL0204",
            format!("{base}/input"),
            "graph has no input layer",
        )),
        1 => {
            let id = inputs[0];
            if network.predecessors(id).next().is_some() {
                out.push(Diagnostic::new(
                    "PL0204",
                    node_origin(base, network, id),
                    format!("input layer `{}` has predecessors", network.node(id).name),
                ));
            }
        }
        n => out.push(Diagnostic::new(
            "PL0204",
            format!("{base}/input"),
            format!("graph has {n} input layers, expected exactly one"),
        )),
    }
}

/// PL0205: layer parameters that make the layer a no-op or division by
/// zero downstream.
fn degenerate_layer_lints(base: &str, network: &Network, out: &mut Vec<Diagnostic>) {
    for (i, node) in network.nodes().iter().enumerate() {
        let origin = node_origin(base, network, NodeId(i as u32));
        let defect = match &node.layer {
            Layer::Input(shape) => {
                if shape.elements() == 0 {
                    Some(format!("input shape {shape} has a zero dimension"))
                } else {
                    None
                }
            }
            Layer::Conv(p) => {
                if p.kernel == 0 || p.stride == 0 || p.out_channels == 0 {
                    Some(format!(
                        "conv kernel={} stride={} out_channels={} — all must be positive",
                        p.kernel, p.stride, p.out_channels
                    ))
                } else {
                    None
                }
            }
            Layer::Pool(p) => {
                if p.window == 0 || p.stride == 0 {
                    Some(format!(
                        "pool window={} stride={} — both must be positive",
                        p.window, p.stride
                    ))
                } else {
                    None
                }
            }
            Layer::Fc(p) => {
                if p.out_features == 0 {
                    Some("fc out_features=0".to_string())
                } else {
                    None
                }
            }
            Layer::Relu => None,
            Layer::Eltwise(_) => {
                let preds = network.predecessors(NodeId(i as u32)).count();
                if preds != 2 {
                    Some(format!(
                        "join `{}` has {} input stream(s) — element-wise joins \
                         need exactly 2",
                        node.name, preds
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(msg) = defect {
            out.push(Diagnostic::new("PL0205", origin, msg));
        }
    }
}

/// PL0203 (cycles) and PL0202 (orphans) via one Kahn peel from the
/// in-degree-zero frontier. Returns the topological order of the acyclic
/// part, which the shape pass then propagates along.
fn cycle_and_orphan_lints(base: &str, network: &Network, out: &mut Vec<Diagnostic>) -> Vec<NodeId> {
    let n = network.nodes().len();
    let mut indeg = vec![0usize; n];
    for &(_, dst) in network.edges() {
        indeg[dst.0 as usize] += 1;
    }
    let mut frontier: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    while let Some(i) = frontier.pop() {
        order.push(NodeId(i as u32));
        for succ in network.successors(NodeId(i as u32)) {
            let s = succ.0 as usize;
            indeg[s] -= 1;
            if indeg[s] == 0 {
                frontier.push(s);
            }
        }
    }
    if order.len() < n {
        // Whatever the peel could not reach sits on (or behind) a cycle.
        let mut stuck: Vec<String> = (0..n)
            .filter(|&i| indeg[i] > 0)
            .map(|i| network.node(NodeId(i as u32)).name.clone())
            .collect();
        stuck.sort();
        let shown: Vec<&str> = stuck.iter().take(4).map(String::as_str).collect();
        let suffix = if stuck.len() > 4 { ", ..." } else { "" };
        out.push(Diagnostic::new(
            "PL0203",
            format!("{base}/cycle"),
            format!(
                "dataflow graph has a cycle involving {} node(s): {}{}",
                stuck.len(),
                shown.join(", "),
                suffix
            ),
        ));
    }

    // Orphans: nodes not reachable from the input layer (if there is
    // exactly one — otherwise PL0204 already fired and reachability is
    // ill-defined).
    if let Ok(input) = network.input() {
        let mut seen = vec![false; n];
        let mut work = vec![input.0 as usize];
        seen[input.0 as usize] = true;
        while let Some(i) = work.pop() {
            for succ in network.successors(NodeId(i as u32)) {
                let s = succ.0 as usize;
                if !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        for (i, reached) in seen.iter().enumerate().take(n) {
            if !reached {
                out.push(Diagnostic::new(
                    "PL0202",
                    node_origin(base, network, NodeId(i as u32)),
                    format!(
                        "node `{}` is unreachable from the input layer",
                        network.node(NodeId(i as u32)).name
                    ),
                ));
            }
        }
    }
    order
}

/// PL0201: shape propagation along the topological order. Each node's
/// input shape is taken from its predecessors; predecessors that
/// disagree are an interface mismatch (the flow would silently use the
/// first one), and a layer rejecting its input shape is reported with
/// the layer's own error text.
fn shape_lints(base: &str, network: &Network, order: &[NodeId], out: &mut Vec<Diagnostic>) {
    let mut shapes: BTreeMap<u32, Shape> = BTreeMap::new();
    for &id in order {
        let node = network.node(id);
        let input_shape = if let Layer::Input(s) = &node.layer {
            Some(*s)
        } else {
            let preds: Vec<NodeId> = network.predecessors(id).collect();
            let known: Vec<(&str, Shape)> = preds
                .iter()
                .filter_map(|p| {
                    shapes
                        .get(&p.0)
                        .map(|s| (network.node(*p).name.as_str(), *s))
                })
                .collect();
            if known.len() > 1 && known.iter().any(|(_, s)| *s != known[0].1) {
                let desc: Vec<String> =
                    known.iter().map(|(n, s)| format!("`{n}` -> {s}")).collect();
                out.push(Diagnostic::new(
                    "PL0201",
                    node_origin(base, network, id),
                    format!(
                        "predecessors of `{}` disagree on the interface shape: {}",
                        node.name,
                        desc.join(", ")
                    ),
                ));
            }
            known.first().map(|(_, s)| *s)
        };
        let Some(input_shape) = input_shape else {
            // No propagated shape (orphan or behind a defect already
            // reported) — nothing more to check here.
            continue;
        };
        match node.layer.output_shape(input_shape) {
            Ok(s) => {
                shapes.insert(id.0, s);
            }
            Err(e) => out.push(Diagnostic::new(
                "PL0201",
                node_origin(base, network, id),
                format!(
                    "layer `{}` rejects input shape {input_shape}: {e}",
                    node.name
                ),
            )),
        }
    }
}

/// PL0206 / PL0207: component-partition lints. Only meaningful when the
/// partition itself can be computed — otherwise earlier lints already
/// explain why.
fn component_lints(
    base: &str,
    network: &Network,
    granularity: Granularity,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let Ok(components) = network.components(granularity) else {
        return;
    };
    for c in &components {
        let origin = format!("{base}/component:{}", c.name);
        // Every component boundary is a memory-controller round trip: the
        // input frame must stream through within the frame cycle budget.
        let elements = c.input_shape.elements();
        if elements > config.frame_cycle_budget {
            out.push(Diagnostic::new(
                "PL0206",
                origin.clone(),
                format!(
                    "component input tensor {} ({} elements) exceeds the \
                     per-frame cycle budget of {}",
                    c.input_shape, elements, config.frame_cycle_budget
                ),
            ));
        }
        // A bare element-wise component occupies a memory controller pair
        // for work that fuses into its producer for free.
        if network.node(c.nodes[0]).layer.is_elementwise() && c.nodes.len() == 1 {
            out.push(Diagnostic::new(
                "PL0207",
                origin,
                format!(
                    "component `{}` is a bare element-wise layer — fuse it \
                     into its producer instead of spending a memory controller",
                    c.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::{ConvParams, FcParams, PoolParams};

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn lint(net: &Network) -> Vec<Diagnostic> {
        lint_network(net, Granularity::Layer, &LintConfig::new())
    }

    #[test]
    fn bundled_models_lint_clean() {
        for net in [
            pi_cnn::models::lenet5(),
            pi_cnn::models::vgg16(),
            pi_cnn::models::alexnet_like(),
        ] {
            let diags = lint(&net);
            assert!(diags.is_empty(), "{}: {diags:?}", net.name);
        }
    }

    #[test]
    fn detects_shape_mismatch() {
        let mut net = Network::new("bad");
        net.push_layer("in", Layer::Input(Shape::new(1, 4, 4)));
        // 9x9 kernel cannot fit a 4x4 input.
        net.push_layer(
            "c1",
            Layer::Conv(ConvParams {
                kernel: 9,
                stride: 1,
                padding: 0,
                out_channels: 2,
            }),
        );
        let diags = lint(&net);
        assert!(codes_of(&diags).contains(&"PL0201"), "{diags:?}");
    }

    #[test]
    fn detects_interface_disagreement() {
        let mut net = Network::new("fork");
        let input = net.add_node("in", Layer::Input(Shape::new(1, 8, 8)));
        let a = net.add_node("a", Layer::Pool(PoolParams::max(2, 2)));
        let b = net.add_node("b", Layer::Pool(PoolParams::max(4, 4)));
        let join = net.add_node("join", Layer::Relu);
        net.add_edge(input, a);
        net.add_edge(input, b);
        net.add_edge(a, join);
        net.add_edge(b, join);
        let diags = lint(&net);
        let shapes: Vec<_> = diags.iter().filter(|d| d.code == "PL0201").collect();
        assert_eq!(shapes.len(), 1, "{diags:?}");
        assert!(shapes[0].message.contains("disagree"));
    }

    #[test]
    fn detects_cycle_and_orphan() {
        let mut net = Network::new("weird");
        let input = net.add_node("in", Layer::Input(Shape::new(1, 8, 8)));
        let a = net.add_node("a", Layer::Relu);
        let b = net.add_node("b", Layer::Relu);
        net.add_edge(input, a);
        net.add_edge(a, b);
        net.add_edge(b, a); // cycle a <-> b
        let orphan = net.add_node("island", Layer::Relu);
        let _ = orphan;
        let diags = lint(&net);
        let codes = codes_of(&diags);
        assert!(codes.contains(&"PL0203"), "{diags:?}");
        assert!(codes.contains(&"PL0202"), "{diags:?}");
    }

    #[test]
    fn detects_input_misplacement_and_degenerate_params() {
        let mut net = Network::new("none");
        net.push_layer("fc", Layer::Fc(FcParams { out_features: 0 }));
        let diags = lint(&net);
        let codes = codes_of(&diags);
        assert!(codes.contains(&"PL0204"), "no input: {diags:?}");
        assert!(codes.contains(&"PL0205"), "fc out=0: {diags:?}");

        let mut two = Network::new("two");
        two.push_layer("in1", Layer::Input(Shape::new(1, 4, 4)));
        two.push_layer("in2", Layer::Input(Shape::new(1, 4, 4)));
        let codes = codes_of(&lint(&two));
        assert!(codes.contains(&"PL0204"), "{codes:?}");
    }

    #[test]
    fn bandwidth_budget_is_configurable() {
        let net = pi_cnn::models::lenet5();
        let tight = LintConfig::new().with_frame_cycle_budget(100);
        let diags = lint_network(&net, Granularity::Layer, &tight);
        assert!(codes_of(&diags).contains(&"PL0206"), "{diags:?}");
    }

    #[test]
    fn detects_bare_elementwise_component() {
        let mut net = Network::new("bare");
        net.push_layer("in", Layer::Input(Shape::new(1, 8, 8)));
        net.push_layer("act", Layer::Relu);
        net.push_layer("fc", Layer::Fc(FcParams { out_features: 10 }));
        let diags = lint(&net);
        assert!(codes_of(&diags).contains(&"PL0207"), "{diags:?}");
    }
}
