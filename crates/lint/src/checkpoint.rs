//! Checkpoint and component-database lints (`PL03xx`), plus the fold of
//! [`pi_stitch::Violation`] physical DRC results into diagnostics
//! (`PL031x`).
//!
//! A pre-implemented flow lives or dies by its checkpoint contracts: a
//! component can only be relocated and stitched if its internals are
//! locked, its placement stays inside the envelope pblock, its stream
//! ports sit on the pblock boundary ring, and its clock tree is already
//! routed. These passes verify each `.dcp` envelope against exactly
//! those contracts, before composition ever runs.

use crate::diag::Diagnostic;
use pi_cnn::graph::{Component, Granularity};
use pi_cnn::Network;
use pi_fabric::Device;
use pi_netlist::Checkpoint;
use pi_stitch::{ComponentDb, Violation};

/// Stable code for a folded physical DRC violation.
pub fn violation_code(v: &Violation) -> &'static str {
    match v {
        Violation::UnplacedCell { .. } => "PL0310",
        Violation::WrongSiteKind { .. } => "PL0311",
        Violation::SiteConflict { .. } => "PL0312",
        Violation::OutsidePblock { .. } => "PL0313",
        Violation::PblockOverlap { .. } => "PL0314",
        Violation::PartpinOffPblock { .. } => "PL0315",
        Violation::RouteOffGrid { .. } => "PL0316",
        Violation::NotLocked { .. } => "PL0317",
        Violation::Unrouted { .. } => "PL0318",
    }
}

/// Fold one physical DRC violation into a diagnostic. The origin mirrors
/// the violation's anchor so waivers can target an instance, net or port.
pub fn diagnose_violation(base: &str, v: &Violation) -> Diagnostic {
    let origin = match v {
        Violation::UnplacedCell { instance, cell }
        | Violation::WrongSiteKind { instance, cell, .. }
        | Violation::OutsidePblock { instance, cell, .. } => {
            format!("{base}/inst:{instance}/cell:{cell}")
        }
        Violation::SiteConflict { a, .. } => format!("{base}/inst:{a}"),
        Violation::PblockOverlap { a, b } => format!("{base}/inst:{a}+{b}"),
        Violation::PartpinOffPblock { instance, port, .. } => {
            format!("{base}/inst:{instance}/port:{port}")
        }
        Violation::RouteOffGrid { net, .. } | Violation::Unrouted { net } => {
            format!("{base}/net:{net}")
        }
        Violation::NotLocked { instance } => format!("{base}/inst:{instance}"),
    };
    Diagnostic::new(violation_code(v), origin, v.to_string())
}

/// Run every envelope-contract lint on one checkpoint. `device`, when
/// given, is cross-checked against the envelope's recorded device.
pub fn lint_checkpoint(checkpoint: &Checkpoint, device: Option<&Device>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let meta = &checkpoint.meta;
    let module = &checkpoint.module;
    let base = format!("checkpoint:{}", meta.signature);

    // PL0302: reusable checkpoints must be frozen.
    if !module.locked {
        out.push(Diagnostic::new(
            "PL0302",
            base.clone(),
            "checkpointed module is not locked",
        ));
    }

    // PL0303: envelope pblock contract.
    match module.pblock {
        None => out.push(Diagnostic::new(
            "PL0303",
            format!("{base}/pblock"),
            "module has no pblock but the envelope promises one",
        )),
        Some(pb) if pb != meta.pblock => out.push(Diagnostic::new(
            "PL0303",
            format!("{base}/pblock"),
            format!(
                "module pblock {:?} differs from envelope pblock {:?}",
                pb, meta.pblock
            ),
        )),
        Some(_) => {}
    }
    let strays = module
        .cells()
        .iter()
        .filter(|c| c.placement.is_some_and(|at| !meta.pblock.contains(at)))
        .count();
    if strays > 0 {
        out.push(Diagnostic::new(
            "PL0303",
            format!("{base}/placement"),
            format!("{strays} placed cell(s) outside the envelope pblock"),
        ));
    }

    // PL0304: stream ports must carry partition pins on the pblock
    // boundary ring — that is what makes relocation + stitching legal.
    for port in module.ports() {
        let origin = format!("{base}/port:{}", port.name);
        match port.partpin {
            None => out.push(Diagnostic::new(
                "PL0304",
                origin,
                format!("port `{}` has no partition pin", port.name),
            )),
            Some(pin) => {
                let pb = &meta.pblock;
                let on_ring = pb.contains(pin)
                    && (pin.col == pb.col_lo
                        || pin.col == pb.col_hi
                        || pin.row == pb.row_lo
                        || pin.row == pb.row_hi);
                if !on_ring {
                    out.push(Diagnostic::new(
                        "PL0304",
                        origin,
                        format!(
                            "partition pin of `{}` at {pin} is off the pblock boundary ring",
                            port.name
                        ),
                    ));
                }
            }
        }
    }

    // PL0305: clock contract — a clock port exists and the tree is
    // pre-routed (the flow's skew guarantee across relocated components).
    let has_clock = module
        .ports_with_role(pi_netlist::StreamRole::Clock)
        .next()
        .is_some();
    if !has_clock {
        out.push(Diagnostic::new(
            "PL0305",
            format!("{base}/clock"),
            "checkpoint has no clock port",
        ));
    }
    if !module.clock_prerouted {
        out.push(Diagnostic::new(
            "PL0305",
            format!("{base}/clock"),
            "clock tree is not pre-routed",
        ));
    }

    // PL0306: the envelope's device must match the device we lint for.
    if let Some(dev) = device {
        if meta.device != dev.name() {
            out.push(Diagnostic::new(
                "PL0306",
                format!("{base}/device"),
                format!(
                    "envelope targets device `{}` but the flow runs on `{}`",
                    meta.device,
                    dev.name()
                ),
            ));
        }
    }

    // PL0307: envelope metadata must agree with the module it wraps.
    if module.resources() != meta.resources {
        out.push(Diagnostic::new(
            "PL0307",
            format!("{base}/resources"),
            format!(
                "envelope resources {:?} differ from module resources {:?}",
                meta.resources,
                module.resources()
            ),
        ));
    }
    if !meta.fmax_mhz.is_finite() || meta.fmax_mhz <= 0.0 {
        out.push(Diagnostic::new(
            "PL0307",
            format!("{base}/fmax"),
            format!("envelope Fmax {} MHz is not positive", meta.fmax_mhz),
        ));
    }

    // PL0308: a reusable checkpoint is fully implemented by definition.
    if !module.fully_placed() {
        out.push(Diagnostic::new(
            "PL0308",
            base.clone(),
            "module is not fully placed",
        ));
    }
    if !module.fully_routed() {
        out.push(Diagnostic::new(
            "PL0308",
            base.clone(),
            "module is not fully routed",
        ));
    }
    out
}

/// Cross-checkpoint consistency: every envelope in a database must name
/// the same device (PL0306) — mixing parts makes relocation meaningless.
pub fn lint_db_consistency(db: &ComponentDb) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut first: Option<(&str, &str)> = None;
    for cp in db.checkpoints() {
        match first {
            None => first = Some((cp.meta.signature.as_str(), cp.meta.device.as_str())),
            Some((sig0, dev0)) => {
                if cp.meta.device != dev0 {
                    out.push(Diagnostic::new(
                        "PL0306",
                        format!("checkpoint:{}/device", cp.meta.signature),
                        format!(
                            "device `{}` disagrees with `{}` (from `{sig0}`)",
                            cp.meta.device, dev0
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// PL0301: every component the network needs must have a checkpoint.
pub fn lint_db_coverage(
    network: &Network,
    granularity: Granularity,
    db: &ComponentDb,
) -> Vec<Diagnostic> {
    let Ok(components) = network.components(granularity) else {
        // Graph-level lints already explain an unpartitionable network.
        return Vec::new();
    };
    let mut out = Vec::new();
    for c in &components {
        let sig = c.signature(network);
        if db.get(&sig).is_none() {
            out.push(missing_component(&network.name, c, &sig));
        }
    }
    out
}

fn missing_component(network: &str, c: &Component, sig: &str) -> Diagnostic {
    Diagnostic::new(
        "PL0301",
        format!("network:{network}/component:{}", c.name),
        format!(
            "component `{}` (signature `{sig}`) has no checkpoint in the database",
            c.name
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::report::LintReport;
    use pi_fabric::TileCoord;

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn violation_fold_covers_every_variant() {
        let at = TileCoord::new(1, 2);
        let cases = vec![
            Violation::UnplacedCell {
                instance: "i".into(),
                cell: "c".into(),
            },
            Violation::WrongSiteKind {
                instance: "i".into(),
                cell: "c".into(),
                at,
            },
            Violation::SiteConflict {
                a: "a".into(),
                b: "b".into(),
                at,
            },
            Violation::OutsidePblock {
                instance: "i".into(),
                cell: "c".into(),
                at,
            },
            Violation::PblockOverlap {
                a: "a".into(),
                b: "b".into(),
            },
            Violation::PartpinOffPblock {
                instance: "i".into(),
                port: "p".into(),
                at,
            },
            Violation::RouteOffGrid {
                net: "n".into(),
                at,
            },
            Violation::NotLocked {
                instance: "i".into(),
            },
            Violation::Unrouted { net: "n".into() },
        ];
        let diags: Vec<Diagnostic> = cases
            .iter()
            .map(|v| diagnose_violation("design:d", v))
            .collect();
        let codes = codes_of(&diags);
        let expect = vec![
            "PL0310", "PL0311", "PL0312", "PL0313", "PL0314", "PL0315", "PL0316", "PL0317",
            "PL0318",
        ];
        assert_eq!(codes, expect, "one distinct code per variant");
        // Every fold is an error by default.
        let report = LintReport::from_raw(diags, &LintConfig::new());
        assert_eq!(report.errors(), 9);
    }
}
