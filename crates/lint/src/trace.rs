//! Telemetry-stream lints (`PL016x`): structural checks over a recorded
//! `pi_obs` JSONL trace.
//!
//! Traces are load-bearing in this workspace — `flowstat` folds them into
//! reports, CI diffs them byte-for-byte, and the serve layer splices
//! remote streams under local spans. A stream that lost events (truncated
//! file, crashed worker) or was merged without renumbering silently skews
//! every downstream report, so `pilint trace` gates on two invariants:
//!
//! * **span balance** (`PL0160`) — every `span_end` closes a previously
//!   opened span of the same scope and name, and nothing is left open at
//!   end of stream. Matching is per `(scope, name)` multiset rather than
//!   a strict stack, so interleaved spans from merged parallel streams
//!   do not false-positive;
//! * **sequence monotonicity** (`PL0161`) — `seq` is strictly increasing
//!   in stream order, which is what makes replay and diffing
//!   deterministic.

use crate::diag::Diagnostic;
use pi_obs::{Event, EventKind};
use std::collections::BTreeMap;

/// Stable code of the span-imbalance lint.
pub const TRACE_SPAN_IMBALANCE: &str = "PL0160";
/// Stable code of the sequence-regression lint.
pub const TRACE_SEQ_REGRESSION: &str = "PL0161";

/// Lint one event stream (in stream order, as [`pi_obs::parse_jsonl`]
/// returns it). Returns raw diagnostics for [`crate::LintReport::from_raw`].
pub fn lint_trace(events: &[Event]) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    // Open-span multiset: (scope, name) -> (count, seq of first open).
    let mut open: BTreeMap<(String, String), (u64, Vec<u64>)> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    for e in events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                raw.push(Diagnostic::new(
                    TRACE_SEQ_REGRESSION,
                    format!("event:{}", e.seq),
                    format!("seq {} follows seq {prev} — not strictly increasing", e.seq),
                ));
            }
        }
        last_seq = Some(e.seq);
        let key = || (e.scope.clone(), e.name.clone());
        match e.kind {
            EventKind::SpanStart => {
                let slot = open.entry(key()).or_default();
                slot.0 += 1;
                slot.1.push(e.seq);
            }
            EventKind::SpanEnd => match open.get_mut(&key()) {
                Some(slot) if slot.0 > 0 => {
                    slot.0 -= 1;
                    slot.1.pop();
                }
                _ => raw.push(Diagnostic::new(
                    TRACE_SPAN_IMBALANCE,
                    format!("span:{}:{}", e.scope, e.name),
                    format!("span_end at seq {} has no open span to close", e.seq),
                )),
            },
            EventKind::Counter | EventKind::Gauge | EventKind::Point => {}
        }
    }
    for ((scope, name), (count, seqs)) in open {
        if count > 0 {
            let first = seqs.first().copied().unwrap_or(0);
            raw.push(Diagnostic::new(
                TRACE_SPAN_IMBALANCE,
                format!("span:{scope}:{name}"),
                format!("{count} span(s) opened (first at seq {first}) but never closed"),
            ));
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintConfig;
    use crate::report::LintReport;
    use pi_obs::{MemorySink, Obs};
    use std::sync::Arc;

    fn record(f: impl FnOnce(&Obs)) -> Vec<Event> {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        f(&obs);
        sink.snapshot()
    }

    #[test]
    fn balanced_stream_is_clean() {
        let events = record(|obs| {
            let flow = obs.scoped("flow");
            let outer = flow.span("build");
            flow.counter("nets", 3);
            let inner = flow.span("route");
            inner.end();
            outer.end();
        });
        assert!(lint_trace(&events).is_empty());
    }

    #[test]
    fn truncated_stream_reports_unclosed_spans() {
        let mut events = record(|obs| {
            let span = obs.scoped("flow").span("build");
            span.end();
        });
        events.pop(); // lose the span_end
        let raw = lint_trace(&events);
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].code, TRACE_SPAN_IMBALANCE);
        assert_eq!(raw[0].origin, "span:flow:build");
        assert!(
            raw[0].message.contains("never closed"),
            "{}",
            raw[0].message
        );
        // The code is registered, so the report gates as an error.
        let report = LintReport::from_raw(raw, &LintConfig::new());
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn orphan_end_and_seq_regression_are_distinct_codes() {
        let balanced = record(|obs| {
            let span = obs.scoped("flow").span("build");
            span.end();
        });
        // An end without its start...
        let orphan = vec![balanced[1].clone()];
        let raw = lint_trace(&orphan);
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].code, TRACE_SPAN_IMBALANCE);
        assert!(
            raw[0].message.contains("no open span"),
            "{}",
            raw[0].message
        );
        // ...and a stream spliced without renumbering.
        let respliced = vec![
            balanced[0].clone(),
            balanced[1].clone(),
            balanced[0].clone(),
            balanced[1].clone(),
        ];
        let raw = lint_trace(&respliced);
        assert!(raw.iter().any(|d| d.code == TRACE_SEQ_REGRESSION));
        assert!(
            raw.iter().all(|d| d.code != TRACE_SPAN_IMBALANCE),
            "duplicated tree stays balanced"
        );
    }

    #[test]
    fn interleaved_parallel_spans_do_not_false_positive() {
        // Same (scope, name) opened twice before either closes — legal in
        // a merged parallel stream.
        let events = record(|obs| {
            let flow = obs.scoped("flow");
            let a = flow.span("impl");
            let b = flow.span("impl");
            a.end();
            b.end();
        });
        assert!(lint_trace(&events).is_empty());
    }
}
