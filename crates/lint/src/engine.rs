//! The pass manager: [`LintEngine`] runs analysis families against a
//! network, a module, a checkpoint database or a composed design, folds
//! the findings through the configured policy and emits one telemetry
//! point per pass.
//!
//! Per-checkpoint and per-instance passes fan out across the vendored
//! rayon backend, buffering each unit's telemetry and flushing in input
//! order (the `pi-obs` determinism contract) — so a lint run's event
//! stream and report are byte-identical at any `PI_THREADS`.

use crate::checkpoint::{
    diagnose_violation, lint_checkpoint, lint_db_consistency, lint_db_coverage,
};
use crate::diag::{Diagnostic, LintConfig};
use crate::graph::lint_network;
use crate::netlist::{lint_design_structure, lint_module};
use crate::report::LintReport;
use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_netlist::{Checkpoint, Design};
use pi_obs::{Obs, Value};
use pi_stitch::ComponentDb;
use rayon::prelude::*;

/// Runs lint passes under one [`LintConfig`].
#[derive(Debug, Clone, Default)]
pub struct LintEngine {
    config: LintConfig,
}

impl LintEngine {
    /// An engine with the given policy.
    pub fn new(config: LintConfig) -> Self {
        LintEngine { config }
    }

    /// The policy this engine applies.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Finalize one pass: apply waivers/levels, sort, dedup, and emit
    /// the pass summary through telemetry.
    fn finalize(&self, pass: &str, raw: Vec<Diagnostic>, obs: &Obs) -> LintReport {
        let report = LintReport::from_raw(raw, &self.config);
        obs.scoped("lint").point(
            "pass_done",
            &[
                ("pass", Value::Str(pass.to_string())),
                ("errors", Value::U64(report.errors() as u64)),
                ("warnings", Value::U64(report.warnings() as u64)),
                ("waived", Value::U64(report.waived as u64)),
                ("allowed", Value::U64(report.allowed as u64)),
            ],
        );
        report
    }

    /// Graph-family pass (`PL02xx`) over a CNN network.
    pub fn lint_network(
        &self,
        network: &Network,
        granularity: Granularity,
        obs: &Obs,
    ) -> LintReport {
        self.finalize(
            "network",
            lint_network(network, granularity, &self.config),
            obs,
        )
    }

    /// Netlist-family pass (`PL01xx`) over a single module.
    pub fn lint_module(
        &self,
        origin_base: &str,
        module: &pi_netlist::Module,
        obs: &Obs,
    ) -> LintReport {
        self.finalize(
            "module",
            lint_module(origin_base, module, &self.config),
            obs,
        )
    }

    /// Checkpoint-family pass (`PL03xx`) plus the netlist pass on the
    /// wrapped module, for one checkpoint.
    pub fn lint_checkpoint(
        &self,
        checkpoint: &Checkpoint,
        device: Option<&Device>,
        obs: &Obs,
    ) -> LintReport {
        self.finalize("checkpoint", self.checkpoint_raw(checkpoint, device), obs)
    }

    fn checkpoint_raw(&self, checkpoint: &Checkpoint, device: Option<&Device>) -> Vec<Diagnostic> {
        let mut raw = lint_checkpoint(checkpoint, device);
        let base = format!("checkpoint:{}/module", checkpoint.meta.signature);
        raw.extend(lint_module(&base, &checkpoint.module, &self.config));
        raw
    }

    /// Lint every checkpoint in a database (parallel fan-out) plus the
    /// cross-checkpoint consistency pass.
    pub fn lint_db(&self, db: &ComponentDb, device: Option<&Device>, obs: &Obs) -> LintReport {
        // ComponentDb iterates in BTreeMap (signature) order, so the
        // fan-out input — and therefore the flush order and the final
        // report — is deterministic.
        let items: Vec<(&Checkpoint, pi_obs::BufferedObs)> =
            db.checkpoints().map(|cp| (cp, obs.buffered())).collect();
        let linted: Vec<(Vec<Diagnostic>, pi_obs::BufferedObs)> = items
            .into_par_iter()
            .map(|(cp, buf)| (self.checkpoint_raw(cp, device), buf))
            .collect();
        let mut raw = Vec::new();
        for (diags, buf) in linted {
            buf.flush_into(obs);
            raw.extend(diags);
        }
        raw.extend(lint_db_consistency(db));
        self.finalize("db", raw, obs)
    }

    /// [`Self::lint_db`] plus coverage (`PL0301`): every component the
    /// network needs must be present.
    pub fn lint_db_for_network(
        &self,
        network: &Network,
        granularity: Granularity,
        db: &ComponentDb,
        device: Option<&Device>,
        obs: &Obs,
    ) -> LintReport {
        let mut report = self.lint_db(db, device, obs);
        let coverage = self.finalize(
            "db-coverage",
            lint_db_coverage(network, granularity, db),
            obs,
        );
        report.merge(coverage);
        report
    }

    /// Lint a composed design: top-level structure, every instance's
    /// module (parallel fan-out), and the physical DRC from
    /// [`pi_stitch::check_design`] folded into `PL031x` diagnostics.
    pub fn lint_design(&self, design: &Design, device: &Device, obs: &Obs) -> LintReport {
        let base = format!("design:{}", design.name);
        let mut raw = lint_design_structure(design);

        let items: Vec<(usize, pi_obs::BufferedObs)> = (0..design.instances().len())
            .map(|i| (i, obs.buffered()))
            .collect();
        let linted: Vec<(Vec<Diagnostic>, pi_obs::BufferedObs)> = items
            .into_par_iter()
            .map(|(i, buf)| {
                let inst = &design.instances()[i];
                let origin = format!("{base}/inst:{}", inst.name);
                (lint_module(&origin, &inst.module, &self.config), buf)
            })
            .collect();
        for (diags, buf) in linted {
            buf.flush_into(obs);
            raw.extend(diags);
        }

        match pi_stitch::check_design(design, device) {
            Ok(violations) => {
                raw.extend(violations.iter().map(|v| diagnose_violation(&base, v)));
            }
            Err(e) => raw.push(Diagnostic::new(
                "PL0308",
                format!("{base}/drc"),
                format!("physical DRC could not run: {e}"),
            )),
        }
        self.finalize("design", raw, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_obs::{MemorySink, Obs};
    use std::sync::Arc;

    #[test]
    fn pass_emits_telemetry_point() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        let engine = LintEngine::new(LintConfig::new());
        let report = engine.lint_network(&pi_cnn::models::lenet5(), Granularity::Layer, &obs);
        assert!(report.is_clean(), "{report:?}");
        let events = sink.snapshot();
        assert!(
            events.iter().any(|e| e.name == "pass_done"),
            "lint pass emits a pass_done point"
        );
    }
}
