//! The pass manager: [`LintEngine`] runs analysis families against a
//! network, a module, a checkpoint database or a composed design, folds
//! the findings through the configured policy and emits one telemetry
//! point per pass.
//!
//! Per-checkpoint and per-instance passes fan out across the vendored
//! rayon backend, buffering each unit's telemetry and flushing in input
//! order (the `pi-obs` determinism contract) — so a lint run's event
//! stream and report are byte-identical at any `PI_THREADS`.

use crate::checkpoint::{
    diagnose_violation, lint_checkpoint, lint_db_consistency, lint_db_coverage,
};
use crate::diag::{Diagnostic, LintConfig};
use crate::graph::lint_network;
use crate::netlist::{lint_design_structure, lint_module};
use crate::report::LintReport;
use pi_cnn::graph::Granularity;
use pi_cnn::Network;
use pi_fabric::Device;
use pi_netlist::{Checkpoint, Design};
use pi_obs::{Obs, Value};
use pi_stitch::ComponentDb;
use rayon::prelude::*;

/// A saturating interval `[lo, hi]` of cycle counts — the value domain of
/// the dataflow fixpoint (`crate::dataflow`). `hi == u64::MAX` is the
/// lattice top: "unbounded", the widened state a diverging chain lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub lo: u64,
    pub hi: u64,
}

impl Interval {
    /// The sentinel upper bound meaning "unbounded".
    pub const TOP_HI: u64 = u64::MAX;

    /// The degenerate interval `[v, v]`.
    pub fn point(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Shift both bounds by `d`, saturating (top stays top).
    pub fn offset(self, d: u64) -> Self {
        Interval {
            lo: self.lo.saturating_add(d),
            hi: self.hi.saturating_add(d),
        }
    }

    /// Lattice join: the smallest interval containing both (union hull).
    pub fn join(self, other: Self) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Element-wise maximum: the arrival of a *synchronizing* join, which
    /// cannot fire before its latest operand on either bound.
    pub fn sup(self, other: Self) -> Self {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// True once the upper bound has been widened to top.
    pub fn is_top(self) -> bool {
        self.hi == Self::TOP_HI
    }
}

/// What a fixpoint run produced: the per-node post-state (`None` for
/// nodes no seed reaches), how many node evaluations it took, and whether
/// any value had to be widened to top before the run stabilized.
#[derive(Debug, Clone)]
pub struct FixpointOutcome {
    pub values: Vec<Option<Interval>>,
    pub iterations: u64,
    pub diverged: bool,
}

/// A node's value is re-widened to top after this many changes — the
/// knob that bounds the fixpoint on cyclic graphs: `lo` freezes at first
/// assignment (the hull join keeps the minimum) and `hi` can only rise
/// this many times before saturating, so every node stabilizes.
const WIDEN_AFTER: u32 = 8;

/// Worklist fixpoint over intervals on a finite directed graph.
///
/// Each node's input state is the element-wise [`Interval::sup`] of its
/// predecessors' values pushed through `transfer(pred, node, value)`
/// (synchronization semantics: a multi-input node fires when its *latest*
/// operand arrives), hull-joined with the node's previous state so values
/// grow monotonically. `seeds` pins the initial state of source nodes.
/// The worklist drains in ascending node order, so on a DAG whose edges
/// point from lower to higher index (the order `Network::components`
/// emits) one sweep converges exactly; on cyclic graphs widening caps
/// each node at [`WIDEN_AFTER`] changes and the run reports `diverged`.
pub fn fixpoint_intervals(
    preds: &[Vec<usize>],
    succs: &[Vec<usize>],
    seeds: &[(usize, Interval)],
    transfer: impl Fn(usize, usize, Interval) -> Interval,
) -> FixpointOutcome {
    let n = preds.len();
    assert_eq!(succs.len(), n, "preds/succs describe the same graph");
    let mut values: Vec<Option<Interval>> = vec![None; n];
    let mut seeded: Vec<Option<Interval>> = vec![None; n];
    for &(node, v) in seeds {
        seeded[node] = Some(match seeded[node] {
            Some(prev) => prev.join(v),
            None => v,
        });
    }
    let mut changes = vec![0u32; n];
    let mut worklist: std::collections::BTreeSet<usize> = (0..n).collect();
    let mut iterations = 0u64;
    // Belt-and-braces bound: widening alone terminates, but a hard budget
    // keeps a core bug from hanging a lint run.
    let budget = (n as u64 + 1) * (u64::from(WIDEN_AFTER) + 2) * 4 + 1024;
    let mut diverged = false;
    while let Some(&node) = worklist.iter().next() {
        worklist.remove(&node);
        iterations += 1;
        if iterations > budget {
            diverged = true;
            break;
        }
        let mut incoming = seeded[node];
        for &p in &preds[node] {
            if let Some(v) = values[p] {
                let contrib = transfer(p, node, v);
                incoming = Some(match incoming {
                    Some(acc) => acc.sup(contrib),
                    None => contrib,
                });
            }
        }
        let Some(new) = incoming else { continue };
        let merged = match values[node] {
            Some(prev) => prev.join(new),
            None => new,
        };
        if values[node] == Some(merged) {
            continue;
        }
        changes[node] += 1;
        let stored = if changes[node] > WIDEN_AFTER && !merged.is_top() {
            Interval {
                lo: merged.lo,
                hi: Interval::TOP_HI,
            }
        } else {
            merged
        };
        values[node] = Some(stored);
        worklist.extend(succs[node].iter().copied());
    }
    diverged = diverged || values.iter().flatten().any(|v| v.is_top());
    FixpointOutcome {
        values,
        iterations,
        diverged,
    }
}

/// Runs lint passes under one [`LintConfig`].
#[derive(Debug, Clone, Default)]
pub struct LintEngine {
    config: LintConfig,
}

impl LintEngine {
    /// An engine with the given policy.
    pub fn new(config: LintConfig) -> Self {
        LintEngine { config }
    }

    /// The policy this engine applies.
    pub fn config(&self) -> &LintConfig {
        &self.config
    }

    /// Finalize one pass: apply waivers/levels, sort, dedup, and emit
    /// the pass summary through telemetry.
    fn finalize(&self, pass: &str, raw: Vec<Diagnostic>, obs: &Obs) -> LintReport {
        let report = LintReport::from_raw(raw, &self.config);
        obs.scoped("lint").point(
            "pass_done",
            &[
                ("pass", Value::Str(pass.to_string())),
                ("errors", Value::U64(report.errors() as u64)),
                ("warnings", Value::U64(report.warnings() as u64)),
                ("waived", Value::U64(report.waived as u64)),
                ("allowed", Value::U64(report.allowed as u64)),
            ],
        );
        report
    }

    /// Graph-family pass (`PL02xx`) over a CNN network.
    pub fn lint_network(
        &self,
        network: &Network,
        granularity: Granularity,
        obs: &Obs,
    ) -> LintReport {
        self.finalize(
            "network",
            lint_network(network, granularity, &self.config),
            obs,
        )
    }

    /// Dataflow-family pass (`PL04xx`): fixpoint FIFO/deadlock/rate
    /// analysis over the component graph. With `autosize` the findings
    /// are evaluated against each link's own computed minimum depth (the
    /// capacities `FlowConfig::with_fifo_autosize` will stitch), so only
    /// rate imbalance and divergence can surface.
    pub fn lint_dataflow(
        &self,
        network: &Network,
        granularity: Granularity,
        autosize: bool,
        obs: &Obs,
    ) -> LintReport {
        let scope = obs.scoped("lint::dataflow");
        let analysis = {
            let _span = scope.span("analyze");
            crate::dataflow::analyze(network, granularity)
        };
        scope.counter("iterations", analysis.iterations);
        scope.counter("links", analysis.edges.len() as u64);
        scope.counter("diverged", u64::from(analysis.diverged));
        let raw = analysis.lint(self.config.link_fifo_depth, autosize);
        self.finalize("dataflow", raw, obs)
    }

    /// Model-import pass (`PL015x`) over a descriptor text, chaining the
    /// graph-family pass when the import yields a network. Returns the
    /// imported network alongside the report so callers can keep it.
    pub fn lint_model(
        &self,
        text: &str,
        format: pi_model::ModelFormat,
        granularity: Granularity,
        obs: &Obs,
    ) -> (Option<Network>, LintReport) {
        let (network, raw) = crate::model::lint_model(text, format, granularity, &self.config);
        (network, self.finalize("model", raw, obs))
    }

    /// Netlist-family pass (`PL01xx`) over a single module.
    pub fn lint_module(
        &self,
        origin_base: &str,
        module: &pi_netlist::Module,
        obs: &Obs,
    ) -> LintReport {
        self.finalize(
            "module",
            lint_module(origin_base, module, &self.config),
            obs,
        )
    }

    /// Checkpoint-family pass (`PL03xx`) plus the netlist pass on the
    /// wrapped module, for one checkpoint.
    pub fn lint_checkpoint(
        &self,
        checkpoint: &Checkpoint,
        device: Option<&Device>,
        obs: &Obs,
    ) -> LintReport {
        self.finalize("checkpoint", self.checkpoint_raw(checkpoint, device), obs)
    }

    fn checkpoint_raw(&self, checkpoint: &Checkpoint, device: Option<&Device>) -> Vec<Diagnostic> {
        let mut raw = lint_checkpoint(checkpoint, device);
        let base = format!("checkpoint:{}/module", checkpoint.meta.signature);
        raw.extend(lint_module(&base, &checkpoint.module, &self.config));
        raw
    }

    /// Lint every checkpoint in a database (parallel fan-out) plus the
    /// cross-checkpoint consistency pass.
    pub fn lint_db(&self, db: &ComponentDb, device: Option<&Device>, obs: &Obs) -> LintReport {
        // ComponentDb iterates in BTreeMap (signature) order, so the
        // fan-out input — and therefore the flush order and the final
        // report — is deterministic.
        let items: Vec<(&Checkpoint, pi_obs::BufferedObs)> =
            db.checkpoints().map(|cp| (cp, obs.buffered())).collect();
        let linted: Vec<(Vec<Diagnostic>, pi_obs::BufferedObs)> = items
            .into_par_iter()
            .map(|(cp, buf)| (self.checkpoint_raw(cp, device), buf))
            .collect();
        let mut raw = Vec::new();
        for (diags, buf) in linted {
            buf.flush_into(obs);
            raw.extend(diags);
        }
        raw.extend(lint_db_consistency(db));
        self.finalize("db", raw, obs)
    }

    /// [`Self::lint_db`] plus coverage (`PL0301`): every component the
    /// network needs must be present.
    pub fn lint_db_for_network(
        &self,
        network: &Network,
        granularity: Granularity,
        db: &ComponentDb,
        device: Option<&Device>,
        obs: &Obs,
    ) -> LintReport {
        let mut report = self.lint_db(db, device, obs);
        let coverage = self.finalize(
            "db-coverage",
            lint_db_coverage(network, granularity, db),
            obs,
        );
        report.merge(coverage);
        report
    }

    /// Lint a composed design: top-level structure, every instance's
    /// module (parallel fan-out), and the physical DRC from
    /// [`pi_stitch::check_design`] folded into `PL031x` diagnostics.
    pub fn lint_design(&self, design: &Design, device: &Device, obs: &Obs) -> LintReport {
        let base = format!("design:{}", design.name);
        let mut raw = lint_design_structure(design);

        let items: Vec<(usize, pi_obs::BufferedObs)> = (0..design.instances().len())
            .map(|i| (i, obs.buffered()))
            .collect();
        let linted: Vec<(Vec<Diagnostic>, pi_obs::BufferedObs)> = items
            .into_par_iter()
            .map(|(i, buf)| {
                let inst = &design.instances()[i];
                let origin = format!("{base}/inst:{}", inst.name);
                (lint_module(&origin, &inst.module, &self.config), buf)
            })
            .collect();
        for (diags, buf) in linted {
            buf.flush_into(obs);
            raw.extend(diags);
        }

        match pi_stitch::check_design(design, device) {
            Ok(violations) => {
                raw.extend(violations.iter().map(|v| diagnose_violation(&base, v)));
            }
            Err(e) => raw.push(Diagnostic::new(
                "PL0308",
                format!("{base}/drc"),
                format!("physical DRC could not run: {e}"),
            )),
        }
        criticality_lints(&base, design, device, &mut raw);
        self.finalize("design", raw, obs)
    }
}

/// PL0141: timing-critical nets the router left uncriticalized — a net in
/// the negative-slack cone (STA against the 5%-tightened target clock)
/// whose route detours beyond its direct-path estimate. A slack-ordered
/// router gives exactly these nets first pick of the fabric, so a detour
/// here means the criticality feedback was off (or defeated) when the
/// design was routed. 25% allowance for unavoidable congestion detours.
fn criticality_lints(base: &str, design: &Design, device: &Device, out: &mut Vec<Diagnostic>) {
    let Ok((inst_slacks, top_slacks, _period)) = pi_pnr::net_slacks_design(design, device, None)
    else {
        return; // unplaced/unroutable designs are reported by other passes
    };
    let mut check = |origin: String,
                     name: &str,
                     slack: f64,
                     route: &Option<pi_netlist::Route>,
                     terminals: Vec<pi_fabric::TileCoord>| {
        if slack >= 0.0 {
            return;
        }
        let Some(route) = route else { return };
        if terminals.len() < 2 {
            return;
        }
        let direct: u64 = pi_pnr::steiner_topology(&terminals)
            .iter()
            .map(|(a, b)| u64::from(a.manhattan(b)))
            .sum();
        let actual = route.tiles.len().saturating_sub(1) as u64;
        if actual * 4 > direct * 5 {
            out.push(Diagnostic::new(
                "PL0141",
                origin,
                format!(
                    "critical net `{name}` (slack {slack:.3} ns) detours: \
                     routed {actual} tiles vs direct-path estimate {direct} \
                     — the router left it uncriticalized"
                ),
            ));
        }
    };
    for (ii, inst) in design.instances().iter().enumerate() {
        for (ni, net) in inst.module.nets().iter().enumerate() {
            if net.is_clock {
                continue;
            }
            let terminals: Vec<pi_fabric::TileCoord> = net
                .endpoints()
                .filter_map(|e| match e {
                    pi_netlist::Endpoint::Cell(c) => inst.module.cells()[c.index()].placement,
                    pi_netlist::Endpoint::Port(p) => inst.module.ports()[p.index()].partpin,
                })
                .collect();
            check(
                format!("{base}/inst:{}/net:{}", inst.name, net.name),
                &net.name,
                inst_slacks[ii][ni],
                &net.route,
                terminals,
            );
        }
    }
    for (ni, tnet) in design.top_nets().iter().enumerate() {
        let terminals: Vec<pi_fabric::TileCoord> = tnet
            .endpoints()
            .filter_map(|ep| design.top_endpoint_coord(ep))
            .collect();
        check(
            format!("{base}/net:{}", tnet.name),
            &tnet.name,
            top_slacks[ni],
            &tnet.route,
            terminals,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_obs::{MemorySink, Obs};
    use std::sync::Arc;

    #[test]
    fn flags_uncriticalized_critical_detours() {
        use pi_netlist::{Cell, CellKind, DesignKind, Endpoint, ModuleBuilder, StreamRole};
        let device = Device::test_part();
        let mut b = ModuleBuilder::new("chain");
        let din = b.input("din", StreamRole::Source, 8);
        let dout = b.output("dout", StreamRole::Sink, 8);
        let ids: Vec<_> = (0..4)
            .map(|i| b.cell(Cell::new(format!("s{i}"), CellKind::full_slice())))
            .collect();
        b.connect("in", Endpoint::Port(din), [Endpoint::Cell(ids[0])]);
        for i in 1..ids.len() {
            b.connect(
                format!("n{i}"),
                Endpoint::Cell(ids[i - 1]),
                [Endpoint::Cell(ids[i])],
            );
        }
        b.connect(
            "out",
            Endpoint::Cell(ids[ids.len() - 1]),
            [Endpoint::Port(dout)],
        );
        let mut m = b.finish().unwrap();
        // Long spans (~20 tiles) push the critical path past the timing
        // model's 500 ps floor so the tightened target yields a non-empty
        // negative-slack cone.
        let spots = [(1u16, 1u16), (21, 1), (1, 9), (21, 9)];
        for (&id, &(c, r)) in ids.iter().zip(&spots) {
            m.set_placement(id, pi_fabric::TileCoord::new(c, r))
                .unwrap();
        }
        pi_pnr::route_module(&mut m, &device, &pi_pnr::RouteOptions::default()).unwrap();

        // Freshly routed: every critical net is direct, no PL0141.
        let engine = LintEngine::new(LintConfig::new());
        let mk_design = |m: pi_netlist::Module| {
            let mut d = Design::new("d", device.name(), DesignKind::Assembled);
            d.add_instance("a", m);
            d
        };
        let clean = engine.lint_design(&mk_design(m.clone()), &device, &Obs::null());
        assert!(
            !clean.diagnostics.iter().any(|d| d.code == "PL0141"),
            "{clean:?}"
        );

        // Inflate a negative-slack net's route to 3x its length: the lint
        // must call out the uncriticalized detour.
        let (slacks, _) = pi_pnr::net_slacks_module(&m, &device, None).unwrap();
        let victim = (0..m.nets().len())
            .find(|&ni| {
                slacks[ni] < 0.0
                    && m.nets()[ni]
                        .route
                        .as_ref()
                        .is_some_and(|r| r.tiles.len() >= 2)
            })
            .expect("the critical cone is non-empty on a routed module");
        {
            let nets = m.nets_mut().unwrap();
            let tiles = &mut nets[victim].route.as_mut().unwrap().tiles;
            let last = *tiles.last().unwrap();
            let pad = 2 * tiles.len();
            tiles.extend(std::iter::repeat_n(last, pad));
        }
        let report = engine.lint_design(&mk_design(m), &device, &Obs::null());
        assert!(
            report.diagnostics.iter().any(|d| d.code == "PL0141"),
            "{report:?}"
        );
    }

    #[test]
    fn pass_emits_telemetry_point() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(sink.clone());
        let engine = LintEngine::new(LintConfig::new());
        let report = engine.lint_network(&pi_cnn::models::lenet5(), Granularity::Layer, &obs);
        assert!(report.is_clean(), "{report:?}");
        let events = sink.snapshot();
        assert!(
            events.iter().any(|e| e.name == "pass_done"),
            "lint pass emits a pass_done point"
        );
    }
}
