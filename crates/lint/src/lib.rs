//! Static-analysis pass manager for the pre-implemented flow.
//!
//! Three analysis families, one diagnostics surface:
//!
//! * **netlist** (`PL01xx`) — structural defects in [`pi_netlist`]
//!   modules and designs: multi-driven ports, dangling inputs, floating
//!   outputs, width mismatches, combinational loops (Tarjan SCC), dead
//!   cells, fan-out hotspots;
//! * **graph** (`PL02xx`) — CNN dataflow defects in [`pi_cnn`] networks:
//!   shape propagation and interface mismatches, cycles, orphans,
//!   degenerate layer parameters, memory-controller bandwidth budgets;
//! * **trace** (`PL016x`) — structural invariants of recorded [`pi_obs`]
//!   telemetry streams: balanced span trees and strictly increasing
//!   sequence numbers (`pilint trace`);
//! * **checkpoint** (`PL03xx`) — contract conformance of [`pi_stitch`]
//!   checkpoint envelopes and databases: locking, pblock containment,
//!   boundary partition pins, pre-routed clocks, device/metadata
//!   consistency — plus the physical DRC of
//!   [`pi_stitch::check_design`] folded into `PL031x` codes;
//! * **dataflow** (`PL04xx`) — streaming FIFO/deadlock/rate analysis of
//!   the stitched pipeline: a worklist fixpoint over arrival intervals
//!   proves join skews fit the link FIFOs (`pilint dataflow`, and the
//!   sizing source for `FlowConfig::with_fifo_autosize`).
//!
//! Every finding is a [`Diagnostic`] with a stable code from
//! [`REGISTRY`]; [`LintConfig`] applies rustc-style `allow`/`warn`/`deny`
//! levels and waivers, and [`LintReport`] renders deterministically as
//! text or JSON. The [`LintEngine`] fans per-checkpoint and per-instance
//! passes out across the vendored rayon backend with buffered telemetry,
//! so reports and event streams are byte-identical at any `PI_THREADS`.

pub mod checkpoint;
pub mod dataflow;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod model;
pub mod netlist;
pub mod report;
pub mod trace;

pub use checkpoint::{diagnose_violation, lint_checkpoint, lint_db_coverage, violation_code};
pub use dataflow::{analyze as analyze_dataflow, DataflowAnalysis, EdgeFlow};
pub use diag::{
    lookup, parse_waivers, Diagnostic, Level, LintCode, LintConfig, Severity, Waiver, REGISTRY,
};
pub use engine::{fixpoint_intervals, FixpointOutcome, Interval, LintEngine};
pub use graph::lint_network;
pub use model::lint_model;
pub use netlist::{lint_design_structure, lint_module};
pub use report::LintReport;
pub use trace::lint_trace;

// The physical DRC enum stays defined in `pi_stitch` (see the satellite
// note in `stitch::verify`): re-exported here so lint consumers get the
// violations and their diagnostic fold from one place.
pub use pi_stitch::Violation;
