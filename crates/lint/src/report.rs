//! [`LintReport`]: the finalized, deterministic result of one or more
//! lint passes, with rustc-style text and stable JSON renderers.

use crate::diag::{Diagnostic, Level, LintConfig, Severity};
use serde_json::Value;
use std::collections::BTreeSet;

/// The outcome of running lint passes under one [`LintConfig`].
///
/// Diagnostics are sorted by `(code, origin, message)` and deduplicated,
/// so two reports built from the same findings render byte-identically
/// no matter what schedule produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Surviving findings, sorted and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a waiver.
    pub waived: usize,
    /// Findings suppressed because their code's level is `Allow`.
    pub allowed: usize,
    /// Repeated findings at the same `(code, origin)` location collapsed
    /// into the first one (distinct messages included — a location is one
    /// defect however many ways a pass describes it).
    pub deduped: usize,
    /// `(code, origin_prefix)` of every waiver that matched at least one
    /// finding, across all merged passes — the input to
    /// [`Self::audit_waivers`].
    pub used_waivers: BTreeSet<(String, String)>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a config to raw findings: waive, drop `Allow`ed codes,
    /// re-derive severities from effective levels, then sort + dedup.
    pub fn from_raw(raw: Vec<Diagnostic>, config: &LintConfig) -> Self {
        let mut report = LintReport::new();
        for mut d in raw {
            if let Some(w) = config.waivers.iter().find(|w| w.matches(&d)) {
                report.waived += 1;
                report
                    .used_waivers
                    .insert((w.code.clone(), w.origin_prefix.clone()));
                continue;
            }
            match config.level_of(d.code) {
                Level::Allow => report.allowed += 1,
                Level::Warn => {
                    d.severity = Severity::Warning;
                    report.diagnostics.push(d);
                }
                Level::Deny => {
                    d.severity = Severity::Error;
                    report.diagnostics.push(d);
                }
            }
        }
        report.normalize();
        report
    }

    /// Restore the sorted/deduplicated invariant after edits or merges:
    /// sort by the full key, then collapse findings sharing a
    /// `(code, origin)` location — the first (message-sorted) survivor
    /// speaks for the location, the rest count as `deduped`.
    fn normalize(&mut self) {
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let before = self.diagnostics.len();
        self.diagnostics
            .dedup_by(|a, b| a.code == b.code && a.origin == b.origin);
        self.deduped += before - self.diagnostics.len();
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.waived += other.waived;
        self.allowed += other.allowed;
        self.deduped += other.deduped;
        self.used_waivers.extend(other.used_waivers);
        self.normalize();
    }

    /// Flag waivers that matched nothing (`PL0001`). Call this once, on
    /// the fully merged report of a run — a waiver is "used" if *any*
    /// merged pass consumed it, so auditing per-pass would cry wolf.
    pub fn audit_waivers(&mut self, config: &LintConfig) {
        for w in &config.waivers {
            let key = (w.code.clone(), w.origin_prefix.clone());
            if self.used_waivers.contains(&key) {
                continue;
            }
            let d = Diagnostic::new(
                "PL0001",
                format!("waiver:{}:{}", w.code, w.origin_prefix),
                format!(
                    "waiver `{} {}` matched no finding — remove it (stale \
                     waivers mask future regressions)",
                    w.code, w.origin_prefix
                ),
            );
            match config.level_of("PL0001") {
                Level::Allow => self.allowed += 1,
                level => {
                    let mut d = d;
                    d.severity = if level == Level::Deny {
                        Severity::Error
                    } else {
                        Severity::Warning
                    };
                    self.diagnostics.push(d);
                }
            }
        }
        self.normalize();
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// No surviving findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Does this report trip a lint gate? Errors always do; warnings
    /// only under `deny_warnings`.
    pub fn gate(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Per-code finding counts, in code order.
    pub fn by_code(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for d in &self.diagnostics {
            match counts.last_mut() {
                Some((code, n)) if *code == d.code => *n += 1,
                _ => counts.push((d.code, 1)),
            }
        }
        counts
    }

    /// One-line summary, also the last line of [`Self::render_text`].
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "lint: {} errors, {} warnings ({} findings, {} waived, {} allowed",
            self.errors(),
            self.warnings(),
            self.diagnostics.len(),
            self.waived,
            self.allowed
        );
        if self.deduped > 0 {
            line.push_str(&format!(", {} deduped", self.deduped));
        }
        line.push(')');
        line
    }

    /// rustc-style text rendering: one block per finding, then the
    /// summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// Stable JSON rendering (pretty-printed). Byte-identical for equal
    /// reports: diagnostics are pre-sorted and the summary map uses a
    /// fixed key order.
    pub fn render_json(&self) -> String {
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::Map(vec![
                    ("code".into(), Value::Str(d.code.to_string())),
                    ("severity".into(), Value::Str(d.severity.to_string())),
                    ("origin".into(), Value::Str(d.origin.clone())),
                    ("message".into(), Value::Str(d.message.clone())),
                ])
            })
            .collect();
        let by_code: Vec<Value> = self
            .by_code()
            .into_iter()
            .map(|(code, n)| {
                Value::Map(vec![
                    ("code".into(), Value::Str(code.to_string())),
                    ("count".into(), Value::U64(n as u64)),
                ])
            })
            .collect();
        let root = Value::Map(vec![
            ("diagnostics".into(), Value::Seq(diags)),
            (
                "summary".into(),
                Value::Map(vec![
                    ("errors".into(), Value::U64(self.errors() as u64)),
                    ("warnings".into(), Value::U64(self.warnings() as u64)),
                    ("waived".into(), Value::U64(self.waived as u64)),
                    ("allowed".into(), Value::U64(self.allowed as u64)),
                    ("deduped".into(), Value::U64(self.deduped as u64)),
                    ("by_code".into(), Value::Seq(by_code)),
                ]),
            ),
        ]);
        serde_json::to_string_pretty(&root).expect("lint report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{parse_waivers, Diagnostic, LintConfig};

    fn raw() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("PL0107", "module:b/net:n", "fan-out 80 exceeds 64"),
            Diagnostic::new("PL0101", "module:a/port:q", "sunk twice"),
            Diagnostic::new("PL0101", "module:a/port:q", "sunk twice"),
            Diagnostic::new("PL0102", "module:a/port:din", "drives nothing"),
        ]
    }

    #[test]
    fn from_raw_sorts_dedups_and_applies_levels() {
        let r = LintReport::from_raw(raw(), &LintConfig::new());
        assert_eq!(r.diagnostics.len(), 3, "duplicate collapsed");
        assert_eq!(r.diagnostics[0].code, "PL0101");
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 2);
        assert!(r.gate(false));
    }

    #[test]
    fn allow_and_waive_suppress() {
        let cfg = LintConfig::new()
            .allow("PL0102")
            .with_waivers(parse_waivers("PL0107 module:b").unwrap());
        let r = LintReport::from_raw(raw(), &cfg);
        assert_eq!(r.allowed, 1);
        assert_eq!(r.waived, 1);
        assert_eq!(r.diagnostics.len(), 1);
    }

    #[test]
    fn deny_warnings_gates_clean_errors() {
        let cfg = LintConfig::new().allow("PL0101");
        let r = LintReport::from_raw(raw(), &cfg);
        assert_eq!(r.errors(), 0);
        assert!(!r.gate(false));
        assert!(r.gate(true));
    }

    #[test]
    fn same_location_findings_collapse() {
        let raw = vec![
            Diagnostic::new("PL0107", "module:b/net:n", "fan-out 80 exceeds 64"),
            Diagnostic::new("PL0107", "module:b/net:n", "fan-out 81 exceeds 64"),
            Diagnostic::new("PL0107", "module:c/net:n", "fan-out 90 exceeds 64"),
        ];
        let r = LintReport::from_raw(raw, &LintConfig::new());
        assert_eq!(r.diagnostics.len(), 2, "{r:?}");
        assert_eq!(r.deduped, 1);
        assert!(r.diagnostics[0].message.contains("fan-out 80"), "{r:?}");
        assert!(
            r.summary_line().contains("1 deduped"),
            "{}",
            r.summary_line()
        );
    }

    #[test]
    fn unused_waivers_are_flagged_after_merge() {
        let cfg = LintConfig::new()
            .with_waivers(parse_waivers("PL0107 module:b\nPL0104 module:never\n").unwrap());
        let mut a = LintReport::from_raw(raw(), &cfg);
        assert_eq!(a.waived, 1);
        let b = LintReport::from_raw(Vec::new(), &cfg);
        a.merge(b);
        a.audit_waivers(&cfg);
        let unused: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == "PL0001")
            .collect();
        assert_eq!(unused.len(), 1, "{a:?}");
        assert!(unused[0].origin.contains("PL0104"), "{unused:?}");
        assert_eq!(unused[0].severity, Severity::Warning);
        // Allowing PL0001 silences the audit instead.
        let lax = LintConfig::new()
            .allow("PL0001")
            .with_waivers(parse_waivers("PL0104 module:never\n").unwrap());
        let mut c = LintReport::from_raw(Vec::new(), &lax);
        c.audit_waivers(&lax);
        assert!(c.is_clean(), "{c:?}");
        assert_eq!(c.allowed, 1);
    }

    #[test]
    fn merge_keeps_order_and_counts() {
        let cfg = LintConfig::new();
        let mut a = LintReport::from_raw(raw(), &cfg);
        let b = LintReport::from_raw(
            vec![Diagnostic::new("PL0103", "module:z/port:out", "floating")],
            &cfg,
        );
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 4);
        let codes: Vec<_> = a.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["PL0101", "PL0102", "PL0103", "PL0107"]);
    }

    #[test]
    fn renderings_are_deterministic() {
        let cfg = LintConfig::new();
        let a = LintReport::from_raw(raw(), &cfg);
        let mut shuffled = raw();
        shuffled.reverse();
        let b = LintReport::from_raw(shuffled, &cfg);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.render_text().contains("lint: 1 errors, 2 warnings"));
        assert!(a.render_json().contains("\"by_code\""));
    }
}
