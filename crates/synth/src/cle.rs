//! Convolutional Layer Engines (CLEs): the paper's §III second architecture
//! class, after Shen et al. — instead of one dedicated engine per layer
//! (streaming), `Q < L` shared engines each process a *group* of
//! consecutive convolution layers one at a time, with the group assignment
//! balancing compute so no CLE starves the others.
//!
//! CLEs are what makes this class "suitable for the pre-implemented flow":
//! all Q engines are instances of the *same* module, so one checkpoint is
//! implemented once and replicated Q times — the purest form of the paper's
//! reuse story.

use crate::cost;
use crate::emit::{emit_chain, emit_fanout, emit_mac_lane, emit_merge, LaneSpec};
use crate::memctrl::{emit_memctrl, CtrlSide};
use crate::{SynthError, SynthOptions};
use pi_cnn::graph::{Network, NodeId};
use pi_cnn::layer::Layer;
use pi_netlist::{Cell, CellKind, Endpoint, Module, ModuleBuilder, Net, StreamRole};

/// Assignment of a network's convolution layers to `q` CLEs.
#[derive(Debug, Clone)]
pub struct ClePartition {
    /// One group of conv-layer node ids per CLE, in schedule order within
    /// each group.
    pub groups: Vec<Vec<NodeId>>,
    /// MAC load per group.
    pub macs: Vec<u64>,
}

impl ClePartition {
    /// Load imbalance: max group MACs over mean group MACs (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.macs.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.macs.iter().sum::<u64>() as f64 / self.macs.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Partition the network's convolution layers over `q` CLEs with the
/// longest-processing-time greedy rule (heaviest layer to the least-loaded
/// engine), then restore schedule order within each group.
pub fn partition_conv_layers(network: &Network, q: usize) -> Result<ClePartition, SynthError> {
    assert!(q > 0, "need at least one CLE");
    let shapes = network.input_shapes()?;
    let mut convs: Vec<(NodeId, u64)> = Vec::new();
    for (i, node) in network.nodes().iter().enumerate() {
        if let Layer::Conv(_) = node.layer {
            let macs = node.layer.macs(shapes[i])?;
            convs.push((NodeId(i as u32), macs));
        }
    }
    let q = q.min(convs.len().max(1));
    let mut order = convs.clone();
    order.sort_by_key(|&(_, m)| std::cmp::Reverse(m));
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); q];
    let mut macs = vec![0u64; q];
    for (id, m) in order {
        let lightest = (0..q).min_by_key(|&i| macs[i]).expect("q >= 1");
        groups[lightest].push(id);
        macs[lightest] += m;
    }
    for g in &mut groups {
        g.sort(); // schedule order
    }
    Ok(ClePartition { groups, macs })
}

/// Synthesize one CLE: a shared convolution engine sized for the *largest*
/// layer it must run (the fixed-CLE inefficiency Shen et al. criticize is
/// real — smaller layers under-use the array), with a layer sequencer, the
/// source/sink interfaces, and double-buffered weight storage.
pub fn synth_cle(
    network: &Network,
    group: &[NodeId],
    opts: &SynthOptions,
) -> Result<Module, SynthError> {
    let shapes = network.input_shapes()?;
    let w = u64::from(opts.data_width);

    // Envelope over the assigned layers.
    let mut max_taps = 1u64;
    let mut max_lb_bits = 0u64;
    let mut total_macs = 0u64;
    let mut max_comb = 1usize;
    for id in group {
        let input = shapes[id.index()];
        let Layer::Conv(p) = network.node(*id).layer else {
            return Err(SynthError::Cnn(pi_cnn::CnnError::BadGraph(format!(
                "CLE group contains non-conv node {}",
                network.node(*id).name
            ))));
        };
        let taps = u64::from(p.kernel) * u64::from(p.kernel);
        max_taps = max_taps.max(taps);
        total_macs += p.macs(input)?;
        max_lb_bits = max_lb_bits.max(
            u64::from(p.kernel.saturating_sub(1))
                * u64::from(input.width)
                * u64::from(input.channels)
                * w,
        );
        max_comb = max_comb.max(cost::comb_chain_len(taps * u64::from(input.channels)));
    }
    // Lanes sized for the group's total MAC load (the CLE runs its layers
    // back to back, so the budget covers the sum).
    let lanes = cost::conv_lanes(total_macs, max_taps);

    let mut b = ModuleBuilder::new(format!("cle_{}l", group.len()));
    let clk = b.input("clk", StreamRole::Clock, 1);
    let din = b.input("din", StreamRole::Source, opts.data_width);
    let en = b.input("en", StreamRole::Control, 1);
    let dout = b.output("dout", StreamRole::Sink, opts.data_width);

    let src = emit_memctrl(&mut b, "src", CtrlSide::Source, Endpoint::Port(din));
    b.net(Net::new("en_net", Endpoint::Port(en), vec![src]));
    b.net(Net::new("clk_net", Endpoint::Port(clk), vec![src]).clock());

    // Layer sequencer: per assigned layer, a configuration slice chain (the
    // FSM that re-programs dimensions/strides between layers).
    let seq = emit_chain(
        &mut b,
        "seq",
        (group.len() * 4).max(4),
        |i| Cell::new(format!("seq{i}"), crate::emit::out_slice()),
        Some(src),
    );
    let seq_out = Endpoint::Cell(*seq.last().expect("non-empty"));

    // Line buffer sized for the widest assigned layer.
    let n_lb = cost::brams_for_bits(max_lb_bits).max(1) as usize;
    let lb = emit_chain(
        &mut b,
        "lb",
        n_lb,
        |i| Cell::new(format!("lb{i}"), CellKind::Bram),
        Some(seq_out),
    );
    let lb_out = Endpoint::Cell(*lb.last().expect("n_lb >= 1"));

    // Double-buffered weights: 2 BRAMs per lane (ping-pong while the other
    // layer's weights stream in).
    let wbufs = emit_chain(
        &mut b,
        "wbuf",
        (lanes * 2).max(2) as usize,
        |i| Cell::new(format!("wbuf{i}"), CellKind::Bram),
        None,
    );
    let ctrl = b.cell(Cell::new("ctrl", crate::emit::out_slice()));
    for (i, wc) in wbufs.iter().enumerate() {
        b.connect(
            format!("wfeed{i}"),
            Endpoint::Cell(*wc),
            [Endpoint::Cell(ctrl)],
        );
    }

    // The shared MAC array.
    let spec = LaneSpec {
        taps: max_taps as usize,
        win_slices: (max_taps * w).div_ceil(16) as usize,
        comb_len: max_comb,
        extra_slices: (cost::CONV_LUT_PER_DSP * max_taps / 8) as usize,
    };
    let mut lane_outs = Vec::with_capacity(lanes as usize);
    let mut heads = Vec::with_capacity(lanes as usize);
    for l in 0..lanes {
        let lp = format!("l{l}");
        let head = b.cell(Cell::new(format!("{lp}_head"), crate::emit::win_slice()));
        b.connect(format!("{lp}_feed"), lb_out, [Endpoint::Cell(head)]);
        heads.push(Endpoint::Cell(head));
        lane_outs.push(emit_mac_lane(&mut b, &lp, spec, Endpoint::Cell(head)));
    }
    emit_fanout(&mut b, "cbc", Endpoint::Cell(ctrl), &heads, 8);
    let merged = emit_merge(&mut b, "join", &lane_outs);

    let snk = emit_memctrl(&mut b, "snk", CtrlSide::Sink, merged);
    b.connect("dout_net", snk, [Endpoint::Port(dout)]);
    Ok(b.finish()?)
}

/// Cycles for one frame through a CLE: the assigned layers run
/// sequentially on the shared array.
pub fn cle_frame_cycles(network: &Network, group: &[NodeId], dsps: u64) -> Result<u64, SynthError> {
    let shapes = network.input_shapes()?;
    let mut total = 0u64;
    for id in group {
        let macs = network.node(*id).layer.macs(shapes[id.index()])?;
        total += pi_cnn::cycles::frame_cycles(macs, 0, dsps);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cnn::models;

    #[test]
    fn partition_balances_macs() {
        let net = models::vgg16();
        let p = partition_conv_layers(&net, 4).unwrap();
        assert_eq!(p.groups.len(), 4);
        assert_eq!(p.groups.iter().map(|g| g.len()).sum::<usize>(), 13);
        // LPT keeps imbalance modest on VGG's layer mix.
        assert!(p.imbalance() < 1.5, "imbalance {}", p.imbalance());
        // Groups preserve schedule order internally.
        for g in &p.groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn q_larger_than_layer_count_clamps() {
        let net = models::toy(); // one conv layer
        let p = partition_conv_layers(&net, 8).unwrap();
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].len(), 1);
    }

    #[test]
    fn cle_module_has_the_shared_array_shape() {
        let net = models::lenet5();
        let p = partition_conv_layers(&net, 1).unwrap();
        let m = synth_cle(&net, &p.groups[0], &SynthOptions::vgg_like()).unwrap();
        assert!(m.validate().is_ok());
        let r = m.resources();
        // One shared 5x5 array (both LeNet convs are 5x5) + controllers.
        assert!(r.dsps >= 25);
        // Double-buffered weights, not a full ROM.
        assert!(r.brams < 40);
        assert!(m.port_by_name("din").is_some() && m.port_by_name("dout").is_some());
    }

    #[test]
    fn cle_rejects_non_conv_nodes() {
        let net = models::toy();
        // Node 2 is the pool layer.
        let err = synth_cle(&net, &[NodeId(2)], &SynthOptions::vgg_like());
        assert!(err.is_err());
    }

    #[test]
    fn sequential_layers_cost_the_sum_of_their_macs() {
        let net = models::lenet5();
        let p = partition_conv_layers(&net, 1).unwrap();
        let cycles = cle_frame_cycles(&net, &p.groups[0], 25).unwrap();
        // 357.6k MACs on 25 DSPs at 70% efficiency.
        assert!(cycles > 357_600 / 25);
        assert!(cycles < 357_600);
    }
}
