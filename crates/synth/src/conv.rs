//! Convolution engine generator (paper Fig. 4a/4b).

use crate::cost;
use crate::emit::{emit_chain, emit_fanout, emit_mac_lane, emit_merge, LaneSpec};
use crate::SynthOptions;
use pi_cnn::layer::{ConvParams, Shape};
use pi_netlist::{Cell, CellKind, Endpoint, ModuleBuilder};

/// Emit a convolution engine fed by `input`, returning its output endpoint.
///
/// Structure: line-buffer BRAMs → control → per-output-channel-group MAC
/// lanes (window shift register, systolic DSP cascade, adder tree) → merge.
/// Weights come from on-chip ROM (`weights_on_chip`) or per-lane stream
/// buffers.
pub fn emit_conv_engine(
    b: &mut ModuleBuilder,
    prefix: &str,
    p: &ConvParams,
    input_shape: Shape,
    opts: &SynthOptions,
    input: Endpoint,
) -> Endpoint {
    let w = u64::from(opts.data_width);
    let taps = u64::from(p.kernel) * u64::from(p.kernel);
    let macs = p.macs(input_shape).unwrap_or(taps);
    let lanes = cost::conv_lanes(macs, taps);

    // Line buffers: (k-1) image rows of all input channels.
    let lb_bits = u64::from(p.kernel.saturating_sub(1))
        * u64::from(input_shape.width)
        * u64::from(input_shape.channels)
        * w;
    let n_lb = cost::brams_for_bits(lb_bits).max(1) as usize;
    let lb = emit_chain(
        b,
        &format!("{prefix}_lb"),
        n_lb,
        |i| Cell::new(format!("{prefix}_lb{i}"), CellKind::Bram),
        Some(input),
    );
    let lb_out = Endpoint::Cell(*lb.last().expect("n_lb >= 1"));

    // Weight storage.
    let n_weight_brams = if opts.weights_on_chip {
        cost::brams_for_bits(p.weights(input_shape.channels) * w).max(1)
    } else {
        lanes // one stream buffer per lane
    } as usize;
    let weight_cells = emit_chain(
        b,
        &format!("{prefix}_wrom"),
        n_weight_brams,
        |i| Cell::new(format!("{prefix}_wrom{i}"), CellKind::Bram),
        None,
    );

    // Engine controller.
    let ctrl = b.cell(Cell::new(
        format!("{prefix}_ctrl"),
        crate::emit::out_slice(),
    ));
    // Weight storage feeds the controller, which schedules the lanes.
    for (i, wc) in weight_cells.iter().enumerate() {
        b.connect(
            format!("{prefix}_wfeed{i}"),
            Endpoint::Cell(*wc),
            [Endpoint::Cell(ctrl)],
        );
    }

    // MAC lanes.
    let comb_len = cost::comb_chain_len(taps * u64::from(input_shape.channels));
    let lane_slices = (cost::CONV_LUT_PER_DSP * taps / 8) as usize;
    let win_slices = (taps * w).div_ceil(16) as usize;
    let extra = lane_slices.saturating_sub(win_slices + comb_len + 1);
    let spec = LaneSpec {
        taps: taps as usize,
        win_slices,
        comb_len,
        extra_slices: extra,
    };
    let mut lane_outs = Vec::with_capacity(lanes as usize);
    let mut lane_heads = Vec::with_capacity(lanes as usize);
    for l in 0..lanes {
        let lane_prefix = format!("{prefix}_l{l}");
        let head = b.cell(Cell::new(
            format!("{lane_prefix}_head"),
            crate::emit::win_slice(),
        ));
        b.connect(
            format!("{lane_prefix}_feed"),
            lb_out,
            [Endpoint::Cell(head)],
        );
        lane_heads.push(Endpoint::Cell(head));
        lane_outs.push(emit_mac_lane(b, &lane_prefix, spec, Endpoint::Cell(head)));
    }
    // Control broadcast to lane heads.
    emit_fanout(
        b,
        &format!("{prefix}_cbc"),
        Endpoint::Cell(ctrl),
        &lane_heads,
        8,
    );

    emit_merge(b, &format!("{prefix}_join"), &lane_outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::StreamRole;

    fn build(p: ConvParams, shape: Shape, opts: SynthOptions) -> pi_netlist::Module {
        let mut b = ModuleBuilder::new("conv");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let out = emit_conv_engine(&mut b, "c", &p, shape, &opts, Endpoint::Port(din));
        b.connect("o", out, [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn lenet_conv1_resources() {
        let p = ConvParams {
            kernel: 5,
            stride: 1,
            padding: 0,
            out_channels: 6,
        };
        let m = build(p, Shape::new(1, 32, 32), SynthOptions::lenet_like());
        let r = m.resources();
        // One lane of 25 DSPs.
        assert_eq!(r.dsps, 25);
        // ~120 LUT/DSP.
        assert!((2000..4000).contains(&r.luts), "LUTs = {}", r.luts);
        // Line buffer + weight ROM.
        assert!(r.brams >= 2);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn vgg_conv_is_wider_and_deeper() {
        let small = ConvParams {
            kernel: 3,
            stride: 1,
            padding: 1,
            out_channels: 64,
        };
        let big = ConvParams {
            kernel: 3,
            stride: 1,
            padding: 1,
            out_channels: 512,
        };
        let ms = build(small, Shape::new(3, 224, 224), SynthOptions::vgg_like());
        let mb = build(big, Shape::new(512, 28, 28), SynthOptions::vgg_like());
        // conv1_1 (87M MACs) folds narrow; conv4-class (1.85G MACs) is wide.
        assert_eq!(ms.resources().dsps, 2 * 9);
        assert_eq!(mb.resources().dsps, 26 * 9);
        // Deeper input -> longer combinational chains.
        let depth = |m: &pi_netlist::Module| m.cells().iter().filter(|c| !c.registered).count();
        assert!(depth(&mb) > depth(&ms));
    }

    #[test]
    fn stream_mode_uses_per_lane_weight_buffers() {
        let p = ConvParams {
            kernel: 3,
            stride: 1,
            padding: 1,
            out_channels: 512,
        };
        let on_chip = build(p, Shape::new(512, 14, 14), SynthOptions::lenet_like());
        let streamed = build(p, Shape::new(512, 14, 14), SynthOptions::vgg_like());
        // 512ch x 512ch x 3x3 weights in ROM is far more BRAM than 26
        // stream buffers.
        assert!(on_chip.resources().brams > streamed.resources().brams);
    }
}
