//! Memory controller / streaming interface generator (paper Fig. 5).
//!
//! Components whose input boundary re-tiles the feature map (a convolution
//! consuming pooled maps, an FC consuming flattened maps) need an address
//! generator plus FIFO queues; element-wise boundaries do not — that rule is
//! what decides component fusion.

use crate::cost;
use crate::emit::{emit_chain, out_slice, tree_slice};
use pi_netlist::{Cell, CellKind, Endpoint, ModuleBuilder};

/// Which side of a component the controller serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlSide {
    /// "Source" interface: reads feature maps from memory and feeds the
    /// compute units.
    Source,
    /// "Sink" interface: writes feature maps back to on-chip memory.
    Sink,
}

/// Emit a memory controller fed by `input`, returning its output endpoint.
/// The sink side is roughly a third the logic of the source side (no jogging
/// address patterns, just sequential writes).
pub fn emit_memctrl(
    b: &mut ModuleBuilder,
    prefix: &str,
    side: CtrlSide,
    input: Endpoint,
) -> Endpoint {
    let slices = match side {
        CtrlSide::Source => cost::MEMCTRL_SLICES,
        CtrlSide::Sink => cost::MEMCTRL_SLICES / 3,
    } as usize;
    let dsps = match side {
        CtrlSide::Source => cost::MEMCTRL_DSPS,
        CtrlSide::Sink => 1,
    } as usize;
    let brams = match side {
        CtrlSide::Source => cost::MEMCTRL_FIFO_BRAMS,
        CtrlSide::Sink => cost::MEMCTRL_FIFO_BRAMS / 2,
    } as usize;

    // FIFO queues.
    let fifo = emit_chain(
        b,
        &format!("{prefix}_fifo"),
        brams,
        |i| Cell::new(format!("{prefix}_fifo{i}"), CellKind::Bram),
        Some(input),
    );
    let fifo_out = Endpoint::Cell(*fifo.last().expect("brams >= 1"));

    // Address arithmetic DSPs.
    let addr = emit_chain(
        b,
        &format!("{prefix}_addr"),
        dsps,
        |i| Cell::new(format!("{prefix}_addr{i}"), CellKind::Dsp),
        Some(fifo_out),
    );
    let addr_out = Endpoint::Cell(*addr.last().expect("dsps >= 1"));

    // Control logic slices, in locality-friendly chains of 16.
    let mut remaining = slices;
    let mut chain_idx = 0usize;
    let out = b.cell(Cell::new(format!("{prefix}_out"), out_slice()));
    while remaining > 0 {
        let len = remaining.min(16);
        let prefix_c = format!("{prefix}_g{chain_idx}");
        let chain = emit_chain(
            b,
            &prefix_c,
            len,
            |i| Cell::new(format!("{prefix_c}_{i}"), tree_slice()),
            Some(addr_out),
        );
        b.connect(
            format!("{prefix_c}_out"),
            Endpoint::Cell(*chain.last().expect("len >= 1")),
            [Endpoint::Cell(out)],
        );
        remaining -= len;
        chain_idx += 1;
    }
    Endpoint::Cell(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::StreamRole;

    fn build(side: CtrlSide) -> pi_netlist::Module {
        let mut b = ModuleBuilder::new("mc");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let out = emit_memctrl(&mut b, "mc", side, Endpoint::Port(din));
        b.connect("o", out, [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn source_controller_resources() {
        let m = build(CtrlSide::Source);
        let r = m.resources();
        assert_eq!(r.dsps, cost::MEMCTRL_DSPS);
        assert_eq!(r.brams, cost::MEMCTRL_FIFO_BRAMS);
        assert!(r.luts >= cost::MEMCTRL_SLICES * 8 - 64);
    }

    #[test]
    fn sink_is_smaller_than_source() {
        let src = build(CtrlSide::Source).resources();
        let snk = build(CtrlSide::Sink).resources();
        assert!(snk.luts < src.luts);
        assert!(snk.brams < src.brams);
    }
}
