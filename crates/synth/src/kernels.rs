//! The four motivation kernels of Fig. 1: blocks of 3×3 processing elements
//! implementing matrix multiplication, outer product, Robert-Cross edge
//! detection and smoothing — the designs Mandebi et al. pre-implemented to
//! motivate the flow.

use crate::emit::{emit_mac_lane, win_slice, LaneSpec};
use crate::SynthError;
use pi_netlist::{Cell, Endpoint, Module, ModuleBuilder, Net, StreamRole};
use serde::{Deserialize, Serialize};

/// The four kernels of the motivation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// MM: dense matrix multiplication PEs.
    MatMul,
    /// OP: outer product PEs.
    OuterProduct,
    /// RC: Robert-Cross gradient PEs.
    RobertCross,
    /// SM: 3×3 smoothing PEs.
    Smoothing,
}

impl KernelKind {
    pub const ALL: [KernelKind; 4] = [
        KernelKind::MatMul,
        KernelKind::OuterProduct,
        KernelKind::RobertCross,
        KernelKind::Smoothing,
    ];

    /// Abbreviation used in the paper's Fig. 1.
    pub fn abbrev(self) -> &'static str {
        match self {
            KernelKind::MatMul => "MM",
            KernelKind::OuterProduct => "OP",
            KernelKind::RobertCross => "RC",
            KernelKind::Smoothing => "SM",
        }
    }

    /// Per-PE shape: (DSP taps, total slices, combinational chain length).
    /// MM PEs are MAC-heavy; OP is lean; RC has comparator logic; SM has an
    /// averaging tree.
    fn pe_spec(self) -> (usize, usize, usize) {
        match self {
            KernelKind::MatMul => (4, 60, 3),
            KernelKind::OuterProduct => (2, 30, 2),
            KernelKind::RobertCross => (2, 40, 2),
            KernelKind::Smoothing => (1, 35, 3),
        }
    }
}

/// Synthesize a `rows`×`cols` PE block of the given kernel (the paper uses
/// 3×3). PEs connect in a systolic mesh: each PE feeds its right and lower
/// neighbours.
pub fn synth_kernel(kind: KernelKind, rows: usize, cols: usize) -> Result<Module, SynthError> {
    assert!(rows > 0 && cols > 0);
    let (taps, slices, comb_len) = kind.pe_spec();
    let win = (taps * 2).max(2);
    let spec = LaneSpec {
        taps,
        win_slices: win,
        comb_len,
        extra_slices: slices.saturating_sub(win + comb_len + 1),
    };

    let mut b = ModuleBuilder::new(format!("{}_{}x{}", kind.abbrev(), rows, cols));
    let clk = b.input("clk", StreamRole::Clock, 1);
    let din = b.input("din", StreamRole::Source, 16);
    let en = b.input("en", StreamRole::Control, 1);
    let dout = b.output("dout", StreamRole::Sink, 16);

    // PE heads + lanes.
    let mut heads = vec![vec![]; rows];
    let mut outs = vec![vec![]; rows];
    for r in 0..rows {
        for c in 0..cols {
            let prefix = format!("pe{r}_{c}");
            let head = b.cell(Cell::new(format!("{prefix}_head"), win_slice()));
            let out = emit_mac_lane(&mut b, &prefix, spec, Endpoint::Cell(head));
            heads[r].push(head);
            outs[r].push(out);
        }
    }
    // Mesh wiring: PE(r,c) output feeds heads of PE(r,c+1) and PE(r+1,c).
    for r in 0..rows {
        for c in 0..cols {
            let mut sinks = Vec::new();
            if c + 1 < cols {
                sinks.push(Endpoint::Cell(heads[r][c + 1]));
            }
            if r + 1 < rows {
                sinks.push(Endpoint::Cell(heads[r + 1][c]));
            }
            if !sinks.is_empty() {
                b.connect(format!("mesh{r}_{c}"), outs[r][c], sinks);
            }
        }
    }
    // Input feeds the top-left PE; output leaves the bottom-right PE.
    b.connect(
        "din_net",
        Endpoint::Port(din),
        [Endpoint::Cell(heads[0][0])],
    );
    b.net(Net::new(
        "en_net",
        Endpoint::Port(en),
        vec![Endpoint::Cell(heads[0][0])],
    ));
    b.net(
        Net::new(
            "clk_net",
            Endpoint::Port(clk),
            vec![Endpoint::Cell(heads[0][0])],
        )
        .clock(),
    );
    b.connect("dout_net", outs[rows - 1][cols - 1], [Endpoint::Port(dout)]);

    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_synthesize_3x3() {
        for kind in KernelKind::ALL {
            let m = synth_kernel(kind, 3, 3).unwrap();
            assert!(m.validate().is_ok(), "{}", kind.abbrev());
            let (taps, _, _) = kind.pe_spec();
            assert_eq!(m.resources().dsps, (taps * 9) as u64);
        }
    }

    #[test]
    fn kernel_sizes_are_ordered() {
        let lut = |k: KernelKind| synth_kernel(k, 3, 3).unwrap().resources().luts;
        // MM is the largest design, OP the leanest — matching the relative
        // compile times of the motivation figure.
        assert!(lut(KernelKind::MatMul) > lut(KernelKind::OuterProduct));
        assert!(lut(KernelKind::RobertCross) > lut(KernelKind::OuterProduct));
    }

    #[test]
    fn mesh_nets_connect_neighbours() {
        let m = synth_kernel(KernelKind::Smoothing, 2, 2).unwrap();
        let mesh = m
            .nets()
            .iter()
            .filter(|n| n.name.starts_with("mesh"))
            .count();
        // 2x2 mesh: PEs (0,0),(0,1),(1,0) have outgoing mesh nets.
        assert_eq!(mesh, 3);
    }

    #[test]
    fn abbreviations_match_figure() {
        let names: Vec<&str> = KernelKind::ALL.iter().map(|k| k.abbrev()).collect();
        assert_eq!(names, ["MM", "OP", "RC", "SM"]);
    }
}
