//! Fully-connected engine generator. The paper implements FC layers as
//! convolutions whose kernel equals the input size; the engine is therefore
//! a folded MAC array with a deep accumulation tree.

use crate::cost;
use crate::emit::{emit_chain, emit_fanout, emit_mac_lane, emit_merge, LaneSpec};
use crate::SynthOptions;
use pi_cnn::layer::{FcParams, Shape};
use pi_netlist::{Cell, CellKind, Endpoint, ModuleBuilder};

/// Emit a fully-connected engine fed by `input`.
pub fn emit_fc_engine(
    b: &mut ModuleBuilder,
    prefix: &str,
    p: &FcParams,
    input_shape: Shape,
    opts: &SynthOptions,
    input: Endpoint,
) -> Endpoint {
    let w = u64::from(opts.data_width);
    let in_elems = input_shape.elements();
    let dsps = cost::fc_dsps(p.macs(input_shape));

    // Input activation buffer.
    let n_in = cost::brams_for_bits(in_elems * w).max(1) as usize;
    let inbuf = emit_chain(
        b,
        &format!("{prefix}_ibuf"),
        n_in,
        |i| Cell::new(format!("{prefix}_ibuf{i}"), CellKind::Bram),
        Some(input),
    );
    let ibuf_out = Endpoint::Cell(*inbuf.last().expect("n_in >= 1"));

    // Weight storage: full ROM on-chip, or double buffers when streamed.
    let n_w = if opts.weights_on_chip {
        cost::brams_for_bits(p.weights(input_shape) * w).max(1)
    } else {
        (dsps * 2).max(2)
    } as usize;
    let wrom = emit_chain(
        b,
        &format!("{prefix}_wrom"),
        n_w,
        |i| Cell::new(format!("{prefix}_wrom{i}"), CellKind::Bram),
        None,
    );
    let ctrl = b.cell(Cell::new(
        format!("{prefix}_ctrl"),
        crate::emit::out_slice(),
    ));
    for (i, wc) in wrom.iter().enumerate() {
        b.connect(
            format!("{prefix}_wfeed{i}"),
            Endpoint::Cell(*wc),
            [Endpoint::Cell(ctrl)],
        );
    }

    // MAC lanes: one DSP each, folded over the input vector.
    let comb_len = cost::comb_chain_len(in_elems);
    let lane_slices = (cost::FC_LUT_PER_DSP / 8) as usize;
    let spec = LaneSpec {
        taps: 1,
        win_slices: 2,
        comb_len,
        extra_slices: lane_slices.saturating_sub(2 + comb_len + 1),
    };
    let mut lane_outs = Vec::with_capacity(dsps as usize);
    let mut heads = Vec::with_capacity(dsps as usize);
    for l in 0..dsps {
        let lp = format!("{prefix}_l{l}");
        let head = b.cell(Cell::new(format!("{lp}_head"), crate::emit::win_slice()));
        b.connect(format!("{lp}_feed"), ibuf_out, [Endpoint::Cell(head)]);
        heads.push(Endpoint::Cell(head));
        lane_outs.push(emit_mac_lane(b, &lp, spec, Endpoint::Cell(head)));
    }
    emit_fanout(b, &format!("{prefix}_cbc"), Endpoint::Cell(ctrl), &heads, 8);

    emit_merge(b, &format!("{prefix}_join"), &lane_outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::StreamRole;

    fn build(out_features: u32, shape: Shape, opts: SynthOptions) -> pi_netlist::Module {
        let mut b = ModuleBuilder::new("fc");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let p = FcParams { out_features };
        let out = emit_fc_engine(&mut b, "f", &p, shape, &opts, Endpoint::Port(din));
        b.connect("o", out, [Endpoint::Port(dout)]);
        b.finish().unwrap()
    }

    #[test]
    fn lenet_fc1_resources() {
        let m = build(120, Shape::new(16, 5, 5), SynthOptions::lenet_like());
        let r = m.resources();
        assert_eq!(r.dsps, 4);
        // 48120 weights * 16 bits -> ~21 ROM BRAMs plus the input buffer.
        assert!((20..30).contains(&r.brams), "brams = {}", r.brams);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn vgg_fc_is_wide() {
        let m = build(4096, Shape::new(512, 7, 7), SynthOptions::vgg_like());
        // 102M MACs -> 13 MAC-budgeted lanes.
        assert_eq!(m.resources().dsps, 13);
        // Streamed weights: double buffers, not the 50k BRAMs a full ROM
        // would need.
        assert!(m.resources().brams < 400);
    }

    #[test]
    fn deeper_inputs_make_deeper_trees() {
        // A tiny input folds to a 1-level tree; a wide one hits the
        // pipelining cap.
        let shallow = build(10, Shape::new(2, 1, 1), SynthOptions::lenet_like());
        let deep = build(10, Shape::new(512, 7, 7), SynthOptions::vgg_like());
        let comb = |m: &pi_netlist::Module| m.cells().iter().filter(|c| !c.registered).count();
        assert!(comb(&deep) > comb(&shallow));
    }
}
