//! Low-level netlist emission helpers shared by every generator.
//!
//! The helpers keep connectivity *local by construction* — chains and small
//! fan-out groups — because that locality is what placement quality acts on:
//! a good placer keeps chain neighbours adjacent, a rushed one stretches
//! them, and the delay model turns that stretch into the Fmax differences
//! the paper measures.

use pi_netlist::{Cell, CellId, CellKind, Endpoint, ModuleBuilder};

/// A shift-register slice: FF-dominated.
pub fn win_slice() -> CellKind {
    CellKind::Slice { luts: 2, ffs: 16 }
}

/// An adder/comparator-tree slice: LUT-dominated.
pub fn tree_slice() -> CellKind {
    CellKind::Slice { luts: 8, ffs: 8 }
}

/// Propagation delay of a combinational tree level (a wide carry/compare
/// function, slower than a plain LUT hop). Feeds the STA's comb model.
pub const TREE_COMB_DELAY_PS: u32 = 250;

/// An output/requantization slice.
pub fn out_slice() -> CellKind {
    CellKind::Slice { luts: 8, ffs: 16 }
}

/// Emit `n` cells connected in a chain (cell i drives cell i+1), the first
/// fed by `input` when given. `make` builds each cell from its index.
/// Returns the created ids (empty `n` returns an empty vector).
pub fn emit_chain(
    b: &mut ModuleBuilder,
    prefix: &str,
    n: usize,
    mut make: impl FnMut(usize) -> Cell,
    input: Option<Endpoint>,
) -> Vec<CellId> {
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let id = b.cell(make(i));
        if i == 0 {
            if let Some(src) = input {
                b.connect(format!("{prefix}_in"), src, [Endpoint::Cell(id)]);
            }
        } else {
            b.connect(
                format!("{prefix}_c{i}"),
                Endpoint::Cell(ids[i - 1]),
                [Endpoint::Cell(id)],
            );
        }
        ids.push(id);
    }
    ids
}

/// Emit one net from `source` to many sinks, split into groups of at most
/// `max_fanout` sinks per net (models fanout buffering).
pub fn emit_fanout(
    b: &mut ModuleBuilder,
    prefix: &str,
    source: Endpoint,
    sinks: &[Endpoint],
    max_fanout: usize,
) {
    for (g, group) in sinks.chunks(max_fanout.max(1)).enumerate() {
        b.connect(format!("{prefix}_f{g}"), source, group.to_vec());
    }
}

/// Specification of one MAC lane of a convolution/FC engine.
#[derive(Debug, Clone, Copy)]
pub struct LaneSpec {
    /// DSP MACs in the systolic cascade.
    pub taps: usize,
    /// Shift-register slices feeding the cascade.
    pub win_slices: usize,
    /// Combinational adder-tree chain length (the timing-critical part).
    pub comb_len: usize,
    /// Registered tree slices carrying the remaining LUT budget.
    pub extra_slices: usize,
}

/// Emit one MAC lane. Structure (Fig. 4a of the paper):
///
/// ```text
/// input -> [win sr]...[win sr] -> DSP -> DSP -> ... -> [comb tree]...
///            -> { extra registered tree chains } -> [out slice]
/// ```
///
/// Returns the lane's output endpoint.
pub fn emit_mac_lane(
    b: &mut ModuleBuilder,
    prefix: &str,
    spec: LaneSpec,
    input: Endpoint,
) -> Endpoint {
    // Window shift register.
    let win = emit_chain(
        b,
        &format!("{prefix}_win"),
        spec.win_slices,
        |i| Cell::new(format!("{prefix}_win{i}"), win_slice()),
        Some(input),
    );
    let win_out = win.last().copied().map(Endpoint::Cell).unwrap_or(input);

    // Systolic DSP cascade.
    let dsps = emit_chain(
        b,
        &format!("{prefix}_mac"),
        spec.taps,
        |i| Cell::new(format!("{prefix}_mac{i}"), CellKind::Dsp),
        Some(win_out),
    );
    let mac_out = dsps.last().copied().map(Endpoint::Cell).unwrap_or(win_out);

    // Combinational adder-tree chain: the path STA sees.
    let tree = emit_chain(
        b,
        &format!("{prefix}_tree"),
        spec.comb_len,
        |i| {
            Cell::new(format!("{prefix}_tree{i}"), tree_slice())
                .combinational()
                .with_delay_ps(TREE_COMB_DELAY_PS)
        },
        Some(mac_out),
    );
    let tree_out = tree.last().copied().map(Endpoint::Cell).unwrap_or(mac_out);

    // Output/requantization stage.
    let out = b.cell(Cell::new(format!("{prefix}_out"), out_slice()));
    b.connect(format!("{prefix}_treeout"), tree_out, [Endpoint::Cell(out)]);

    // Extra registered tree slices: chains of 8 hanging between the MAC
    // output and the output stage. They carry area without adding
    // combinational depth.
    let mut remaining = spec.extra_slices;
    let mut chain_idx = 0usize;
    while remaining > 0 {
        let len = remaining.min(8);
        let chain = emit_chain(
            b,
            &format!("{prefix}_x{chain_idx}"),
            len,
            |i| Cell::new(format!("{prefix}_x{chain_idx}_{i}"), tree_slice()),
            Some(mac_out),
        );
        if let Some(last) = chain.last() {
            b.connect(
                format!("{prefix}_x{chain_idx}_out"),
                Endpoint::Cell(*last),
                [Endpoint::Cell(out)],
            );
        }
        remaining -= len;
        chain_idx += 1;
    }

    Endpoint::Cell(out)
}

/// Merge many lane outputs into one stream: a small registered tree of
/// slices with fanin grouped by 8.
pub fn emit_merge(b: &mut ModuleBuilder, prefix: &str, inputs: &[Endpoint]) -> Endpoint {
    assert!(!inputs.is_empty(), "merge needs at least one input");
    if inputs.len() == 1 {
        return inputs[0];
    }
    let mut level = 0usize;
    let mut current: Vec<Endpoint> = inputs.to_vec();
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len().div_ceil(8));
        for (g, group) in current.chunks(8).enumerate() {
            let m = b.cell(Cell::new(format!("{prefix}_m{level}_{g}"), tree_slice()));
            for (i, src) in group.iter().enumerate() {
                b.connect(
                    format!("{prefix}_m{level}_{g}_{i}"),
                    *src,
                    [Endpoint::Cell(m)],
                );
            }
            next.push(Endpoint::Cell(m));
        }
        current = next;
        level += 1;
    }
    current[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::ModuleBuilder;

    fn feed(b: &mut ModuleBuilder) -> Endpoint {
        Endpoint::Cell(b.cell(Cell::new("feed", out_slice())))
    }

    #[test]
    fn chain_connects_sequentially() {
        let mut b = ModuleBuilder::new("t");
        let f = feed(&mut b);
        let ids = emit_chain(
            &mut b,
            "ch",
            3,
            |i| Cell::new(format!("s{i}"), tree_slice()),
            Some(f),
        );
        assert_eq!(ids.len(), 3);
        // sink the tail so validation passes
        let tail = Endpoint::Cell(*ids.last().unwrap());
        let sink = b.cell(Cell::new("sink", out_slice()));
        b.connect("out", tail, [Endpoint::Cell(sink)]);
        let m = b.finish().unwrap();
        assert_eq!(m.cells().len(), 5);
        assert_eq!(m.nets().len(), 4);
    }

    #[test]
    fn lane_has_expected_resources() {
        let mut b = ModuleBuilder::new("t");
        let f = feed(&mut b);
        let spec = LaneSpec {
            taps: 9,
            win_slices: 9,
            comb_len: 3,
            extra_slices: 20,
        };
        let out = emit_mac_lane(&mut b, "lane", spec, f);
        let sink = b.cell(Cell::new("sink", out_slice()));
        b.connect("out", out, [Endpoint::Cell(sink)]);
        let m = b.finish().unwrap();
        let r = m.resources();
        assert_eq!(r.dsps, 9);
        // 9 win + 3 comb + 20 extra + 1 out + feed + sink slices
        assert_eq!(m.cells().len(), 9 + 9 + 3 + 20 + 1 + 2);
        // Combinational cells exist and are exactly the tree chain.
        let comb = m.cells().iter().filter(|c| !c.registered).count();
        assert_eq!(comb, 3);
    }

    #[test]
    fn merge_reduces_to_single_output() {
        let mut b = ModuleBuilder::new("t");
        let feeds: Vec<Endpoint> = (0..20).map(|_| feed(&mut b)).collect();
        let out = emit_merge(&mut b, "mrg", &feeds);
        let sink = b.cell(Cell::new("sink", out_slice()));
        b.connect("out", out, [Endpoint::Cell(sink)]);
        let m = b.finish().unwrap();
        // 20 inputs -> 3 first-level + 1 second-level merge slices.
        assert_eq!(m.cells().len(), 20 + 3 + 1 + 1);
    }

    #[test]
    fn fanout_groups_sinks() {
        let mut b = ModuleBuilder::new("t");
        let f = feed(&mut b);
        let sinks: Vec<Endpoint> = (0..10)
            .map(|i| Endpoint::Cell(b.cell(Cell::new(format!("k{i}"), tree_slice()))))
            .collect();
        emit_fanout(&mut b, "bc", f, &sinks, 4);
        // sink the leaves
        let out = b.cell(Cell::new("o", out_slice()));
        for (i, s) in sinks.iter().enumerate() {
            b.connect(format!("l{i}"), *s, [Endpoint::Cell(out)]);
        }
        let m = b.finish().unwrap();
        // 10 sinks at max fanout 4 -> 3 broadcast nets.
        let bc_nets = m
            .nets()
            .iter()
            .filter(|n| n.name.starts_with("bc_f"))
            .count();
        assert_eq!(bc_nets, 3);
    }
}
