//! Max-pooling and ReLU engine generators (paper Fig. 4c).

use crate::cost;
use crate::emit::{emit_chain, emit_fanout, emit_merge, out_slice, tree_slice, win_slice};
use crate::SynthOptions;
use pi_cnn::layer::{PoolParams, Shape};
use pi_netlist::{Cell, CellKind, Endpoint, ModuleBuilder};

/// Emit a max-pooling engine: controller + shift register + per-channel-group
/// comparator trees, exactly the structure of the paper's Fig. 4c.
pub fn emit_pool_engine(
    b: &mut ModuleBuilder,
    prefix: &str,
    p: &PoolParams,
    input_shape: Shape,
    opts: &SynthOptions,
    input: Endpoint,
) -> Endpoint {
    let w = u64::from(opts.data_width);
    let taps = u64::from(p.window) * u64::from(p.window);
    let lanes = cost::pool_lanes(input_shape.channels);

    // Line buffer for (window-1) rows when the window spans rows.
    let lb_bits = u64::from(p.window.saturating_sub(1))
        * u64::from(input_shape.width)
        * u64::from(input_shape.channels)
        * w;
    let n_lb = cost::brams_for_bits(lb_bits).max(1) as usize;
    let lb = emit_chain(
        b,
        &format!("{prefix}_lb"),
        n_lb,
        |i| Cell::new(format!("{prefix}_lb{i}"), CellKind::Bram),
        Some(input),
    );
    let lb_out = Endpoint::Cell(*lb.last().expect("n_lb >= 1"));

    // Controller driving the shift-register enables.
    let ctrl = b.cell(Cell::new(format!("{prefix}_ctrl"), out_slice()));
    b.connect(format!("{prefix}_cin"), lb_out, [Endpoint::Cell(ctrl)]);

    let comb_len = cost::comb_chain_len(taps);
    let win_slices = (taps * w).div_ceil(16).max(1) as usize;
    let mut lane_outs = Vec::with_capacity(lanes as usize);
    let mut heads = Vec::with_capacity(lanes as usize);
    for l in 0..lanes {
        let lp = format!("{prefix}_l{l}");
        // Shift register.
        let sr = emit_chain(
            b,
            &format!("{lp}_sr"),
            win_slices,
            |i| Cell::new(format!("{lp}_sr{i}"), win_slice()),
            Some(lb_out),
        );
        heads.push(Endpoint::Cell(sr[0]));
        // Comparator tree (combinational) + registered output.
        let cmp = emit_chain(
            b,
            &format!("{lp}_cmp"),
            comb_len,
            |i| {
                Cell::new(format!("{lp}_cmp{i}"), tree_slice())
                    .combinational()
                    .with_delay_ps(crate::emit::TREE_COMB_DELAY_PS)
            },
            Some(Endpoint::Cell(*sr.last().expect("win_slices >= 1"))),
        );
        let o = b.cell(Cell::new(format!("{lp}_out"), out_slice()));
        b.connect(
            format!("{lp}_oin"),
            Endpoint::Cell(*cmp.last().expect("comb_len >= 1")),
            [Endpoint::Cell(o)],
        );
        lane_outs.push(Endpoint::Cell(o));
    }
    // Enable broadcast from the controller.
    emit_fanout(b, &format!("{prefix}_en"), Endpoint::Cell(ctrl), &heads, 8);

    emit_merge(b, &format!("{prefix}_join"), &lane_outs)
}

/// Emit a ReLU stage: per-lane clamp slices. ReLU fuses into whatever
/// produced `input` — it has no memory controller of its own, exactly the
/// paper's fusion argument.
pub fn emit_relu_stage(
    b: &mut ModuleBuilder,
    prefix: &str,
    input_shape: Shape,
    input: Endpoint,
) -> Endpoint {
    let lanes = cost::pool_lanes(input_shape.channels).min(4);
    let mut outs = Vec::with_capacity(lanes as usize);
    for l in 0..lanes {
        let c = b.cell(Cell::new(format!("{prefix}_r{l}"), tree_slice()));
        b.connect(format!("{prefix}_ri{l}"), input, [Endpoint::Cell(c)]);
        outs.push(Endpoint::Cell(c));
    }
    emit_merge(b, &format!("{prefix}_join"), &outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_netlist::StreamRole;

    #[test]
    fn pool_engine_structure() {
        let mut b = ModuleBuilder::new("pool");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let p = PoolParams::max(2, 2);
        let out = emit_pool_engine(
            &mut b,
            "p",
            &p,
            Shape::new(6, 28, 28),
            &SynthOptions::lenet_like(),
            Endpoint::Port(din),
        );
        b.connect("o", out, [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        let r = m.resources();
        // 2 channel lanes for 6 channels; no DSPs in a pooling engine.
        assert_eq!(r.dsps, 0);
        assert!(r.brams >= 1);
        assert!(r.luts > 0);
        // Comparator chains are combinational and shallow.
        let comb = m.cells().iter().filter(|c| !c.registered).count();
        assert_eq!(comb, 2 * cost::comb_chain_len(4));
    }

    #[test]
    fn relu_is_tiny() {
        let mut b = ModuleBuilder::new("relu");
        let din = b.input("din", StreamRole::Source, 16);
        let dout = b.output("dout", StreamRole::Sink, 16);
        let out = emit_relu_stage(&mut b, "r", Shape::new(6, 14, 14), Endpoint::Port(din));
        b.connect("o", out, [Endpoint::Port(dout)]);
        let m = b.finish().unwrap();
        assert!(m.resources().luts <= 64);
        assert_eq!(m.resources().brams, 0);
    }
}
